"""Shared helpers for the figure-reproduction benchmarks.

Each benchmark runs its experiment exactly once (the simulations are
deterministic; repeated rounds would only multiply runtime), prints the
figure's report table, and records headline numbers in ``extra_info`` so
they survive into pytest-benchmark's JSON output.
"""

from __future__ import annotations

from pathlib import Path

REPORT_DIR = Path(__file__).parent / "reports"


def run_once(benchmark, experiment, **kwargs):
    """Run ``experiment(**kwargs)`` once under pytest-benchmark."""
    return benchmark.pedantic(
        lambda: experiment(**kwargs), rounds=1, iterations=1, warmup_rounds=0
    )


def save_report(name: str, text: str) -> None:
    """Persist a report table under ``benchmarks/reports/``."""
    REPORT_DIR.mkdir(exist_ok=True)
    (REPORT_DIR / f"{name}.txt").write_text(text + "\n")


def emit(benchmark, result) -> None:
    """Print the paper-style report, persist it, and record it.

    pytest captures stdout, so the table is also written to
    ``benchmarks/reports/<benchmark-name>.txt`` where it survives a plain
    ``pytest benchmarks/ --benchmark-only`` run.
    """
    report = result.report()
    print()
    print(report)
    benchmark.extra_info["report"] = report
    save_report(benchmark.name or "benchmark", report)
