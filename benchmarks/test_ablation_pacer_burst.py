"""Ablation: pacer credit bound (Section III-B3).

The pacer banks idle time as credit, bounded to ``burst_requests`` periods,
so bursty-but-compliant classes proceed unthrottled.  The paper picks 16
("bursts of up to 16 requests").  This ablation runs a class that issues
synchronized 16-request bursts, staying well under its bandwidth share on
average, against a saturating streamer that keeps the governor throttling.
With the paper's credit the bursts pass at memory speed; with a 1-request
credit every burst element pays a pacer period, inflating latency; a huge
credit buys nothing further because bursts already fit.
"""

from conftest import save_report

from repro.analysis.report import format_table
from repro.core.config import PabstConfig
from repro.core.pabst import PabstMechanism
from repro.experiments.common import ClassSpec, build_system, run_system
from repro.workloads.base import Access, Workload
from repro.workloads.stream import StreamWorkload

BURSTS = (1, 16, 64)
BURST_SIZE = 16
BURST_PERIOD = 800


class SyncBurstWorkload(Workload):
    """All contexts issue together once per period: a 16-wide burst."""

    def __init__(self) -> None:
        super().__init__()
        self.name = "sync-burst"
        self.contexts = BURST_SIZE
        self._cursor = 0

    def next_access(self, context: int) -> Access:
        offset = self._cursor % (64 << 20)
        self._cursor += 64
        # wait until the next global burst boundary
        gap = BURST_PERIOD - (self.now % BURST_PERIOD)
        return Access(addr=self.base_addr + offset, gap=gap)


def run_sweep():
    rows = []
    for burst in BURSTS:
        specs = [
            ClassSpec(0, "bursty", weight=3, cores=4,
                      workload_factory=SyncBurstWorkload, l3_ways=8),
            ClassSpec(1, "stream", weight=1, cores=4,
                      workload_factory=StreamWorkload, l3_ways=8),
        ]
        mechanism = PabstMechanism(PabstConfig(burst_requests=burst))
        system = build_system(
            specs, mechanism=mechanism, sample_latencies=True
        )
        result = run_system(system, epochs=120, warmup_epochs=40)
        pacer_waits = [
            pacer.throttled
            for core_id, pacer in mechanism.pacers.items()
            if core_id < 4
        ]
        latencies = system.stats.read_latencies.get(0, [])
        steady = latencies[len(latencies) // 3 :]
        mean = sum(steady) / len(steady) if steady else 0.0
        rows.append((burst, mean, sum(pacer_waits), result.share(0)))
    return rows


def test_ablation_pacer_burst(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1, warmup_rounds=0)
    table = format_table(
        ["burst credit", "bursty mean latency", "throttle events", "bursty share"],
        rows,
        title="Ablation - pacer burst credit (synchronized 16-wide bursts)",
    )
    print()
    print(table)
    save_report("test_ablation_pacer_burst", table)
    benchmark.extra_info["rows"] = rows

    by_burst = {row[0]: row for row in rows}
    # a 1-request credit throttles the burst: pacer stalls appear and the
    # bursty class's mean latency rises measurably
    assert by_burst[1][2] > 100 * max(1, by_burst[16][2])
    assert by_burst[1][1] > by_burst[16][1] * 1.05
    # the paper's 16-request credit lets 16-wide bursts through untouched,
    # so credit beyond the burst width buys (almost) nothing
    assert by_burst[16][2] == 0
    assert by_burst[64][1] <= by_burst[16][1] * 1.10
