"""Fig. 7: PABST against its source-only and target-only halves.

Paper shape: PABST matches the better single-point regulator on each mix —
near-exact 3:1 on the stream mix, and the lowest error of the three on the
chaser mix (with a residual the paper attributes to the efficiency/priority
trade-off in the controller).
"""

from conftest import emit, run_once

from repro.experiments import fig07_source_and_target


def test_fig07_source_and_target(benchmark):
    result = run_once(benchmark, fig07_source_and_target.run)
    emit(benchmark, result)
    benchmark.extra_info["outcomes"] = {
        f"{o.mix}/{o.mechanism}": o.hi_share for o in result.outcomes
    }

    stream_pabst = result.outcome("stream", "pabst")
    stream_tgt = result.outcome("stream", "target-only")
    chaser_pabst = result.outcome("chaser", "pabst")
    chaser_src = result.outcome("chaser", "source-only")
    chaser_tgt = result.outcome("chaser", "target-only")

    # streams: PABST enforces the ratio target-only alone cannot
    assert stream_pabst.error < 0.1
    assert stream_tgt.error > stream_pabst.error + 0.2

    # chaser: PABST beats both halves, residual error remains (paper IV-C)
    assert chaser_pabst.hi_share > chaser_src.hi_share
    assert chaser_pabst.hi_share > chaser_tgt.hi_share
    assert chaser_pabst.error > 0.05
