"""Ablation: DRAM page policy (Section III-C2 background).

The paper's controller uses a closed-page policy and notes its arbiter's
row-hit-first rule is a fair FR-FCFS variant.  This ablation shows why
closed-page is the sane default for consolidated machines: a single
sequential stream enjoys ~95% row hits under open-page (more bandwidth,
less latency), a pointer chaser gets none, and as soon as two streams
interleave on the same banks the locality collapses — open-page pays the
precharge-on-demand cost for nothing.
"""

from dataclasses import replace

from conftest import save_report

from repro.analysis.report import format_table
from repro.qos.classes import QoSRegistry
from repro.sim.config import SystemConfig
from repro.sim.system import System
from repro.workloads.chaser import ChaserWorkload
from repro.workloads.stream import StreamWorkload


def run_one(policy: str, workload_factories: dict):
    config = replace(
        SystemConfig.default_experiment(cores=2, num_mcs=1),
        page_policy=policy,
        mc_interleave="low-bits",
    )
    registry = QoSRegistry()
    registry.define_class(0, "only", weight=1)
    workloads = {}
    for core, factory in workload_factories.items():
        registry.assign_core(core, 0)
        workloads[core] = factory()
    system = System(config, registry, workloads)
    system.run(100_000)
    system.finalize()
    banks = system.controllers[0].banks
    accesses = sum(bank.accesses for bank in banks)
    hits = sum(bank.row_hits for bank in banks)
    return {
        "row_hit_rate": hits / max(1, accesses),
        "bandwidth": system.stats.total_bytes() / system.engine.now,
        "latency": system.stats.class_stats(0).mean_read_latency,
    }


SCENARIOS = {
    "1x stream": {0: lambda: StreamWorkload(stride_bytes=64)},
    "1x chaser": {0: ChaserWorkload},
    "2x stream": {
        0: lambda: StreamWorkload(stride_bytes=64),
        1: lambda: StreamWorkload(stride_bytes=64),
    },
}


def run_sweep():
    results = {}
    for scenario, factories in SCENARIOS.items():
        for policy in ("closed", "open"):
            results[(scenario, policy)] = run_one(policy, factories)
    return results


def test_ablation_page_policy(benchmark):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1, warmup_rounds=0)
    rows = [
        (scenario, policy, r["row_hit_rate"], r["bandwidth"], r["latency"])
        for (scenario, policy), r in results.items()
    ]
    table = format_table(
        ["scenario", "page policy", "row-hit rate", "bandwidth B/cyc", "read latency"],
        rows,
        title="Ablation - DRAM page policy vs access locality",
    )
    print()
    print(table)
    save_report("test_ablation_page_policy", table)
    benchmark.extra_info["rows"] = rows

    # a lone sequential stream is the open-page best case
    lone_open = results[("1x stream", "open")]
    lone_closed = results[("1x stream", "closed")]
    assert lone_open["row_hit_rate"] > 0.8
    assert lone_open["bandwidth"] > lone_closed["bandwidth"] * 1.05
    assert lone_open["latency"] < lone_closed["latency"]

    # random access gains nothing
    assert results[("1x chaser", "open")]["row_hit_rate"] < 0.05

    # interleaved streams destroy each other's row locality
    assert results[("2x stream", "open")]["row_hit_rate"] < 0.3

    # closed-page never produces row hits by construction
    for scenario in SCENARIOS:
        assert results[(scenario, "closed")]["row_hit_rate"] == 0.0
