"""Ablation: arbiter slack cap (Section III-C2).

A class that idles banks unlimited virtual-time credit would, on resuming,
monopolize the controller until its clock catches up.  The slack cap bounds
that credit.  This ablation runs a periodic (mostly idle) high-priority
class against a constant streamer and reports the streamer's worst-epoch
starvation for small/paper/huge slack values: more slack means deeper
post-resume priority bursts for the periodic class.
"""

from conftest import save_report

from repro.analysis.report import format_table
from repro.core.config import PabstConfig
from repro.core.pabst import PabstMechanism
from repro.experiments.common import ClassSpec, build_system, run_system
from repro.workloads.periodic import PeriodicStreamWorkload
from repro.workloads.stream import StreamWorkload

SLACK_STRIDES = (1, 8, 64)


def run_sweep():
    rows = []
    for slack in SLACK_STRIDES:
        specs = [
            ClassSpec(0, "periodic", weight=3, cores=4,
                      workload_factory=lambda: PeriodicStreamWorkload(
                          active_cycles=40_000, idle_cycles=40_000
                      ),
                      l3_ways=8),
            ClassSpec(1, "constant", weight=1, cores=4,
                      workload_factory=StreamWorkload, l3_ways=8),
        ]
        mechanism = PabstMechanism(PabstConfig(arbiter_slack_strides=slack))
        system = build_system(specs, mechanism=mechanism)
        result = run_system(system, epochs=160, warmup_epochs=40)
        constant = result.timeline.share_series(1)[40:]
        arbiters = mechanism.arbiters.values()
        rows.append(
            (
                slack,
                result.share(1),
                min(constant),
                sum(a.capped_deadlines for a in arbiters),
            )
        )
    return rows


def test_ablation_arbiter_slack(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1, warmup_rounds=0)
    table = format_table(
        ["slack (strides)", "constant share", "worst epoch share", "capped deadlines"],
        rows,
        title="Ablation - arbiter slack vs post-idle priority bursts",
    )
    print()
    print(table)
    save_report("test_ablation_arbiter_slack", table)
    benchmark.extra_info["rows"] = rows

    by_slack = {row[0]: row for row in rows}
    # the cap engages often when tight, rarely when loose
    assert by_slack[1][3] > by_slack[64][3]
    # a loose cap lets the resuming class bank deep priority credit and
    # starve the constant class's worst epochs much harder
    assert by_slack[1][2] > by_slack[64][2] + 0.1
    # the periodic class idles half the time, so work conservation hands
    # the constant class well over its 25% weight in steady state
    for row in rows:
        assert 0.3 < row[1] < 0.8
