"""Fig. 12: the memory-efficiency cost of bandwidth QoS.

Paper shape: efficiency (data-bus busy over controller-active cycles) is
high without QoS and drops once the governor and/or arbiter are enabled —
the price of the priority schedule and of the governor's rate probing.
"""

from conftest import emit, run_once

from repro.experiments import fig12_efficiency


def test_fig12_efficiency(benchmark):
    result = run_once(benchmark, fig12_efficiency.run)
    emit(benchmark, result)
    means = {m: result.mean_efficiency(m) for m in fig12_efficiency.MECHANISM_ORDER}
    benchmark.extra_info["mean_efficiency"] = means

    # the unregulated baseline keeps the bus busy
    assert means["none"] > 0.8
    # QoS costs efficiency (paper Section IV-F)
    assert means["pabst"] < means["none"]
    # but the loss stays moderate -- the controller is not crippled
    assert means["pabst"] > 0.6
