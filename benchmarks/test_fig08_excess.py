"""Fig. 8: proportional distribution of excess bandwidth.

Paper shape: with an L3-resident class (25%) not using its allocation, the
two DDR classes (50% / 25%) split the machine about 66% / 33% — each in
proportion to its weight, 16% / 8% over its nominal share.
"""

from conftest import emit, run_once

from repro.experiments import fig08_excess


def test_fig08_excess(benchmark):
    result = run_once(benchmark, fig08_excess.run)
    emit(benchmark, result)
    benchmark.extra_info["ddr_hi_share"] = result.ddr_hi_share_of_ddr
    benchmark.extra_info["ddr_lo_share"] = result.ddr_lo_share_of_ddr

    # the L3-resident class consumes (almost) no memory bandwidth
    assert result.l3_share < 0.05
    # excess redistributes 2:1, the paper's 66/33 split
    assert abs(result.ddr_hi_share_of_ddr - 2 / 3) < 0.06
    assert abs(result.ddr_lo_share_of_ddr - 1 / 3) < 0.06
    # work conservation: the machine still runs near peak
    assert result.utilization > 0.75
