"""Fig. 6: work conservation with a phase-alternating streamer.

Paper shape: the constant 30%-share streamer consumes nearly all bandwidth
while the periodic 70%-share streamer idles, and is throttled back to its
allocation within a few epochs of the periodic class resuming.
"""

from conftest import emit, run_once

from repro.experiments import fig06_work_conserving


def test_fig06_work_conserving(benchmark):
    result = run_once(benchmark, fig06_work_conserving.run)
    emit(benchmark, result)
    benchmark.extra_info["constant_util_active"] = result.constant_util_active
    benchmark.extra_info["constant_util_idle"] = result.constant_util_idle

    # while the periodic class streams, the constant class is held near 30%
    assert result.constant_util_active < 0.45
    # while the periodic class idles, the constant class takes the machine
    assert result.constant_util_idle > 0.8
    # the two regimes are far apart -- excess bandwidth is not wasted
    assert result.constant_util_idle > 2 * result.constant_util_active
