"""Fig. 1: source- vs target-only regulation on both workload mixes.

Paper shape: the source regulator splits two streams accurately but fails
on the chaser mix; the target regulator fails on the stream mix (queues
oversubscribed) — neither suffices alone.
"""

from conftest import emit, run_once

from repro.experiments import fig01_motivation


def test_fig01_motivation(benchmark):
    result = run_once(benchmark, fig01_motivation.run)
    emit(benchmark, result)

    col_a = result.column("a")  # source on streams
    col_b = result.column("b")  # target on streams
    col_c = result.column("c")  # source on chaser mix
    col_d = result.column("d")  # target on chaser mix

    benchmark.extra_info["errors"] = {
        label: result.column(label).error for label in "abcd"
    }

    # (a) source regulation handles pure streams accurately
    assert col_a.error < 0.15
    # (b) target-only loses control once queues are oversubscribed
    assert col_b.error > 3 * col_a.error
    # (c) source-only cannot give a latency-bound class its share
    assert col_c.error > 0.5
    # (d) every regulator leaves residual error on the chaser mix, and the
    # mixes separate the two failure modes (b fails streams, c fails chaser)
    assert col_d.error > 0.2
    assert col_b.hi_share < col_a.hi_share
