"""Fig. 5: proportional allocation of two stream classes at 7:3.

Paper shape: observed bandwidth settles at the 70/30 split and stays there
with only small perturbations.
"""

from conftest import emit, run_once

from repro.experiments import fig05_proportional


def test_fig05_proportional(benchmark):
    result = run_once(benchmark, fig05_proportional.run)
    emit(benchmark, result)
    benchmark.extra_info["hi_share"] = result.hi_share
    benchmark.extra_info["utilization"] = result.utilization

    assert abs(result.hi_share - result.target_hi_share) < 0.05
    assert abs(result.lo_share - (1 - result.target_hi_share)) < 0.05
    # the system stays busy while enforcing the split
    assert result.utilization > 0.6
    # steady state: late-window epoch shares stay near the target
    window = result.timeline.window(0, start=result.warmup_epochs)
    assert window.min_share > 0.5
    assert window.max_share < 0.9
