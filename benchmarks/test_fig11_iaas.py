"""Fig. 11: consolidated equal shares vs a static bandwidth partition.

Paper shape: every SPEC workload runs 15-90% faster under PABST's
work-conserving 25% shares than under a static 1/4-bandwidth reservation
(emulated by DDR frequency scaled down 4x).
"""

from conftest import emit, run_once

from repro.experiments import fig11_iaas


def test_fig11_iaas(benchmark):
    result = run_once(benchmark, fig11_iaas.run)
    emit(benchmark, result)
    benchmark.extra_info["speedups"] = {
        row.workload: row.speedup for row in result.rows
    }

    assert result.rows
    gainers = 0
    for row in result.rows:
        # work conservation may at worst cost the governor's probing
        # overhead (the Fig. 12 efficiency price) for workloads that
        # saturate their share continuously (see EXPERIMENTS.md)...
        assert row.speedup > 0.85, row.workload
        # ...and the gains stay in (roughly) the paper's band
        assert row.speedup < 2.6, row.workload
        if row.speedup > 1.10:
            gainers += 1
    # most workloads benefit substantially from excess redistribution
    assert gainers >= len(result.rows) // 2 + 1
    mean_speedup = sum(row.speedup for row in result.rows) / len(result.rows)
    assert mean_speedup > 1.2
