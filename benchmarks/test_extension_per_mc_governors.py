"""Extension: per-controller governors (Section III-C1 alternative).

The paper's baseline ORs every controller's SAT signal onto one wire, and
notes that unevenly distributed traffic can then leave controllers
underutilized: one hot controller throttles *all* sources, including those
whose traffic targets idle controllers.  Its sketched alternative — one
SAT signal and one governor per controller — is implemented behind
``PabstConfig(per_controller_governors=True)``.

This benchmark builds the adversarial case (a low-bits interleave with one
class pinned to controller 0 and another to controller 1) and shows the
global-OR design capping the cold controller at the hot one's equilibrium
while the per-controller design runs it near peak.
"""

from dataclasses import replace

from conftest import save_report

from repro.analysis.report import format_table
from repro.core.config import PabstConfig
from repro.core.pabst import PabstMechanism
from repro.qos.classes import QoSRegistry
from repro.sim.config import SystemConfig
from repro.sim.system import System
from repro.workloads.stream import StreamWorkload


def run_one(per_controller: bool):
    config = replace(
        SystemConfig.default_experiment(cores=8, num_mcs=2),
        mc_interleave="low-bits",
    )
    registry = QoSRegistry()
    registry.define_class(0, "hot", weight=1, l3_ways=8)
    registry.define_class(1, "cold", weight=1, l3_ways=8)
    workloads = {}
    for core in range(6):
        registry.assign_core(core, 0)
        # even lines only -> every request hits controller 0
        workloads[core] = StreamWorkload(stride_bytes=128)
    for core in range(6, 8):
        registry.assign_core(core, 1)
        # odd lines only -> every request hits controller 1
        workloads[core] = StreamWorkload(stride_bytes=128, start_offset_bytes=64)
    mechanism = PabstMechanism(
        PabstConfig(per_controller_governors=per_controller)
    )
    system = System(config, registry, workloads, mechanism=mechanism)
    system.run_epochs(120)
    system.finalize()
    cycles = system.engine.now
    bus = [mc.bus.busy_cycles / cycles for mc in system.controllers]
    util = system.stats.total_bytes() / cycles / config.peak_bandwidth
    return {
        "mode": "per-controller" if per_controller else "global wired-OR",
        "utilization": util,
        "hot_mc_busy": bus[0],
        "cold_mc_busy": bus[1],
        "cold_bytes": system.stats.class_stats(1).total_bytes,
    }


def run_sweep():
    return [run_one(False), run_one(True)]


def test_extension_per_mc_governors(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1, warmup_rounds=0)
    table = format_table(
        ["governor design", "utilization", "hot MC busy", "cold MC busy"],
        [(r["mode"], r["utilization"], r["hot_mc_busy"], r["cold_mc_busy"])
         for r in rows],
        title="Extension - per-controller governors under hot-spotted traffic",
    )
    print()
    print(table)
    save_report("test_extension_per_mc_governors", table)
    benchmark.extra_info["rows"] = rows

    global_or, per_mc = rows
    # the global OR drags the cold controller down to the hot equilibrium
    assert global_or["cold_mc_busy"] < global_or["hot_mc_busy"] + 0.1
    # per-controller governors run the cold controller near peak...
    assert per_mc["cold_mc_busy"] > global_or["cold_mc_busy"] + 0.15
    # ...raising total utilization and the cold class's bandwidth
    assert per_mc["utilization"] > global_or["utilization"] + 0.08
    assert per_mc["cold_bytes"] > 1.2 * global_or["cold_bytes"]
