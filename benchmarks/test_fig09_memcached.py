"""Fig. 9: memcached service-time distribution under co-location.

Paper shape: a streaming neighbour inflates both mean and tail service
times; PABST (20:1 share) nearly restores the isolated distribution.
"""

from conftest import emit, run_once

from repro.experiments import fig09_memcached


def test_fig09_memcached(benchmark):
    result = run_once(benchmark, fig09_memcached.run)
    emit(benchmark, result)
    benchmark.extra_info["baseline_degradation"] = result.degradation(result.baseline)
    benchmark.extra_info["pabst_degradation"] = result.degradation(result.pabst)

    assert result.isolated.transactions > 50
    # the aggressor visibly hurts the unprotected server
    assert result.degradation(result.baseline) > 1.5
    # PABST removes most of the mean degradation...
    assert result.degradation(result.pabst) < 1.6
    assert result.degradation(result.pabst) < result.degradation(result.baseline) - 0.4
    # ...and pulls the tail back toward the isolated distribution
    assert result.pabst.p99 < 0.75 * result.baseline.p99
