"""Fig. 10: weighted slowdown of SPEC proxies vs a streaming aggressor.

Paper shape: without QoS the high-priority class slows ~2x on average;
PABST holds it near ~1.2x, and the combined mechanism beats both halves on
average (each half wins on the workloads matching its failure mode).
"""

from conftest import emit, run_once

from repro.experiments import fig10_isolation


def test_fig10_isolation(benchmark):
    result = run_once(benchmark, fig10_isolation.run)
    emit(benchmark, result)
    means = {m: result.mean_slowdown(m) for m in fig10_isolation.MECHANISM_ORDER}
    benchmark.extra_info["mean_slowdowns"] = means

    # every workload suffers badly without QoS
    assert means["none"] > 1.6
    for row in result.rows:
        assert row.slowdowns["none"] > 1.3
    # PABST restores most of the isolated performance
    assert means["pabst"] < 1.45
    # and on average beats either half alone
    assert means["pabst"] <= means["source-only"] + 0.02
    assert means["pabst"] <= means["target-only"] + 0.02
    assert means["none"] - means["pabst"] > 0.5
