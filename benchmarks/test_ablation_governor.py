"""Ablation: governor stability/responsiveness trade-off (Section III-B1).

The delta-M inertia decides how quickly step sizes grow under a steady SAT
signal.  Too little inertia lets the M limit-cycle swing wide (unstable
rates, Section V-A's "appearance of instability"); enough inertia pins the
rate near the ideal with small perturbations.  This ablation runs the
Fig. 5 setup (two stream classes at 7:3) across inertia values and reports
per-epoch share jitter and bandwidth utilization.
"""

import statistics

from conftest import save_report

from repro.analysis.report import format_table
from repro.core.config import PabstConfig
from repro.core.pabst import PabstMechanism
from repro.experiments.common import ClassSpec, build_system, run_system
from repro.workloads.stream import StreamWorkload

INERTIAS = (2, 6, 10)
TARGET_HI = 0.7


def run_sweep():
    rows = []
    for inertia in INERTIAS:
        specs = [
            ClassSpec(0, "hi", weight=7, cores=4,
                      workload_factory=StreamWorkload, l3_ways=8),
            ClassSpec(1, "lo", weight=3, cores=4,
                      workload_factory=StreamWorkload, l3_ways=8),
        ]
        mechanism = PabstMechanism(PabstConfig(inertia=inertia))
        system = build_system(specs, mechanism=mechanism)
        result = run_system(system, epochs=120, warmup_epochs=40)
        shares = result.timeline.share_series(0)[40:]
        multipliers = result.timeline.multiplier_series()[40:]
        rows.append(
            (
                inertia,
                result.share(0),
                statistics.pstdev(shares),
                min(multipliers),
                max(multipliers),
                result.total_utilization(),
            )
        )
    return rows


def test_ablation_governor_inertia(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1, warmup_rounds=0)
    table = format_table(
        ["inertia", "hi share", "share stdev", "M min", "M max", "utilization"],
        rows,
        title="Ablation - governor inertia (Fig. 5 setup, target hi=0.70)",
    )
    print()
    print(table)
    save_report("test_ablation_governor_inertia", table)
    benchmark.extra_info["rows"] = rows

    by_inertia = {row[0]: row for row in rows}
    # all settings converge to the right mean share
    for row in rows:
        assert abs(row[1] - TARGET_HI) < 0.06
    # low inertia swings M across a wider range than high inertia
    swing = {inertia: row[4] - row[3] for inertia, *row_ in by_inertia.items()
             for row in [by_inertia[inertia]]}
    assert swing[2] > swing[10]
    # and produces more epoch-to-epoch share jitter
    assert by_inertia[2][2] > by_inertia[10][2] * 0.8
