"""Reproduction of *PABST: Proportionally Allocated Bandwidth at the Source
and Target* (Hower, Cain, Waldspurger - HPCA 2017).

The package provides a discrete-event model of a tiled many-core SoC
(cores, private L2s, a shared way-partitioned L3, and DDR memory
controllers) plus the PABST bandwidth-QoS mechanism and the baselines the
paper compares against.  Quick start::

    from repro import (
        PabstMechanism, QoSRegistry, StreamWorkload, System, SystemConfig,
    )

    config = SystemConfig.default_experiment(cores=8, num_mcs=2)
    registry = QoSRegistry()
    registry.define_class(0, "high", weight=3, l3_ways=8)
    registry.define_class(1, "low", weight=1, l3_ways=8)
    for core in range(8):
        registry.assign_core(core, 0 if core < 4 else 1)

    workloads = {core: StreamWorkload() for core in range(8)}
    system = System(config, registry, workloads, mechanism=PabstMechanism())
    system.run_epochs(50)
    system.finalize()
    print(system.stats.bandwidth_share(0))   # ~0.75

See DESIGN.md for the paper-to-module map and EXPERIMENTS.md for measured
reproductions of every figure.
"""

from repro.baselines.none import NoQosMechanism
from repro.baselines.source_only import SourceOnlyMechanism
from repro.baselines.static_partition import static_partition_config
from repro.baselines.target_only import TargetOnlyMechanism
from repro.core.config import PabstConfig
from repro.core.pabst import PabstMechanism
from repro.dram.timing import DramTiming, PagePolicy
from repro.qos.classes import QoSClass, QoSRegistry
from repro.qos.monitor import BandwidthMonitor, OccupancyMonitor
from repro.qos.shares import proportional_shares, strides_for_weights
from repro.sim.config import SystemConfig
from repro.sim.engine import Engine
from repro.sim.mechanism import QoSMechanism
from repro.sim.stats import Stats
from repro.sim.system import System
from repro.workloads.base import Access, Workload
from repro.workloads.chaser import ChaserWorkload
from repro.workloads.memcached import MemcachedWorkload
from repro.workloads.periodic import PeriodicStreamWorkload
from repro.workloads.spec import SPEC_PROFILES, SpecProxyWorkload, spec_workload
from repro.workloads.stream import StreamWorkload, l3_resident_stream

__version__ = "1.0.0"

__all__ = [
    "Access",
    "BandwidthMonitor",
    "ChaserWorkload",
    "DramTiming",
    "Engine",
    "MemcachedWorkload",
    "NoQosMechanism",
    "OccupancyMonitor",
    "PabstConfig",
    "PabstMechanism",
    "PagePolicy",
    "PeriodicStreamWorkload",
    "QoSClass",
    "QoSMechanism",
    "QoSRegistry",
    "SPEC_PROFILES",
    "SourceOnlyMechanism",
    "SpecProxyWorkload",
    "Stats",
    "StreamWorkload",
    "System",
    "SystemConfig",
    "TargetOnlyMechanism",
    "Workload",
    "l3_resident_stream",
    "proportional_shares",
    "spec_workload",
    "static_partition_config",
    "strides_for_weights",
    "__version__",
]
