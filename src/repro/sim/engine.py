"""Discrete-event simulation kernel.

The engine advances an integer cycle counter and dispatches callbacks in
timestamp order.  Ties are broken by insertion order, which makes every
run bit-deterministic for a given configuration and seed.

All hardware components in this reproduction (cores, caches, memory
controllers, PABST governors) are plain Python objects that schedule callbacks
on a shared :class:`Engine`.

Scheduling core: a bucketed timing wheel
----------------------------------------

Events live in a :class:`TimingWheel`: a fixed-width window of per-cycle
FIFO buckets (``_WHEEL_SIZE`` cycles wide) plus a small overflow heap for
events beyond the window (epoch ticks, far-future pacer releases).  An
insert inside the window is one ``list.append`` — no heap compares — and
the dispatch loop walks buckets in time order, so the per-event cost is
O(1) instead of the binary heap's O(log n) tuple compares.

Ordering is exactly the old heap's ``(when, seq)`` order:

* within a bucket, FIFO append order *is* insertion order;
* the window's start only moves forward, so every overflow insert for a
  cycle ``T`` happens strictly before the window reaches ``T`` and hence
  strictly before any direct bucket insert for ``T``.  Refilling pops the
  overflow heap in ``(when, seq)`` order and appends, which interleaves
  the two populations exactly as the global sequence numbers would.

Cancellation stays lazy (dead :class:`Event` objects are skipped at
dispatch) and the engine maintains a live-event counter so introspection
reflects real work, not queue garbage.

Entry shapes
------------

Buckets hold three entry shapes, told apart by container type alone (one
pointer compare on the dominant dispatch path):

* a ``(callback, args)`` tuple — a fire-and-forget
  :meth:`TimingWheel.post` / :meth:`TimingWheel.post_at` entry (the vast
  majority of traffic);
* a ``[callback, args, link_delay, link_callback, link_args]`` list — a
  fused two-hop chain from :meth:`TimingWheel.post_chain_at`: after the
  first hop's callback returns, the engine inserts the continuation
  ``link_delay`` cycles later itself.  The continuation lands exactly
  where a ``post`` issued at the end of the first callback would, so a
  fused chain is indistinguishable, event order included, from two
  separately scheduled hops — but costs one insertion instead of two;
* an :class:`Event` — a cancellable :meth:`TimingWheel.schedule` /
  :meth:`TimingWheel.schedule_at` entry.

The overflow heap stores ``(when, seq, entry)`` tuples; ``seq`` is unique
among overflow entries, so heap comparison never falls through to the
entry itself.

Late phase
----------

Each cycle has a second, *late* bucket array (:meth:`TimingWheel.post_late_at`).
All ordinary entries for cycle ``T`` dispatch first; then every late
entry for ``T`` dispatches, in FIFO order.  The late phase exists for
insertion-order canonicalization: producers whose *arrival order* at a
component is scheduling-history dependent (NoC deliveries racing space
notifications, read returns racing L3 hits) buffer their payloads and
arm one late callback, which drains the buffer in a canonical sorted
order.  The observable schedule then depends only on the buffered keys,
never on which producer happened to post first — which is what lets a
sharded run, whose producers fire in a completely different order,
reproduce the single-process schedule bit for bit.
"""

from __future__ import annotations

import hashlib
import heapq
from typing import TYPE_CHECKING, Any, Callable

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.trace import RequestTracer
    from repro.sim.sanitizer import SimSanitizer

__all__ = ["Engine", "Event", "SimulationError", "TimingWheel", "dispatched_total"]


class SimulationError(RuntimeError):
    """Raised when the simulation reaches an inconsistent state."""


#: Process-wide count of events dispatched by every engine (bench metric).
_dispatched_total = 0


def dispatched_total() -> int:
    """Events dispatched by all engines in this process since import.

    Sums this module's counter (pure-Python dispatch loops) and the
    compiled backend's (:mod:`repro.accel`, when its extension is
    loaded).  The extension counter is tracked by *loaded*, not active:
    events dispatched under ``c`` keep counting after a switch back to
    ``pure``.
    """
    from repro import accel

    return _dispatched_total + accel.core_dispatched_total()


#: Wheel window width in cycles.  Must be a power of two.  4096 covers
#: every fixed hardware latency in the model (NoC routes, bank timings,
#: typical pacer periods); only epoch ticks and heavily throttled pacer
#: releases overflow.
_WHEEL_BITS = 12
_WHEEL_SIZE = 1 << _WHEEL_BITS
_WHEEL_MASK = _WHEEL_SIZE - 1

#: Sentinel for "no overflow refill pending" (compares greater than any
#: reachable cycle count).
_NEVER = 1 << 63


class Event:
    """A scheduled callback.

    ``cancel()`` marks the event dead; the engine silently discards dead
    events when their bucket is dispatched (lazy deletion) and keeps its
    live-event counter in sync.
    """

    __slots__ = ("when", "seq", "callback", "args", "cancelled", "fired", "_engine")

    def __init__(
        self,
        when: int,
        seq: int,
        callback: Callable[..., None],
        args: tuple,
        engine: "TimingWheel",
    ) -> None:
        self.when = when
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.fired = False
        self._engine = engine

    def cancel(self) -> None:
        """Prevent the callback from firing.  Idempotent.

        Cancelling an event that already fired is a no-op (its live-count
        bookkeeping was settled by the dispatch loop).
        """
        if not self.cancelled and not self.fired:
            self.cancelled = True
            self._engine._live -= 1


class TimingWheel:
    """Bucketed timing-wheel scheduler behind the classic engine API.

    State invariants (held whenever no dispatch loop is mid-bucket):

    * every wheel entry's timestamp lies in ``[_wheel_pos, _horizon)``
      with ``_horizon == _wheel_pos + _WHEEL_SIZE``, so distinct
      timestamps in the window map to distinct buckets and every bucket
      is single-timestamp;
    * ``_wheel_pos`` (and hence ``_horizon``) is non-decreasing — the
      property the FIFO-vs-overflow ordering proof rests on;
    * ``_wheel_count + len(_overflow)`` equals the queued entry count
      (cancelled events included until their bucket is dispatched),
      counting both the ordinary and the late bucket arrays.
    """

    def __init__(self) -> None:
        # Hot-path components (controller, pacer) read _now directly to
        # skip the property descriptor; treat it as read-only outside Engine.
        self._now = 0
        self._seq = 0
        self._wheel: list[list] = [[] for _ in range(_WHEEL_SIZE)]
        self._wheel_late: list[list] = [[] for _ in range(_WHEEL_SIZE)]
        self._wheel_pos = 0
        self._horizon = _WHEEL_SIZE
        self._wheel_count = 0
        self._overflow: list[tuple] = []
        self._live = 0
        self.dispatched = 0
        #: Opt-in runtime invariant checker (see ``repro.sim.sanitizer``).
        self.sanitizer: "SimSanitizer | None" = None
        #: Opt-in request lifecycle recorder (see ``repro.obs.trace``).
        #: Hook sites test ``is None`` and nothing else, so a run without
        #: a tracer executes the same bytecode paths as before the slot
        #: existed.
        self.tracer: "RequestTracer | None" = None
        #: Native fast-path counters, mirroring the C backend's member
        #: names so obs providers read either backend uniformly.  The
        #: pure dispatch loops never touch them (there is no native path
        #: to hit or miss); both stay 0 here.  Part of ``_ENGINE_STATE``
        #: like every other obs-visible counter: the registry snapshot
        #: survives a checkpoint round-trip, and a warm-up that really
        #: dispatched natively reports so even after a backend switch.
        self.fastpath_hits = 0
        self.fastpath_misses = 0

    # ------------------------------------------------------------------
    # time
    # ------------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current simulation time in cycles."""
        return self._now

    @property
    def pending_events(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return self._wheel_count + len(self._overflow)

    @property
    def live_events(self) -> int:
        """Number of queued events that will actually fire.

        Unlike :attr:`pending_events` this excludes lazily deleted
        (cancelled) entries still sitting in their buckets.
        """
        return self._live

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    @staticmethod
    def _as_cycles(value: Any, what: str) -> int:
        """Coerce a delay/timestamp to int cycles, rejecting fractions.

        ``int(0.5)`` silently truncating to 0 reorders events relative to a
        run where the caller meant 1; fractional cycle values are always a
        bug upstream (float arithmetic leaking into the timing model).
        """
        if isinstance(value, (int, np.integer)):
            return int(value)
        if isinstance(value, float) and value.is_integer():
            return int(value)
        raise SimulationError(
            f"non-integral {what}={value!r}; cycle arithmetic must produce "
            "ints (use // instead of /)"
        )

    # The four scheduling entry points share one inline guard —
    # ``type(x) is not int or x out-of-range`` — that falls through to
    # these slow-path validators.  The hot path (int, in range) pays no
    # extra call frame; the cold path (floats, numpy ints, negatives)
    # pays one frame and centralizes the coercion + error text.
    def _coerce_delay(self, delay: Any) -> int:
        delay = self._as_cycles(delay, "delay")
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return delay

    def _coerce_when(self, when: Any) -> int:
        when = self._as_cycles(when, "when")
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at cycle {when}, current time is {self._now}"
            )
        return when

    def schedule(self, delay: int, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` cycles from now."""
        if type(delay) is not int or delay < 0:
            delay = self._coerce_delay(delay)
        when = self._now + delay
        seq = self._seq
        self._seq = seq + 1
        event = Event(when, seq, callback, args, self)
        self._live += 1
        if when < self._horizon:
            self._wheel[when & _WHEEL_MASK].append(event)
            self._wheel_count += 1
        else:
            heapq.heappush(self._overflow, (when, seq, event))
        return event

    def schedule_at(self, when: int, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute cycle ``when``."""
        if type(when) is not int or when < self._now:
            when = self._coerce_when(when)
        seq = self._seq
        self._seq = seq + 1
        event = Event(when, seq, callback, args, self)
        self._live += 1
        if when < self._horizon:
            self._wheel[when & _WHEEL_MASK].append(event)
            self._wheel_count += 1
        else:
            heapq.heappush(self._overflow, (when, seq, event))
        return event

    def post(self, delay: int, callback: Callable[..., None], *args: Any) -> None:
        """Schedule a fire-and-forget callback ``delay`` cycles from now.

        Identical ordering semantics to :meth:`schedule`, but no
        :class:`Event` handle is created, so the callback cannot be
        cancelled.  Use for the simulator's bulk traffic (deliveries,
        completions, responses) where nothing ever cancels.
        """
        if type(delay) is not int or delay < 0:
            delay = self._coerce_delay(delay)
        when = self._now + delay
        self._live += 1
        if when < self._horizon:
            self._wheel[when & _WHEEL_MASK].append((callback, args))
            self._wheel_count += 1
        else:
            seq = self._seq
            self._seq = seq + 1
            heapq.heappush(self._overflow, (when, seq, (callback, args)))

    def post_at(self, when: int, callback: Callable[..., None], *args: Any) -> None:
        """Fire-and-forget variant of :meth:`schedule_at` (no Event handle)."""
        if type(when) is not int or when < self._now:
            when = self._coerce_when(when)
        self._live += 1
        if when < self._horizon:
            self._wheel[when & _WHEEL_MASK].append((callback, args))
            self._wheel_count += 1
        else:
            seq = self._seq
            self._seq = seq + 1
            heapq.heappush(self._overflow, (when, seq, (callback, args)))

    def post_chain_at(
        self,
        when: int,
        callback: Callable[..., None],
        args: tuple,
        link_delay: int,
        link_callback: Callable[..., None],
        link_args: tuple,
    ) -> None:
        """Schedule a fused two-hop chain with one insertion.

        ``callback(*args)`` runs at ``when``; immediately after it
        returns, the engine inserts ``link_callback(*link_args)``
        ``link_delay`` cycles later.  The continuation lands exactly
        where a ``post(link_delay, ...)`` issued as the first callback's
        final statement would, so fusing a deterministic-latency hop
        chain is bit-identical to scheduling the hops separately.

        ``link_delay`` must be >= 1: a zero-delay continuation would
        land in the bucket currently being dispatched, where "end of the
        first callback" and "end of the bucket" differ.
        """
        if type(when) is not int or when < self._now:
            when = self._coerce_when(when)
        if type(link_delay) is not int or link_delay < 1:
            raise SimulationError(
                f"chain link_delay must be a positive int (got {link_delay!r})"
            )
        entry = [callback, args, link_delay, link_callback, link_args]
        self._live += 1
        if when < self._horizon:
            self._wheel[when & _WHEEL_MASK].append(entry)
            self._wheel_count += 1
        else:
            seq = self._seq
            self._seq = seq + 1
            heapq.heappush(self._overflow, (when, seq, entry))

    def post_late_at(self, when: int, callback: Callable[..., None], *args: Any) -> None:
        """Schedule ``callback(*args)`` in cycle ``when``'s *late* phase.

        Late entries dispatch after every ordinary entry at ``when``
        (including same-cycle appends those entries make), in FIFO order.
        Only near-term work may be late-posted: ``when`` must lie inside
        the current wheel window, since the late array has no overflow
        heap.  Every use in the simulator arms a drain for a cycle at
        most one NoC hop away, so the window (4096 cycles) is never a
        constraint in practice.
        """
        if type(when) is not int or when < self._now:
            when = self._coerce_when(when)
        if when >= self._horizon:
            raise SimulationError(
                f"late post at cycle {when} is beyond the wheel horizon "
                f"{self._horizon}; late entries must be near-term"
            )
        self._live += 1
        self._wheel_late[when & _WHEEL_MASK].append((callback, args))
        self._wheel_count += 1

    def advance_clock(self, when: int) -> None:
        """Move the clock (and window) forward to ``when`` without dispatching.

        Only legal when no queued entry precedes ``when`` — i.e. after
        ``run_until(when - 1)`` has drained everything earlier.  Used by
        window-synchronized drivers (epoch barriers, shard windows) that
        need ``engine.now`` to stand at a boundary cycle *before* any of
        that cycle's events run, so boundary work (epoch accounting,
        cross-shard injection) observes the same clock in every mode.
        """
        if type(when) is not int:
            when = self._as_cycles(when, "when")
        if when < self._now:
            raise SimulationError(
                f"cannot advance the clock to {when}, current time is {self._now}"
            )
        self._now = when
        if self._wheel_pos < when:
            self._wheel_pos = when
            self._horizon = when + _WHEEL_SIZE
            self._refill()

    def _refill(self) -> None:
        """Move overflow entries now inside the window into their buckets.

        Must be called every time the window advances far enough to cover
        the overflow head — *before* any direct insert for those cycles
        can happen, which preserves the overflow-first ordering argument.
        """
        overflow = self._overflow
        horizon = self._horizon
        wheel = self._wheel
        moved = 0
        heappop = heapq.heappop
        while overflow and overflow[0][0] < horizon:
            entry = heappop(overflow)
            wheel[entry[0] & _WHEEL_MASK].append(entry[2])
            moved += 1
        self._wheel_count += moved

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run_until(self, deadline: int) -> None:  # repro: hot-kernel
        """Dispatch events with timestamp <= ``deadline``.

        The clock is left at ``deadline`` even if the queue drains early, so
        callers can rely on ``engine.now`` after the call.
        """
        if type(deadline) is not int:
            deadline = self._as_cycles(deadline, "deadline")
        wheel = self._wheel
        late_wheel = self._wheel_late
        overflow = self._overflow
        sanitizer = self.sanitizer
        heappush = heapq.heappush
        mask = _WHEEL_MASK
        dispatched = 0
        pos = self._wheel_pos
        self._refill()
        next_refill = overflow[0][0] - _WHEEL_SIZE + 1 if overflow else _NEVER
        try:
            while pos <= deadline:
                bucket = wheel[pos & mask]
                if not bucket and not late_wheel[pos & mask]:
                    if self._wheel_count:
                        pos += 1
                        if pos >= next_refill:
                            self._wheel_pos = pos
                            self._horizon = pos + _WHEEL_SIZE
                            self._refill()
                            next_refill = (
                                overflow[0][0] - _WHEEL_SIZE + 1
                                if overflow
                                else _NEVER
                            )
                        continue
                    if not overflow or overflow[0][0] > deadline:
                        break
                    # wheel empty: jump straight to the overflow head
                    pos = overflow[0][0]
                    self._wheel_pos = pos
                    self._horizon = pos + _WHEEL_SIZE
                    self._refill()
                    next_refill = (
                        overflow[0][0] - _WHEEL_SIZE + 1 if overflow else _NEVER
                    )
                    continue
                # ---- dispatch every entry at cycle `pos` ----
                self._wheel_pos = pos
                horizon = pos + _WHEEL_SIZE
                self._horizon = horizon
                prev = self._now
                self._now = pos
                if sanitizer is None:
                    # The list iterator picks up same-cycle appends made
                    # by the callbacks themselves (zero-delay posts).
                    skipped = 0
                    for entry in bucket:
                        if type(entry) is tuple:
                            entry[0](*entry[1])
                        elif type(entry) is list:
                            entry[0](*entry[1])
                            # fused chain: insert the continuation
                            # exactly where a post() made here would land
                            when2 = pos + entry[2]
                            self._live += 1
                            if when2 < horizon:
                                wheel[when2 & mask].append(
                                    (entry[3], entry[4])
                                )
                                self._wheel_count += 1
                            else:
                                seq = self._seq
                                self._seq = seq + 1
                                heappush(
                                    overflow, (when2, seq, (entry[3], entry[4]))
                                )
                        else:
                            if entry.cancelled:
                                skipped += 1
                                continue
                            entry.fired = True
                            entry.callback(*entry.args)
                    # settle the counter per bucket, not per entry: the
                    # final length covers same-cycle appends too
                    dispatched += len(bucket) - skipped
                else:
                    for entry in bucket:
                        if type(entry) is tuple:
                            sanitizer.on_event(pos, prev)
                            prev = pos
                            entry[0](*entry[1])
                        elif type(entry) is list:
                            sanitizer.on_event(pos, prev)
                            prev = pos
                            entry[0](*entry[1])
                            when2 = pos + entry[2]
                            self._live += 1
                            if when2 < horizon:
                                wheel[when2 & mask].append(
                                    (entry[3], entry[4])
                                )
                                self._wheel_count += 1
                            else:
                                seq = self._seq
                                self._seq = seq + 1
                                heappush(
                                    overflow, (when2, seq, (entry[3], entry[4]))
                                )
                        else:
                            if entry.cancelled:
                                continue
                            sanitizer.on_event(pos, prev)
                            prev = pos
                            entry.fired = True
                            entry.callback(*entry.args)
                        dispatched += 1
                self._wheel_count -= len(bucket)
                bucket.clear()
                late = late_wheel[pos & mask]
                if late:
                    # ---- late phase ----
                    # Swap the (now empty) ordinary slot to the late list
                    # so zero-delay posts made by late callbacks land in
                    # the list being iterated instead of being lost; the
                    # late slot itself aliases the same list, so further
                    # post_late_at(now) calls are picked up too.
                    wheel[pos & mask] = late
                    if sanitizer is None:
                        skipped = 0
                        for entry in late:
                            if type(entry) is tuple:
                                entry[0](*entry[1])
                            elif type(entry) is list:
                                entry[0](*entry[1])
                                when2 = pos + entry[2]
                                self._live += 1
                                if when2 < horizon:
                                    wheel[when2 & mask].append(
                                        (entry[3], entry[4])
                                    )
                                    self._wheel_count += 1
                                else:
                                    seq = self._seq
                                    self._seq = seq + 1
                                    heappush(
                                        overflow,
                                        (when2, seq, (entry[3], entry[4])),
                                    )
                            else:
                                if entry.cancelled:
                                    skipped += 1
                                    continue
                                entry.fired = True
                                entry.callback(*entry.args)
                        dispatched += len(late) - skipped
                    else:
                        for entry in late:
                            if type(entry) is tuple:
                                sanitizer.on_event(pos, prev)
                                prev = pos
                                entry[0](*entry[1])
                            elif type(entry) is list:
                                sanitizer.on_event(pos, prev)
                                prev = pos
                                entry[0](*entry[1])
                                when2 = pos + entry[2]
                                self._live += 1
                                if when2 < horizon:
                                    wheel[when2 & mask].append(
                                        (entry[3], entry[4])
                                    )
                                    self._wheel_count += 1
                                else:
                                    seq = self._seq
                                    self._seq = seq + 1
                                    heappush(
                                        overflow,
                                        (when2, seq, (entry[3], entry[4])),
                                    )
                            else:
                                if entry.cancelled:
                                    continue
                                sanitizer.on_event(pos, prev)
                                prev = pos
                                entry.fired = True
                                entry.callback(*entry.args)
                            dispatched += 1
                    self._wheel_count -= len(late)
                    late.clear()
                    wheel[pos & mask] = bucket
                pos += 1
                # callbacks may have pushed new far-future work
                next_refill = overflow[0][0] - _WHEEL_SIZE + 1 if overflow else _NEVER
                if pos >= next_refill:
                    self._wheel_pos = pos
                    self._horizon = pos + _WHEEL_SIZE
                    self._refill()
                    next_refill = (
                        overflow[0][0] - _WHEEL_SIZE + 1 if overflow else _NEVER
                    )
        finally:
            # cancelled entries already decremented _live in cancel(); the
            # dispatched ones are settled in one batch here
            self._live -= dispatched
            self.dispatched += dispatched
            global _dispatched_total
            _dispatched_total += dispatched
        if self._now < deadline:
            self._now = deadline
        if self._wheel_pos < deadline:
            self._wheel_pos = deadline
            self._horizon = deadline + _WHEEL_SIZE

    def run(self, max_events: int | None = None) -> int:  # repro: hot-kernel
        """Dispatch events until the queue is empty.

        Returns the number of events dispatched.  ``max_events`` guards
        against runaway self-rescheduling components; on the guard trip
        the offending entry (and everything after it) stays queued and
        the clock stands at the aborted bucket's timestamp.
        """
        wheel = self._wheel
        late_wheel = self._wheel_late
        overflow = self._overflow
        sanitizer = self.sanitizer
        dispatched = 0
        pos = self._wheel_pos
        self._refill()
        try:
            while True:
                if self._wheel_count == 0:
                    if not overflow:
                        break
                    pos = overflow[0][0]
                    self._wheel_pos = pos
                    self._horizon = pos + _WHEEL_SIZE
                    self._refill()
                    continue
                bucket = wheel[pos & _WHEEL_MASK]
                if not bucket and not late_wheel[pos & _WHEEL_MASK]:
                    pos += 1
                    if overflow and overflow[0][0] - _WHEEL_SIZE + 1 <= pos:
                        self._wheel_pos = pos
                        self._horizon = pos + _WHEEL_SIZE
                        self._refill()
                    continue
                self._wheel_pos = pos
                self._horizon = pos + _WHEEL_SIZE
                index = 0
                while index < len(bucket):
                    entry = bucket[index]
                    entry_type = type(entry)
                    is_event = entry_type is not tuple and entry_type is not list
                    if is_event and entry.cancelled:
                        index += 1
                        continue
                    if max_events is not None and dispatched >= max_events:
                        del bucket[:index]
                        self._wheel_count -= index
                        self._now = pos
                        raise SimulationError(f"exceeded max_events={max_events}")
                    if sanitizer is not None:
                        sanitizer.on_event(pos, self._now)
                    self._now = pos
                    if is_event:
                        entry.fired = True
                        entry.callback(*entry.args)
                    else:
                        entry[0](*entry[1])
                        if entry_type is list:
                            when2 = pos + entry[2]
                            self._live += 1
                            if when2 < self._horizon:
                                wheel[when2 & _WHEEL_MASK].append(
                                    (entry[3], entry[4])
                                )
                                self._wheel_count += 1
                            else:
                                seq = self._seq
                                self._seq = seq + 1
                                heapq.heappush(
                                    overflow, (when2, seq, (entry[3], entry[4]))
                                )
                    dispatched += 1
                    index += 1
                self._wheel_count -= index
                bucket.clear()
                late = late_wheel[pos & _WHEEL_MASK]
                if late:
                    # late phase: same slot-swap as run_until, so a late
                    # callback's zero-delay posts land in the list being
                    # walked instead of the cleared ordinary bucket
                    wheel[pos & _WHEEL_MASK] = late
                    index = 0
                    while index < len(late):
                        entry = late[index]
                        entry_type = type(entry)
                        is_event = entry_type is not tuple and entry_type is not list
                        if is_event and entry.cancelled:
                            index += 1
                            continue
                        if max_events is not None and dispatched >= max_events:
                            del late[:index]
                            self._wheel_count -= index
                            self._now = pos
                            wheel[pos & _WHEEL_MASK] = bucket
                            raise SimulationError(
                                f"exceeded max_events={max_events}"
                            )
                        if sanitizer is not None:
                            sanitizer.on_event(pos, self._now)
                        self._now = pos
                        if is_event:
                            entry.fired = True
                            entry.callback(*entry.args)
                        else:
                            entry[0](*entry[1])
                            if entry_type is list:
                                when2 = pos + entry[2]
                                self._live += 1
                                if when2 < self._horizon:
                                    wheel[when2 & _WHEEL_MASK].append(
                                        (entry[3], entry[4])
                                    )
                                    self._wheel_count += 1
                                else:
                                    seq = self._seq
                                    self._seq = seq + 1
                                    heapq.heappush(
                                        overflow,
                                        (when2, seq, (entry[3], entry[4])),
                                    )
                        dispatched += 1
                        index += 1
                    self._wheel_count -= index
                    late.clear()
                    wheel[pos & _WHEEL_MASK] = bucket
                pos += 1
        finally:
            self._live -= dispatched
            self.dispatched += dispatched
            global _dispatched_total
            _dispatched_total += dispatched
        return dispatched


#: Attributes that fully determine an engine's observable state, for the
#: explicit pickle protocol below.  Explicit rather than ``__dict__``
#: because the compiled backend (:mod:`repro.accel`) keeps the integer
#: counters in extension struct fields that never appear in the instance
#: dict — the same attribute list read via ``getattr`` covers both
#: backends, and a state dict written under one backend applies cleanly
#: under the other (every container is a plain Python list on both
#: sides, including the overflow heap's array layout).
_ENGINE_STATE = (
    "_now",
    "_seq",
    "_wheel",
    "_wheel_late",
    "_wheel_pos",
    "_horizon",
    "_wheel_count",
    "_overflow",
    "_live",
    "dispatched",
    "sanitizer",
    "tracer",
    "_seed",
    "_rng_children",
    "_epoch_listeners",
    "fastpath_hits",
    "fastpath_misses",
)


def _rebuild_engine(seed: int) -> "Engine":
    """Pickle factory: an empty engine of the backend active *now*.

    Deliberately consults :func:`repro.accel.engine_class` at unpickle
    time rather than recording the saving process's class, so a
    checkpoint saved under one backend restores under whichever backend
    the restoring process selected — the state dict is backend-neutral.
    """
    from repro import accel

    return accel.engine_class()(seed)


class _EngineMixin:
    """Seeded-RNG and pickling layer shared by both backends' engines.

    ``Engine`` composes it with :class:`TimingWheel`;
    :mod:`repro.accel.engine` composes the same mixin with the compiled
    wheel type.  Everything here touches wheel state only through
    attribute access, which both backends expose identically.
    """

    def __init__(self, seed: int = 0) -> None:
        super().__init__()
        self._seed = seed
        self._rng_children: dict[str, np.random.Generator] = {}
        self._epoch_listeners: list[Callable[[int], None]] = []

    # ------------------------------------------------------------------
    # pickling (checkpoints, shard clones)
    # ------------------------------------------------------------------
    def __reduce__(self):
        state = {name: getattr(self, name) for name in _ENGINE_STATE}
        return (_rebuild_engine, (self._seed,), state)

    def __setstate__(self, state: dict) -> None:
        for name, value in state.items():
            setattr(self, name, value)

    # ------------------------------------------------------------------
    # randomness
    # ------------------------------------------------------------------
    def rng(self, name: str) -> np.random.Generator:
        """Return a named, reproducible random generator.

        The same name always maps to the same stream for a given master
        seed, independent of creation order.
        """
        generator = self._rng_children.get(name)
        if generator is None:
            # A stable digest, NOT builtin hash(): str hashing is salted by
            # PYTHONHASHSEED, which would silently give each process its
            # own streams and break cross-process replay.
            digest = hashlib.sha256(name.encode("utf-8")).digest()
            spawn_key = int.from_bytes(digest[:8], "big")
            child_seed = np.random.SeedSequence(
                entropy=self._seed, spawn_key=(spawn_key,)
            )
            generator = np.random.Generator(np.random.PCG64(child_seed))
            self._rng_children[name] = generator
        return generator


class Engine(_EngineMixin, TimingWheel):
    """Event-driven simulator core with integer cycle time.

    Parameters
    ----------
    seed:
        Master seed.  Component RNGs are derived from it via
        :meth:`rng` so that adding a new consumer does not perturb the
        streams of existing ones.
    """
