"""Discrete-event simulation kernel.

The engine advances an integer cycle counter and dispatches callbacks in
timestamp order.  Ties are broken by insertion order (a monotonically
increasing sequence number), which makes every run bit-deterministic for a
given configuration and seed.

All hardware components in this reproduction (cores, caches, memory
controllers, PABST governors) are plain Python objects that schedule callbacks
on a shared :class:`Engine`.
"""

from __future__ import annotations

import hashlib
import heapq
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.sanitizer import SimSanitizer

__all__ = ["Engine", "Event", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised when the simulation reaches an inconsistent state."""


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events sort by ``(when, seq)``.  ``cancel()`` marks the event dead; the
    engine silently discards dead events when they reach the head of the
    queue (lazy deletion, the standard heapq idiom).
    """

    when: int
    seq: int
    callback: Callable[..., None] = field(compare=False)
    args: tuple = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Prevent the callback from firing.  Idempotent."""
        self.cancelled = True


class Engine:
    """Event-driven simulator core with integer cycle time.

    Parameters
    ----------
    seed:
        Master seed.  Component RNGs are derived from it via
        :meth:`rng` so that adding a new consumer does not perturb the
        streams of existing ones.
    """

    def __init__(self, seed: int = 0) -> None:
        self._now = 0
        self._seq = 0
        self._queue: list[Event] = []
        self._seed = seed
        self._rng_children: dict[str, np.random.Generator] = {}
        self._epoch_listeners: list[Callable[[int], None]] = []
        #: Opt-in runtime invariant checker (see ``repro.sim.sanitizer``).
        self.sanitizer: "SimSanitizer | None" = None

    # ------------------------------------------------------------------
    # time
    # ------------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current simulation time in cycles."""
        return self._now

    @property
    def pending_events(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._queue)

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    @staticmethod
    def _as_cycles(value: Any, what: str) -> int:
        """Coerce a delay/timestamp to int cycles, rejecting fractions.

        ``int(0.5)`` silently truncating to 0 reorders events relative to a
        run where the caller meant 1; fractional cycle values are always a
        bug upstream (float arithmetic leaking into the timing model).
        """
        if isinstance(value, (int, np.integer)):
            return int(value)
        if isinstance(value, float) and value.is_integer():
            return int(value)
        raise SimulationError(
            f"non-integral {what}={value!r}; cycle arithmetic must produce "
            "ints (use // instead of /)"
        )

    def schedule(self, delay: int, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` cycles from now."""
        delay = self._as_cycles(delay, "delay")
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(self, when: int, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute cycle ``when``."""
        when = self._as_cycles(when, "when")
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at cycle {when}, current time is {self._now}"
            )
        event = Event(when=when, seq=self._seq, callback=callback, args=args)
        self._seq += 1
        heapq.heappush(self._queue, event)
        return event

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run_until(self, deadline: int) -> None:
        """Dispatch events with timestamp <= ``deadline``.

        The clock is left at ``deadline`` even if the queue drains early, so
        callers can rely on ``engine.now`` after the call.
        """
        deadline = self._as_cycles(deadline, "deadline")
        queue = self._queue
        sanitizer = self.sanitizer
        while queue and queue[0].when <= deadline:
            event = heapq.heappop(queue)
            if event.cancelled:
                continue
            if sanitizer is not None:
                sanitizer.on_event(event.when, self._now)
            self._now = event.when
            event.callback(*event.args)
        self._now = max(self._now, deadline)

    def run(self, max_events: int | None = None) -> int:
        """Dispatch events until the queue is empty.

        Returns the number of events dispatched.  ``max_events`` guards
        against runaway self-rescheduling components.
        """
        dispatched = 0
        queue = self._queue
        sanitizer = self.sanitizer
        while queue:
            event = heapq.heappop(queue)
            if event.cancelled:
                continue
            if max_events is not None and dispatched >= max_events:
                heapq.heappush(queue, event)
                raise SimulationError(f"exceeded max_events={max_events}")
            if sanitizer is not None:
                sanitizer.on_event(event.when, self._now)
            self._now = event.when
            event.callback(*event.args)
            dispatched += 1
        return dispatched

    # ------------------------------------------------------------------
    # randomness
    # ------------------------------------------------------------------
    def rng(self, name: str) -> np.random.Generator:
        """Return a named, reproducible random generator.

        The same name always maps to the same stream for a given master
        seed, independent of creation order.
        """
        generator = self._rng_children.get(name)
        if generator is None:
            # A stable digest, NOT builtin hash(): str hashing is salted by
            # PYTHONHASHSEED, which would silently give each process its
            # own streams and break cross-process replay.
            digest = hashlib.sha256(name.encode("utf-8")).digest()
            spawn_key = int.from_bytes(digest[:8], "big")
            child_seed = np.random.SeedSequence(
                entropy=self._seed, spawn_key=(spawn_key,)
            )
            generator = np.random.Generator(np.random.PCG64(child_seed))
            self._rng_children[name] = generator
        return generator
