"""Discrete-event simulation kernel.

The engine advances an integer cycle counter and dispatches callbacks in
timestamp order.  Ties are broken by insertion order (a monotonically
increasing sequence number), which makes every run bit-deterministic for a
given configuration and seed.

All hardware components in this reproduction (cores, caches, memory
controllers, PABST governors) are plain Python objects that schedule callbacks
on a shared :class:`Engine`.

The heap holds plain ``(when, seq, event)`` tuples rather than rich event
objects: ``seq`` is unique, so tuple comparison never falls through to the
event itself, and the per-push/per-pop cost is a C-level int compare instead
of a generated dataclass ``__lt__``.  Cancellation stays lazy (the standard
heapq idiom) but the engine maintains a live-event counter so introspection
reflects real work, not heap garbage.

Fire-and-forget callbacks (the vast majority of simulator traffic) can skip
the :class:`Event` wrapper entirely via :meth:`Engine.post` /
:meth:`Engine.post_at`, which push a bare ``(when, seq, callback, args)``
tuple.  The dispatch loop tells the two entry shapes apart by length; the
ordering key ``(when, seq)`` is identical either way, so mixing the two
forms cannot reorder anything.
"""

from __future__ import annotations

import hashlib
import heapq
from typing import TYPE_CHECKING, Any, Callable

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.sanitizer import SimSanitizer

__all__ = ["Engine", "Event", "SimulationError", "dispatched_total"]


class SimulationError(RuntimeError):
    """Raised when the simulation reaches an inconsistent state."""


#: Process-wide count of events dispatched by every engine (bench metric).
_dispatched_total = 0


def dispatched_total() -> int:
    """Events dispatched by all engines in this process since import."""
    return _dispatched_total


class Event:
    """A scheduled callback.

    ``cancel()`` marks the event dead; the engine silently discards dead
    events when they reach the head of the queue (lazy deletion) and keeps
    its live-event counter in sync.
    """

    __slots__ = ("when", "seq", "callback", "args", "cancelled", "fired", "_engine")

    def __init__(
        self,
        when: int,
        seq: int,
        callback: Callable[..., None],
        args: tuple,
        engine: "Engine",
    ) -> None:
        self.when = when
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.fired = False
        self._engine = engine

    def cancel(self) -> None:
        """Prevent the callback from firing.  Idempotent.

        Cancelling an event that already fired is a no-op (its live-count
        bookkeeping was settled by the dispatch loop).
        """
        if not self.cancelled and not self.fired:
            self.cancelled = True
            self._engine._live -= 1


class Engine:
    """Event-driven simulator core with integer cycle time.

    Parameters
    ----------
    seed:
        Master seed.  Component RNGs are derived from it via
        :meth:`rng` so that adding a new consumer does not perturb the
        streams of existing ones.
    """

    def __init__(self, seed: int = 0) -> None:
        # Hot-path components (controller, pacer) read _now directly to
        # skip the property descriptor; treat it as read-only outside Engine.
        self._now = 0
        self._seq = 0
        self._queue: list[tuple[int, int, Event]] = []
        self._live = 0
        self.dispatched = 0
        self._seed = seed
        self._rng_children: dict[str, np.random.Generator] = {}
        self._epoch_listeners: list[Callable[[int], None]] = []
        #: Opt-in runtime invariant checker (see ``repro.sim.sanitizer``).
        self.sanitizer: "SimSanitizer | None" = None

    # ------------------------------------------------------------------
    # time
    # ------------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current simulation time in cycles."""
        return self._now

    @property
    def pending_events(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._queue)

    @property
    def live_events(self) -> int:
        """Number of queued events that will actually fire.

        Unlike :attr:`pending_events` this excludes lazily deleted
        (cancelled) entries still sitting in the heap.
        """
        return self._live

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    @staticmethod
    def _as_cycles(value: Any, what: str) -> int:
        """Coerce a delay/timestamp to int cycles, rejecting fractions.

        ``int(0.5)`` silently truncating to 0 reorders events relative to a
        run where the caller meant 1; fractional cycle values are always a
        bug upstream (float arithmetic leaking into the timing model).
        """
        if isinstance(value, (int, np.integer)):
            return int(value)
        if isinstance(value, float) and value.is_integer():
            return int(value)
        raise SimulationError(
            f"non-integral {what}={value!r}; cycle arithmetic must produce "
            "ints (use // instead of /)"
        )

    def schedule(self, delay: int, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` cycles from now.

        Deliberately self-contained rather than delegating to
        :meth:`schedule_at`: this is the single hottest call in the
        simulator and the extra frame shows up in every profile.
        """
        if type(delay) is not int:
            delay = self._as_cycles(delay, "delay")
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        when = self._now + delay
        seq = self._seq
        self._seq = seq + 1
        event = Event(when, seq, callback, args, self)
        self._live += 1
        heapq.heappush(self._queue, (when, seq, event))
        return event

    def post(self, delay: int, callback: Callable[..., None], *args: Any) -> None:
        """Schedule a fire-and-forget callback ``delay`` cycles from now.

        Identical ordering semantics to :meth:`schedule`, but no
        :class:`Event` handle is created, so the callback cannot be
        cancelled.  Use for the simulator's bulk traffic (deliveries,
        completions, responses) where nothing ever cancels.
        """
        if type(delay) is not int:
            delay = self._as_cycles(delay, "delay")
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        seq = self._seq
        self._seq = seq + 1
        self._live += 1
        heapq.heappush(self._queue, (self._now + delay, seq, callback, args))

    def post_at(self, when: int, callback: Callable[..., None], *args: Any) -> None:
        """Fire-and-forget variant of :meth:`schedule_at` (no Event handle)."""
        if type(when) is not int:
            when = self._as_cycles(when, "when")
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at cycle {when}, current time is {self._now}"
            )
        seq = self._seq
        self._seq = seq + 1
        self._live += 1
        heapq.heappush(self._queue, (when, seq, callback, args))

    def schedule_at(self, when: int, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute cycle ``when``."""
        if type(when) is not int:
            when = self._as_cycles(when, "when")
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at cycle {when}, current time is {self._now}"
            )
        seq = self._seq
        self._seq = seq + 1
        event = Event(when, seq, callback, args, self)
        self._live += 1
        heapq.heappush(self._queue, (when, seq, event))
        return event

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run_until(self, deadline: int) -> None:
        """Dispatch events with timestamp <= ``deadline``.

        The clock is left at ``deadline`` even if the queue drains early, so
        callers can rely on ``engine.now`` after the call.
        """
        deadline = self._as_cycles(deadline, "deadline")
        queue = self._queue
        sanitizer = self.sanitizer
        heappop = heapq.heappop
        dispatched = 0
        try:
            if sanitizer is None:
                while queue and queue[0][0] <= deadline:
                    entry = heappop(queue)
                    if len(entry) == 4:
                        self._now = entry[0]
                        entry[2](*entry[3])
                    else:
                        event = entry[2]
                        if event.cancelled:
                            continue
                        event.fired = True
                        self._now = entry[0]
                        event.callback(*event.args)
                    dispatched += 1
            else:
                while queue and queue[0][0] <= deadline:
                    entry = heappop(queue)
                    if len(entry) == 4:
                        sanitizer.on_event(entry[0], self._now)
                        self._now = entry[0]
                        entry[2](*entry[3])
                    else:
                        event = entry[2]
                        if event.cancelled:
                            continue
                        event.fired = True
                        sanitizer.on_event(entry[0], self._now)
                        self._now = entry[0]
                        event.callback(*event.args)
                    dispatched += 1
        finally:
            # cancelled entries already decremented _live in cancel(); the
            # dispatched ones are settled in one batch here
            self._live -= dispatched
            self.dispatched += dispatched
            global _dispatched_total
            _dispatched_total += dispatched
        if self._now < deadline:
            self._now = deadline

    def run(self, max_events: int | None = None) -> int:
        """Dispatch events until the queue is empty.

        Returns the number of events dispatched.  ``max_events`` guards
        against runaway self-rescheduling components.
        """
        dispatched = 0
        queue = self._queue
        sanitizer = self.sanitizer
        heappop = heapq.heappop
        try:
            while queue:
                entry = heappop(queue)
                if len(entry) == 3:
                    event = entry[2]
                    if event.cancelled:
                        continue
                    event.fired = True
                    callback = event.callback
                    args = event.args
                else:
                    callback = entry[2]
                    args = entry[3]
                if max_events is not None and dispatched >= max_events:
                    heapq.heappush(queue, entry)
                    raise SimulationError(f"exceeded max_events={max_events}")
                if sanitizer is not None:
                    sanitizer.on_event(entry[0], self._now)
                self._now = entry[0]
                callback(*args)
                dispatched += 1
        finally:
            self._live -= dispatched
            self.dispatched += dispatched
            global _dispatched_total
            _dispatched_total += dispatched
        return dispatched

    # ------------------------------------------------------------------
    # randomness
    # ------------------------------------------------------------------
    def rng(self, name: str) -> np.random.Generator:
        """Return a named, reproducible random generator.

        The same name always maps to the same stream for a given master
        seed, independent of creation order.
        """
        generator = self._rng_children.get(name)
        if generator is None:
            # A stable digest, NOT builtin hash(): str hashing is salted by
            # PYTHONHASHSEED, which would silently give each process its
            # own streams and break cross-process replay.
            digest = hashlib.sha256(name.encode("utf-8")).digest()
            spawn_key = int.from_bytes(digest[:8], "big")
            child_seed = np.random.SeedSequence(
                entropy=self._seed, spawn_key=(spawn_key,)
            )
            generator = np.random.Generator(np.random.PCG64(child_seed))
            self._rng_children[name] = generator
        return generator
