"""Conservative-lookahead sharding of a :class:`~repro.sim.system.System`.

A sharded run partitions the simulated machine across N engines
(DESIGN.md §11): shard 0 — the *source* shard — owns every tile (cores,
private L2s, the sliced L3, pacers, governors); shards 1..N-1 — the
*target* shards — own disjoint groups of memory controllers.  Each shard
replays its slice of the machine on its own :class:`~repro.sim.engine.Engine`,
synchronized in conservative windows of width ``min_tile_to_mc_latency``
(classic conservative PDES): within a window every shard dispatches
freely; cross-shard traffic (L2-miss deliveries, writebacks, read
returns) is batched into boundary messages exchanged at window barriers
and injected in canonical ``(when, src_shard, seq)`` order.

Safety argument: every cross-shard message is generated at some cycle
``t`` inside a window ``[w, e)`` and carries a delivery time
``when = t + delay`` with ``delay >= lookahead`` (each such hop crosses
a tile<->MC link, and ``e - w <= lookahead``), hence ``when >= e`` —
messages generated in a window are never due before the *next* window
starts, so exchanging exactly once per barrier loses nothing.  Windows
clipped at epoch boundaries only shorten, which preserves the bound.

Determinism argument: all requests are created, paced and sequenced on
the source shard in the single-process order (``noc_seq`` is stamped at
NoC injection), target admission sorts arrivals by ``noc_seq`` and
response delivery sorts on ``(l3_hit, mc, bus-slot)`` keys (the
single-process late-phase canonicalization), so the observable schedule
of every shard is a pure function of the traffic — identical to the
single-process engine's, message transport order notwithstanding.

This module is transport-agnostic: it never imports ``multiprocessing``
or ``pickle`` (lint rules PERF003/PERF004).  The execution backends —
in-process lockstep and forked worker processes over pipes — live in
:mod:`repro.runner.shardpool`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from operator import itemgetter
from typing import TYPE_CHECKING

from repro.sim.engine import SimulationError
from repro.sim.records import AccessType, MemoryRequest
from repro.sim.sanitizer import check_boundary_conservation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.system import System

__all__ = [
    "EpochDelta",
    "FinalPayload",
    "ShardPlan",
    "ShardRunner",
    "shard_seed",
    "sort_boundary_batch",
    "window_schedule",
]

#: Canonical injection order of a boundary batch: delivery cycle, then
#: source shard, then the per-link emission sequence number.
_BOUNDARY_ORDER = itemgetter(0, 1, 2)

#: ClassStats fields shipped as integer deltas at epoch barriers (the
#: running-max ``read_latency_max`` travels separately).
_CLASS_DELTA_FIELDS = (
    "bytes_read",
    "bytes_written",
    "reads_completed",
    "writes_completed",
    "instructions",
    "read_latency_sum",
    "reads_attributed",
    "reads_unattributed",
    "stage_pacer_sum",
    "stage_noc_sum",
    "stage_queue_sum",
    "stage_service_sum",
)

#: MemoryController attributes mirrored back onto the source shard's
#: dormant controller at finalize, so post-run introspection (obs
#: gauges, ``blocked_at_mc``) reads the target's real state.
_MIRROR_KEYS = (
    "reads_accepted",
    "writes_accepted",
    "rejects",
    "active_cycles",
    "read_queue",
    "write_queue",
    "banks",
    "bus",
    "policy",
    "_inflight",
    "_active_since",
    "_draining_writes",
    "_bank_busy",
    "_busy_times",
    "_occ_integral",
    "_occ_last_update",
    "_occ_window_start",
)


def shard_seed(root_seed: int, shard_id: int) -> int:
    """Per-shard seed derived via the existing sha256 scheme.

    Mirrors :meth:`repro.sim.engine.Engine.rng`: a stable digest (never
    builtin ``hash``, which is salted per process) keyed by the root
    seed and the shard id, so ``--shards N`` gives every shard's engine
    an independent, process-stable stream family without consuming the
    root engine's streams differently than ``N=1`` does.
    """
    digest = hashlib.sha256(
        f"{root_seed}.shard.{shard_id}".encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "big")


def sort_boundary_batch(messages: list[tuple]) -> list[tuple]:
    """Canonical ``(when, src_shard, seq)`` order of stashed messages.

    The sort is total: ``seq`` is unique per (source shard -> link), so
    two messages never tie, and the injected order is independent of
    the order the transport happened to deliver the batches in.
    """
    return sorted(messages, key=_BOUNDARY_ORDER)


def window_schedule(lookahead: int, epoch_cycles: int, epochs: int):
    """Yield ``(window_end, is_epoch_boundary)`` barriers for a run.

    Windows are ``lookahead`` cycles wide, clipped at epoch boundaries
    (clipping only shortens a window, which keeps the conservative bound
    valid) so that every epoch boundary is also a barrier — the source
    shard needs the targets' epoch deltas exactly there.  Every shard
    computes this schedule independently and identically.
    """
    if lookahead < 1:
        raise SimulationError(f"lookahead must be >= 1, got {lookahead}")
    end = epochs * epoch_cycles
    t = 0
    next_epoch = epoch_cycles
    while t < end:
        e = min(t + lookahead, next_epoch)
        yield e, e == next_epoch
        if e == next_epoch:
            next_epoch += epoch_cycles
        t = e


@dataclass(frozen=True)
class ShardPlan:
    """Static partition of one system across shards.

    Shard 0 holds every tile; shards ``1..num_shards-1`` own contiguous
    memory-controller groups: ``owner(mc) = 1 + mc * (N-1) // num_mcs``.
    With more target shards than controllers the surplus shards own
    nothing and merely idle through the windows — wasteful but legal,
    so small configs still accept any ``--shards``.  The partition is a
    pure function of ``(num_shards, num_mcs)``, so every worker derives
    the identical map (and the run-spec hash only needs the shard count
    plus this scheme's name).
    """

    num_shards: int
    num_mcs: int
    lookahead: int
    epoch_cycles: int

    #: Partition-scheme identifier, included in shard-aware RunSpec
    #: hashes so a cache entry written under one scheme is never served
    #: to another.
    SCHEME = "source0/mc-contiguous"

    def __post_init__(self) -> None:
        if self.num_shards < 2:
            raise SimulationError("a shard plan needs at least 2 shards")
        if self.lookahead < 1:
            raise SimulationError("lookahead must be >= 1")

    @classmethod
    def from_system(cls, system: "System", num_shards: int) -> "ShardPlan":
        return cls(
            num_shards=num_shards,
            num_mcs=system.config.num_mcs,
            lookahead=system.topology.min_tile_to_mc_latency(),
            epoch_cycles=system.config.epoch_cycles,
        )

    def owner_of_mc(self, mc_id: int) -> int:
        """Target shard owning memory controller ``mc_id``."""
        return 1 + (mc_id * (self.num_shards - 1)) // self.num_mcs

    def mcs_of_shard(self, shard_id: int) -> tuple[int, ...]:
        """Memory controllers owned by ``shard_id`` (empty for shard 0)."""
        return tuple(
            mc_id
            for mc_id in range(self.num_mcs)
            if shard_id != 0 and self.owner_of_mc(mc_id) == shard_id
        )


@dataclass
class EpochDelta:
    """Target-shard statistics shipped to the source at an epoch barrier.

    Every field is a *delta* since the previous barrier except
    ``class_latency_max`` (a running maximum, merged with ``max``) and
    ``occupancies`` (this epoch's averaged read-queue occupancy per
    owned MC, fed through the source's
    :meth:`~repro.core.saturation.SaturationMonitor.apply`).
    """

    classes: dict[int, tuple[int, ...]] = field(default_factory=dict)
    class_latency_max: dict[int, int] = field(default_factory=dict)
    epoch_bytes: dict[int, int] = field(default_factory=dict)
    latencies: dict[int, list[int]] = field(default_factory=dict)
    requests_enqueued: int = 0
    requests_rejected: int = 0
    bus_busy_cycles: int = 0
    mc_active_cycles: int = 0
    occupancies: dict[int, float] = field(default_factory=dict)


@dataclass
class FinalPayload:
    """Everything a target shard ships to the source at end of run."""

    tail: EpochDelta
    mirrors: dict[int, dict]
    sent: dict[int, int]
    received: dict[int, int]


class ShardRunner:
    """Drives one shard's engine between barriers; transport-agnostic.

    The runner wires the shard's role onto its (cloned) system via
    instance-attribute overrides — zero cost to the single-process hot
    path, whose methods stay untouched at class level — and exposes the
    per-window primitives the backends sequence:
    ``inject_due -> run_window -> take_outbox/receive -> epoch_delta /
    apply_epoch`` and the ``finalize_*`` pair.
    """

    def __init__(self, system: "System", plan: ShardPlan, shard_id: int) -> None:
        if not 0 <= shard_id < plan.num_shards:
            raise SimulationError(f"shard_id {shard_id} outside plan")
        if system._epochs_started:
            raise SimulationError("sharded runs need a freshly built system")
        if system.engine.tracer is not None:
            raise SimulationError(
                "request tracing is not supported in sharded runs (the "
                "tracer would only see one shard's hops)"
            )
        self.system = system
        self.plan = plan
        self.shard_id = shard_id
        self.my_mcs = plan.mcs_of_shard(shard_id)
        #: Inbound messages not yet due: ``(when, src_shard, seq, req)``.
        self._stash: list[tuple] = []
        #: Outbound batches per destination shard.
        self._outboxes: dict[int, list[tuple]] = {}
        self._out_seq: dict[int, int] = {}
        #: Cross-shard conservation counters, per peer shard.
        self.sent: dict[int, int] = {}
        self.received: dict[int, int] = {}
        # epoch-delta snapshots (targets)
        self._class_snap: dict[int, tuple[int, ...]] = {}
        self._agg_snap = (0, 0, 0, 0)
        self._lat_snap: dict[int, int] = {}
        if shard_id == 0:
            self._wire_source()
        else:
            self._wire_target()

    # ------------------------------------------------------------------
    # role wiring
    # ------------------------------------------------------------------
    def _wire_source(self) -> None:
        """Shard 0: all tiles live here; MC-bound traffic leaves as messages."""
        system = self.system
        system._inject = self._source_inject
        system._send_writeback = self._source_send_writeback

    def _wire_target(self) -> None:
        """Shards 1..N-1: owned MCs serve; completions leave as messages."""
        system = self.system
        engine = system.engine
        # independent stream family for any target-side RNG consumer;
        # nothing has drawn yet (the clone is pristine), so dropping the
        # construction-time children is safe
        engine._seed = shard_seed(engine._seed, self.shard_id)
        engine._rng_children = {}
        for mc_id in self.my_mcs:
            controller = system.controllers[mc_id]
            # read returns cross shards: disable hop fusion (it would
            # schedule the core response locally) and route completions
            # into the outbox instead
            controller._fused = None
            controller.on_read_complete = self._target_read_complete

    # ------------------------------------------------------------------
    # source-side overrides (shadow System methods per instance)
    # ------------------------------------------------------------------
    def _source_inject(self, core, req, outcome) -> None:
        """`System._inject` with the MC delivery rerouted to a message."""
        system = self.system
        engine = system.engine
        req.released_at = engine._now
        req.noc_seq = system._noc_seq
        system._noc_seq += 1
        core_id = core.core_id
        slice_tile = outcome.l3_slice if outcome.l3_slice >= 0 else core_id
        if req.l3_hit:
            when = engine._now + system._hit_delay[core_id][slice_tile]
            engine.post_at(when, system._enqueue_response, core, req)
            return
        _, mc_id, req.bank_id, req.row_id = system._decode(req.addr)
        req.mc_id = mc_id
        when = engine._now + system._miss_delay[core_id][slice_tile][mc_id]
        self._emit(self.plan.owner_of_mc(mc_id), when, req)
        for writeback in outcome.mem_writebacks:
            system._send_writeback(core, writeback, slice_tile)

    def _source_send_writeback(self, core, info, slice_tile: int) -> None:
        """`System._send_writeback` with the delivery rerouted to a message."""
        system = self.system
        engine = system.engine
        if system.config.writeback_accounting == "owner":
            qos_id = info.owner_qos_id
            system.mechanism.charge_class_writeback(qos_id)
        else:
            qos_id = core.qos_id
        wb = MemoryRequest(
            addr=info.addr,
            access=AccessType.WRITEBACK,
            qos_id=qos_id,
            core_id=core.core_id,
            size=system.config.line_bytes,
        )
        wb.created_at = engine._now
        wb.released_at = engine._now
        wb.noc_seq = system._noc_seq
        system._noc_seq += 1
        _, wb.mc_id, wb.bank_id, wb.row_id = system._decode(info.addr)
        if engine.sanitizer is not None:
            engine.sanitizer.on_inject(wb)
        when = engine._now + system.topology.tile_to_mc_latency(
            slice_tile, wb.mc_id
        )
        self._emit(self.plan.owner_of_mc(wb.mc_id), when, wb)

    # ------------------------------------------------------------------
    # target-side overrides
    # ------------------------------------------------------------------
    def _target_read_complete(self, req: MemoryRequest) -> None:
        """Unfused read completion: the response crosses back to shard 0."""
        system = self.system
        if req.core_id not in system.cores:
            return
        delay = system.topology.tile_to_mc_latency(req.core_id, req.mc_id)
        self._emit(0, system.engine._now + delay, req)

    # ------------------------------------------------------------------
    # boundary traffic
    # ------------------------------------------------------------------
    def _emit(self, dst_shard: int, when: int, req: MemoryRequest) -> None:
        seq = self._out_seq.get(dst_shard, 0)
        self._out_seq[dst_shard] = seq + 1
        outbox = self._outboxes.get(dst_shard)
        if outbox is None:
            outbox = []
            self._outboxes[dst_shard] = outbox
        outbox.append((when, seq, req))
        self.sent[dst_shard] = self.sent.get(dst_shard, 0) + 1

    def take_outbox(self, dst_shard: int) -> list[tuple]:
        """Drain the batch destined for ``dst_shard`` (empty list if none)."""
        outbox = self._outboxes.get(dst_shard)
        if not outbox:
            return []
        self._outboxes[dst_shard] = []
        return outbox

    def receive(self, src_shard: int, messages: list[tuple]) -> None:
        """Stash a boundary batch from ``src_shard`` for later injection."""
        self._stash.extend(
            (when, src_shard, seq, req) for when, seq, req in messages
        )
        self.received[src_shard] = self.received.get(src_shard, 0) + len(messages)

    def inject_due(self, limit: int) -> None:
        """Inject every stashed message with ``when < limit``.

        Injection order is the canonical ``(when, src_shard, seq)``
        sort — a total order, so the schedule cannot depend on the
        order the transport delivered the batches.
        """
        stash = self._stash
        due = [m for m in stash if m[0] < limit]
        if not due:
            return
        self._stash = [m for m in stash if m[0] >= limit]
        due = sort_boundary_batch(due)
        system = self.system
        engine = system.engine
        sanitizer = engine.sanitizer
        if self.shard_id == 0:
            # responses coming home: the shipped copy carries the full
            # stamp chain, so it replaces the local original everywhere
            # downstream (MSHR completion keys on the address)
            cores = system.cores
            enqueue = system._enqueue_response
            for when, _src, _seq, req in due:
                if sanitizer is not None:
                    # completion happened on the target shard; settle the
                    # source-side conservation ledger at injection
                    sanitizer.on_complete(req)
                engine.post_at(when, enqueue, cores[req.core_id], req)
        else:
            deliver = system._deliver
            for when, _src, _seq, req in due:
                if sanitizer is not None:
                    sanitizer.on_inject(req)
                engine.post_at(when, deliver, req)

    # ------------------------------------------------------------------
    # windows
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start the shard's active components (source shard: the cores)."""
        system = self.system
        system._epochs_started = True
        system._next_epoch_at = system.config.epoch_cycles
        if self.shard_id == 0:
            for core in system.cores.values():
                core.start()

    def run_window(self, end: int) -> None:
        """Dispatch cycles up to ``end - 1`` and park the clock on ``end``.

        Mirrors :meth:`System.run`'s boundary semantics: after this call
        the clock stands *at* the barrier with none of the barrier
        cycle's events dispatched, so epoch accounting and cross-shard
        injection observe the same clock in every mode.
        """
        engine = self.system.engine
        engine.run_until(end - 1)
        engine.advance_clock(end)
        self.system._next_epoch_at = end  # kept coherent for introspection

    def run_tail(self, end: int) -> None:
        """Dispatch the final boundary cycle's events (clock already at end)."""
        self.system.engine.run_until(end)

    # ------------------------------------------------------------------
    # epoch barriers
    # ------------------------------------------------------------------
    def epoch_delta(self) -> EpochDelta:
        """Target shard: statistics delta since the previous barrier.

        Must run with the clock parked on the boundary (after
        :meth:`run_window`), so the occupancy integrals divide by the
        same elapsed window the single-process monitor uses.
        """
        system = self.system
        stats = system.stats
        delta = EpochDelta()
        for qos_id in sorted(stats.classes):
            cs = stats.classes[qos_id]
            current = tuple(
                getattr(cs, name) for name in _CLASS_DELTA_FIELDS
            )
            previous = self._class_snap.get(
                qos_id, (0,) * len(_CLASS_DELTA_FIELDS)
            )
            self._class_snap[qos_id] = current
            fields = tuple(c - p for c, p in zip(current, previous))
            if any(fields):
                delta.classes[qos_id] = fields
            delta.class_latency_max[qos_id] = cs.read_latency_max
        delta.epoch_bytes = dict(sorted(stats._epoch_bytes.items()))
        stats._epoch_bytes = {}
        if stats.sample_latencies:
            for qos_id in sorted(stats.read_latencies):
                samples = stats.read_latencies[qos_id]
                seen = self._lat_snap.get(qos_id, 0)
                if len(samples) > seen:
                    delta.latencies[qos_id] = samples[seen:]
                    self._lat_snap[qos_id] = len(samples)
        aggregates = (
            stats.requests_enqueued,
            stats.requests_rejected,
            stats.bus_busy_cycles,
            stats.mc_active_cycles,
        )
        (
            delta.requests_enqueued,
            delta.requests_rejected,
            delta.bus_busy_cycles,
            delta.mc_active_cycles,
        ) = tuple(c - p for c, p in zip(aggregates, self._agg_snap))
        self._agg_snap = aggregates
        delta.occupancies = {
            mc_id: system.controllers[mc_id].sample_read_occupancy()
            for mc_id in self.my_mcs
        }
        return delta

    def merge_delta(self, delta: EpochDelta) -> None:
        """Source shard: fold one target's delta into the shared stats."""
        stats = self.system.stats
        for qos_id in sorted(delta.classes):
            cs = stats.class_stats(qos_id)
            for name, value in zip(_CLASS_DELTA_FIELDS, delta.classes[qos_id]):
                setattr(cs, name, getattr(cs, name) + value)
        for qos_id in sorted(delta.class_latency_max):
            cs = stats.class_stats(qos_id)
            if delta.class_latency_max[qos_id] > cs.read_latency_max:
                cs.read_latency_max = delta.class_latency_max[qos_id]
        epoch_bytes = stats._epoch_bytes
        for qos_id, nbytes in delta.epoch_bytes.items():
            epoch_bytes[qos_id] = epoch_bytes.get(qos_id, 0) + nbytes
        for qos_id in sorted(delta.latencies):
            stats.read_latencies.setdefault(qos_id, []).extend(
                delta.latencies[qos_id]
            )
        stats.requests_enqueued += delta.requests_enqueued
        stats.requests_rejected += delta.requests_rejected
        stats.bus_busy_cycles += delta.bus_busy_cycles
        stats.mc_active_cycles += delta.mc_active_cycles

    def apply_epoch(self, deltas: list[tuple[int, EpochDelta]]) -> None:
        """Source shard: run the epoch tick from the targets' deltas.

        Replays :meth:`System._epoch_tick` exactly, with the shipped
        per-MC occupancies standing in for local samples — fed through
        :meth:`SaturationMonitor.apply`, the identical threshold
        arithmetic, in MC order.
        """
        system = self.system
        occupancies = [0.0] * system.config.num_mcs
        for _shard_id, delta in sorted(deltas, key=itemgetter(0)):
            self.merge_delta(delta)
            for mc_id, occupancy in delta.occupancies.items():
                occupancies[mc_id] = occupancy
        saturated = system.saturation.apply(occupancies)
        system.mechanism.on_epoch(
            saturated, tuple(system.saturation.last_signals)
        )
        system.stats.close_epoch(
            system.engine.now,
            saturated=saturated,
            multiplier=system.mechanism.multiplier(),
        )

    # ------------------------------------------------------------------
    # finalize
    # ------------------------------------------------------------------
    def finalize_target(self) -> FinalPayload:
        """Close the target's accounting and package the shipment home."""
        system = self.system
        for mc_id in self.my_mcs:
            system.controllers[mc_id].finalize()
        tail = self.epoch_delta()
        mirrors = {mc_id: self._mirror_blob(mc_id) for mc_id in self.my_mcs}
        if system.engine.sanitizer is not None:
            system.engine.sanitizer.on_run_end(None)
        return FinalPayload(
            tail=tail,
            mirrors=mirrors,
            sent=dict(self.sent),
            received=dict(self.received),
        )

    def _mirror_blob(self, mc_id: int) -> dict:
        system = self.system
        controller = system.controllers[mc_id]
        return {
            "controller": {
                key: getattr(controller, key) for key in _MIRROR_KEYS
            },
            "pending_reads": system._mc_pending_reads[mc_id],
            "pending_writes": system._mc_pending_writes[mc_id],
            "read_sources": system._mc_read_sources[mc_id],
            "rr_pointer": system._mc_rr_pointer[mc_id],
        }

    def finalize_source(self, payloads: list[tuple[int, FinalPayload]]) -> None:
        """Fold the targets' final shipments in and close the run.

        After this the source system's stats, controllers, and pending
        structures are byte-equivalent to a finalized single-process
        run's, and the sanitizer (if attached) has verified both
        request conservation over the merged stats and cross-shard
        boundary-message conservation.
        """
        system = self.system
        for controller in system.controllers:
            controller.finalize()  # dormant: closes the occupancy window only
        conservation = []
        for shard_id, payload in sorted(payloads, key=itemgetter(0)):
            self.merge_delta(payload.tail)
            for mc_id in sorted(payload.mirrors):
                self._apply_mirror(mc_id, payload.mirrors[mc_id])
            conservation.append(
                (0, shard_id, self.sent.get(shard_id, 0), payload.received.get(0, 0))
            )
            conservation.append(
                (shard_id, 0, payload.sent.get(0, 0), self.received.get(shard_id, 0))
            )
        check_boundary_conservation(conservation)
        if system.engine.sanitizer is not None:
            system.engine.sanitizer.on_run_end(system.stats)

    def _apply_mirror(self, mc_id: int, blob: dict) -> None:
        system = self.system
        controller = system.controllers[mc_id]
        state = blob["controller"]
        # the obs registry holds (object, attr) providers captured at
        # construction — update the *existing* policy object in place so
        # arbiter gauges read the target's counters
        shipped_policy = state["policy"]
        if type(controller.policy) is type(shipped_policy):
            controller.policy.__dict__.update(shipped_policy.__dict__)
        else:  # pragma: no cover - mismatched clone, ship the object
            controller.policy = shipped_policy
        for key in _MIRROR_KEYS:
            if key != "policy":
                setattr(controller, key, state[key])
        system._mc_pending_reads[mc_id] = blob["pending_reads"]
        system._mc_pending_writes[mc_id] = blob["pending_writes"]
        system._mc_read_sources[mc_id] = blob["read_sources"]
        system._mc_rr_pointer[mc_id] = blob["rr_pointer"]
