"""Simulation kernel: engine, records, stats, topology, config, system."""

from repro.sim.config import SystemConfig
from repro.sim.engine import Engine, Event, SimulationError
from repro.sim.mechanism import QoSMechanism
from repro.sim.records import AccessType, MemoryRequest
from repro.sim.sanitizer import SimSanitizer
from repro.sim.stats import ClassStats, EpochSample, Stats

__all__ = [
    "AccessType", "ClassStats", "Engine", "EpochSample", "Event",
    "MemoryRequest", "QoSMechanism", "SimSanitizer", "SimulationError",
    "Stats", "SystemConfig",
]
