"""Interface between the simulated machine and a bandwidth-QoS mechanism.

A :class:`QoSMechanism` is the pluggable "hardware" under evaluation:
PABST, its source-only and target-only ablations, one of the rival
mechanisms in :mod:`repro.mechanisms`, or nothing at all.  The
:class:`~repro.sim.system.System` calls these hooks:

* ``prepare_config``     — once, before anything is built from the config
                           (machine-level mechanisms, e.g. the static
                           bandwidth partition, rewrite it here);
* ``attach``             — once, after the machine is built;
* ``mc_policy``          — scheduling policy for each memory controller;
* ``request_release``    — an L2 miss wants to enter the NoC (pacer point);
* ``on_response``        — a response reached the source (L3-hit undo and
                           writeback charging);
* ``on_epoch``           — the epoch heartbeat with the wired-OR SAT value.

The base class implements the do-nothing mechanism, which doubles as the
no-QoS baseline.

Every mechanism also reports a uniform ``mechanism.*`` counter namespace
on the obs registry (epochs seen, releases granted/denied, writeback
charges).  The counters are maintained by the base-class hooks, so a
subclass that overrides a hook must either call ``super()`` or account
for the event itself — otherwise its arena columns read zero.  PABST
derives the release counters from its pacers instead (see
:meth:`repro.core.pabst.PabstMechanism.obs_releases_granted`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.dram.schedulers import SchedulingPolicy
from repro.sim.records import MemoryRequest

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.qos.classes import QoSRegistry
    from repro.sim.config import SystemConfig
    from repro.sim.system import System

__all__ = ["QoSMechanism"]


class QoSMechanism:
    """Default mechanism: unregulated baseline (plain FR-FCFS, no pacing)."""

    name = "none"

    # Uniform counter state, as class-level defaults: subclasses need no
    # ``super().__init__()`` call, and the first ``+= 1`` creates the
    # instance attribute (so fresh mechanisms contribute no instance
    # state to checkpoint prefix descriptions).
    _obs_epochs = 0
    _obs_granted = 0
    _obs_denied = 0
    _obs_writebacks = 0

    def prepare_config(
        self, config: "SystemConfig", registry: "QoSRegistry"
    ) -> "SystemConfig":
        """Rewrite the machine configuration before the system is built.

        Called once by :class:`~repro.sim.system.System` before any
        component exists.  Most mechanisms return ``config`` unchanged;
        machine-level ones (the static bandwidth partition emulated via
        DRAM frequency scaling) return a replacement.
        """
        return config

    def attach(self, system: "System") -> None:
        """Wire the mechanism to a freshly built system."""

    def mc_policy(self, mc_id: int) -> SchedulingPolicy | None:
        """Scheduling policy for memory controller ``mc_id`` (None = default)."""
        return None

    def request_release(
        self, core_id: int, req: MemoryRequest, release: Callable[[], None]
    ) -> None:
        """An L2 miss asks to enter the NoC; call ``release`` to let it go."""
        self._obs_granted += 1
        release()

    def on_response(self, core_id: int, req: MemoryRequest) -> None:
        """A response arrived back at its source tile."""

    def charge_class_writeback(self, qos_id: int) -> None:
        """Charge one writeback to a class directly (owner accounting).

        Used only when the system runs ``writeback_accounting="owner"``
        (Section V-C alternative); the default demand accounting charges
        through the response flag instead.
        """
        self._obs_writebacks += 1

    def on_epoch(
        self, saturated: bool, per_mc: tuple[bool, ...] | None = None
    ) -> None:
        """Epoch heartbeat.

        ``saturated`` is the global wired-OR SAT value the paper's design
        broadcasts; ``per_mc`` carries the individual controller signals
        for mechanisms implementing the per-controller alternative of
        Section III-C1.  Subclasses must call ``super().on_epoch(...)``
        so the uniform ``mechanism.epochs`` counter stays honest.
        """
        self._obs_epochs += 1

    def multiplier(self) -> int:
        """Current governor multiplier M, or -1 when not applicable."""
        return -1

    # ------------------------------------------------------------------
    # uniform observability
    # ------------------------------------------------------------------
    @property
    def obs_epochs(self) -> int:
        """Epoch heartbeats this mechanism has seen."""
        return self._obs_epochs

    @property
    def obs_releases_granted(self) -> int:
        """Requests released onto the NoC (immediately or after a stall)."""
        return self._obs_granted

    @property
    def obs_releases_denied(self) -> int:
        """Release requests deferred at least once before being granted."""
        return self._obs_denied

    @property
    def obs_writeback_charges(self) -> int:
        """Writebacks charged against a class's allocation."""
        return self._obs_writebacks

    def bound_report(self) -> dict | None:
        """Worst-case guarantee check, for WCET-style mechanisms.

        ``None`` means the mechanism offers no worst-case bound.  WCET
        mechanisms (the DPQ arbiter, the per-bank regulator) return a
        dict with at least ``bound``, ``max_observed``, ``violations``,
        and ``ok`` keys; the arena report prints the verdict.
        """
        return None

    def register_obs(self, registry) -> None:
        """Register mechanism counters/gauges on the system's obs registry.

        Called once by :class:`~repro.sim.system.System` right after
        :meth:`attach`.  The base registers the uniform ``mechanism.*``
        namespace every mechanism reports; mechanisms with internal
        state (pacers, governors, arbiters) extend it — see
        :meth:`repro.core.pabst.PabstMechanism.register_obs` — and must
        call ``super().register_obs(registry)``.
        """
        registry.register_counter("mechanism.epochs", self, "obs_epochs")
        registry.register_counter(
            "mechanism.releases_granted", self, "obs_releases_granted"
        )
        registry.register_counter(
            "mechanism.releases_denied", self, "obs_releases_denied"
        )
        registry.register_counter(
            "mechanism.writeback_charges", self, "obs_writeback_charges"
        )
