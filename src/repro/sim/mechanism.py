"""Interface between the simulated machine and a bandwidth-QoS mechanism.

A :class:`QoSMechanism` is the pluggable "hardware" under evaluation:
PABST, its source-only and target-only ablations, or nothing at all.  The
:class:`~repro.sim.system.System` calls these hooks:

* ``attach``             — once, after the machine is built;
* ``mc_policy``          — scheduling policy for each memory controller;
* ``request_release``    — an L2 miss wants to enter the NoC (pacer point);
* ``on_response``        — a response reached the source (L3-hit undo and
                           writeback charging);
* ``on_epoch``           — the epoch heartbeat with the wired-OR SAT value.

The base class implements the do-nothing mechanism, which doubles as the
no-QoS baseline.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.dram.schedulers import SchedulingPolicy
from repro.sim.records import MemoryRequest

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.system import System

__all__ = ["QoSMechanism"]


class QoSMechanism:
    """Default mechanism: unregulated baseline (plain FR-FCFS, no pacing)."""

    name = "none"

    def attach(self, system: "System") -> None:
        """Wire the mechanism to a freshly built system."""

    def mc_policy(self, mc_id: int) -> SchedulingPolicy | None:
        """Scheduling policy for memory controller ``mc_id`` (None = default)."""
        return None

    def request_release(
        self, core_id: int, req: MemoryRequest, release: Callable[[], None]
    ) -> None:
        """An L2 miss asks to enter the NoC; call ``release`` to let it go."""
        release()

    def on_response(self, core_id: int, req: MemoryRequest) -> None:
        """A response arrived back at its source tile."""

    def charge_class_writeback(self, qos_id: int) -> None:
        """Charge one writeback to a class directly (owner accounting).

        Used only when the system runs ``writeback_accounting="owner"``
        (Section V-C alternative); the default demand accounting charges
        through the response flag instead.
        """

    def on_epoch(
        self, saturated: bool, per_mc: tuple[bool, ...] | None = None
    ) -> None:
        """Epoch heartbeat.

        ``saturated`` is the global wired-OR SAT value the paper's design
        broadcasts; ``per_mc`` carries the individual controller signals
        for mechanisms implementing the per-controller alternative of
        Section III-C1.
        """

    def multiplier(self) -> int:
        """Current governor multiplier M, or -1 when not applicable."""
        return -1

    def register_obs(self, registry) -> None:
        """Register mechanism counters/gauges on the system's obs registry.

        Called once by :class:`~repro.sim.system.System` right after
        :meth:`attach`.  The baseline has nothing to report; mechanisms
        with internal state (pacers, governors, arbiters) override this
        — see :meth:`repro.core.pabst.PabstMechanism.register_obs`.
        """
