"""Opt-in runtime invariant checker for simulation runs.

The determinism linter (:mod:`repro.devtools.lint`) catches structural
hazards statically; this sanitizer catches the dynamic ones.  When a
:class:`SimSanitizer` is attached to an :class:`~repro.sim.engine.Engine`
(``engine.sanitizer = SimSanitizer()``, or ``System(..., sanitize=True)``),
the machine verifies on every hop that:

* the event clock never moves backwards (engine dispatch loop);
* each request's lifecycle timestamps are monotone in stage order
  (``created <= released <= arrived_mc <= dispatched <= issued <=
  completed``) and no later stage is stamped before ``created``;
* per-class virtual deadlines assigned by the arbiter never regress
  (the EDF invariant the paper's latency bounds rest on);
* requests are conserved: everything injected is either completed or
  still identifiably in flight at end of run, and nothing completes
  twice or appears out of nowhere.

Violations raise :class:`~repro.sim.engine.SimulationError` carrying the
offending request's full hop trace, so the failure points at the hop that
went wrong rather than at a corrupted figure three layers later.

Fused read-return chains (``Engine.post_chain_at``, see DESIGN.md §7)
are transparent to these checks: the controller still stamps
``completed_at`` at bank-service time — the first hop of the chain —
and the core response dispatches one NoC return delay later, so the
lifecycle monotonicity and conservation invariants see exactly the
timestamps the unfused two-event path would have produced.

The sanitizer costs one dict lookup and a few comparisons per hop; it is
off by default and intended for CI integration runs and debugging.
"""

from __future__ import annotations

from repro.sim.engine import SimulationError
from repro.sim.records import MemoryRequest

__all__ = ["SimSanitizer"]


class SimSanitizer:
    """Collects and enforces run-wide invariants; attach to an Engine."""

    def __init__(self) -> None:
        self._last_event_when = 0
        self._inflight: dict[int, MemoryRequest] = {}
        # Virtual clocks live per arbiter, i.e. per controller — key the
        # monotonicity check by (mc, class), not class alone.
        self._class_deadlines: dict[tuple[int, int], int] = {}
        self.injected = 0
        self.completed = 0
        self.checks = 0
        self.violations = 0

    # ------------------------------------------------------------------
    # engine hook
    # ------------------------------------------------------------------
    def on_event(self, when: int, now: int) -> None:
        """Called by the engine before dispatching each event."""
        self.checks += 1
        if when < now or when < self._last_event_when:
            self._fail(
                f"event clock moved backwards: dispatching at {when} after "
                f"now={now} (last dispatch at {self._last_event_when})"
            )
        self._last_event_when = when

    # ------------------------------------------------------------------
    # request hooks
    # ------------------------------------------------------------------
    def on_inject(self, req: MemoryRequest) -> None:
        """A request entered the system (L2 miss or L3 writeback)."""
        self.checks += 1
        if req.req_id in self._inflight:
            self._fail(f"request injected twice: {req.hop_trace()}")
        self._check_lifecycle(req)
        self._inflight[req.req_id] = req
        self.injected += 1

    def on_accept(self, req: MemoryRequest) -> None:
        """A controller front-end accepted the request."""
        self._check_lifecycle(req)
        if req.is_read and req.virtual_deadline:
            key = (req.mc_id, req.qos_id)
            last = self._class_deadlines.get(key, 0)
            if req.virtual_deadline < last:
                self._fail(
                    f"class {req.qos_id} virtual deadline regressed at "
                    f"mc {req.mc_id}: {req.virtual_deadline} after {last} — "
                    f"{req.hop_trace()}"
                )
            self._class_deadlines[key] = req.virtual_deadline

    def on_issue(self, req: MemoryRequest) -> None:
        """A bank access began for the request."""
        self._check_lifecycle(req)

    def on_complete(self, req: MemoryRequest) -> None:
        """The request finished (DRAM data transfer or local L3 hit)."""
        self.checks += 1
        if req.req_id not in self._inflight:
            self._fail(
                "request completed that was never injected (or completed "
                f"twice): {req.hop_trace()}"
            )
        if req.completed_at < 0:
            self._fail(f"request completed without a timestamp: {req.hop_trace()}")
        self._check_lifecycle(req)
        del self._inflight[req.req_id]
        self.completed += 1

    # ------------------------------------------------------------------
    # end-of-run conservation
    # ------------------------------------------------------------------
    @property
    def in_flight(self) -> int:
        return len(self._inflight)

    def on_run_end(self) -> None:
        """Verify request conservation once the run is finalized."""
        self.checks += 1
        if self.injected != self.completed + len(self._inflight):
            self._fail(
                f"request conservation violated: injected={self.injected} "
                f"!= completed={self.completed} + "
                f"in_flight={len(self._inflight)}"
            )
        for req in self._inflight.values():
            self._check_lifecycle(req)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _check_lifecycle(self, req: MemoryRequest) -> None:
        self.checks += 1
        problem = req.lifecycle_violation()
        if problem is not None:
            self._fail(f"{problem}: {req.hop_trace()}")

    def _fail(self, message: str) -> None:
        self.violations += 1
        raise SimulationError(f"sanitizer: {message}")
