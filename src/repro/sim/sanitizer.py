"""Opt-in runtime invariant checker for simulation runs.

The determinism linter (:mod:`repro.devtools.lint`) catches structural
hazards statically; this sanitizer catches the dynamic ones.  When a
:class:`SimSanitizer` is attached to an :class:`~repro.sim.engine.Engine`
(``engine.sanitizer = SimSanitizer()``, or ``System(..., sanitize=True)``),
the machine verifies on every hop that:

* the event clock never moves backwards (engine dispatch loop);
* each request's lifecycle timestamps are monotone in stage order
  (``created <= released <= arrived_mc <= dispatched <= issued <=
  completed``) and no later stage is stamped before ``created``;
* per-class virtual deadlines assigned by the arbiter never regress
  (the EDF invariant the paper's latency bounds rest on);
* requests are conserved: everything injected is either completed or
  still identifiably in flight at end of run, and nothing completes
  twice or appears out of nowhere.

Violations raise :class:`~repro.sim.engine.SimulationError` carrying the
offending request's full hop trace, so the failure points at the hop that
went wrong rather than at a corrupted figure three layers later.

Fused read-return chains (``Engine.post_chain_at``, see DESIGN.md §7)
are transparent to these checks: the controller still stamps
``completed_at`` at bank-service time — the first hop of the chain —
and the core response dispatches one NoC return delay later, so the
lifecycle monotonicity and conservation invariants see exactly the
timestamps the unfused two-event path would have produced.

The sanitizer costs one dict lookup and a few comparisons per hop; it is
off by default and intended for CI integration runs and debugging.
"""

from __future__ import annotations

from repro.sim.engine import _WHEEL_MASK, _WHEEL_SIZE, Event, SimulationError
from repro.sim.records import MemoryRequest

__all__ = ["SimSanitizer", "check_boundary_conservation"]


def check_boundary_conservation(
    pairs: list[tuple[int, int, int, int]],
) -> None:
    """Verify cross-shard message conservation at the end of a sharded run.

    ``pairs`` holds one ``(src_shard, dst_shard, sent, received)`` tuple
    per directed shard link: ``sent`` counted by the sender's runner,
    ``received`` by the receiver's.  A mismatch means a boundary batch
    was lost, duplicated, or delivered to the wrong shard — the sharded
    analogue of the single-process conservation check, covering the
    transport the per-engine sanitizers cannot see.
    """
    for src_shard, dst_shard, sent, received in pairs:
        if sent != received:
            raise SimulationError(
                "sanitizer: cross-shard message conservation violated on "
                f"link {src_shard}->{dst_shard}: sender counted {sent} "
                f"message(s), receiver counted {received}"
            )


class SimSanitizer:
    """Collects and enforces run-wide invariants; attach to an Engine."""

    def __init__(self) -> None:
        self._last_event_when = 0
        self._inflight: dict[int, MemoryRequest] = {}
        # Virtual clocks live per arbiter, i.e. per controller — key the
        # monotonicity check by (mc, class), not class alone.
        self._class_deadlines: dict[tuple[int, int], int] = {}
        self.injected = 0
        self.completed = 0
        self.checks = 0
        self.violations = 0

    # ------------------------------------------------------------------
    # engine hook
    # ------------------------------------------------------------------
    def on_event(self, when: int, now: int) -> None:
        """Called by the engine before dispatching each event."""
        self.checks += 1
        if when < now or when < self._last_event_when:
            self._fail(
                f"event clock moved backwards: dispatching at {when} after "
                f"now={now} (last dispatch at {self._last_event_when})"
            )
        self._last_event_when = when

    # ------------------------------------------------------------------
    # request hooks
    # ------------------------------------------------------------------
    def on_inject(self, req: MemoryRequest) -> None:
        """A request entered the system (L2 miss or L3 writeback)."""
        self.checks += 1
        if req.req_id in self._inflight:
            self._fail(f"request injected twice: {req.hop_trace()}")
        self._check_lifecycle(req)
        self._inflight[req.req_id] = req
        self.injected += 1

    def on_accept(self, req: MemoryRequest) -> None:
        """A controller front-end accepted the request."""
        self._check_lifecycle(req)
        if req.is_read and req.virtual_deadline:
            key = (req.mc_id, req.qos_id)
            last = self._class_deadlines.get(key, 0)
            if req.virtual_deadline < last:
                self._fail(
                    f"class {req.qos_id} virtual deadline regressed at "
                    f"mc {req.mc_id}: {req.virtual_deadline} after {last} — "
                    f"{req.hop_trace()}"
                )
            self._class_deadlines[key] = req.virtual_deadline

    def on_issue(self, req: MemoryRequest) -> None:
        """A bank access began for the request."""
        self._check_lifecycle(req)

    def on_complete(self, req: MemoryRequest) -> None:
        """The request finished (DRAM data transfer or local L3 hit)."""
        self.checks += 1
        if req.req_id not in self._inflight:
            self._fail(
                "request completed that was never injected (or completed "
                f"twice): {req.hop_trace()}"
            )
        if req.completed_at < 0:
            self._fail(f"request completed without a timestamp: {req.hop_trace()}")
        self._check_lifecycle(req)
        del self._inflight[req.req_id]
        self.completed += 1

    # ------------------------------------------------------------------
    # end-of-run conservation
    # ------------------------------------------------------------------
    @property
    def in_flight(self) -> int:
        return len(self._inflight)

    def on_run_end(self, stats=None) -> None:
        """Verify request conservation once the run is finalized.

        When the run's :class:`~repro.sim.stats.Stats` is supplied, two
        accounting invariants are checked on top of conservation:

        * ``bus_busy_cycles <= mc_active_cycles`` — the data bus cannot
          be busier than its controllers are active.  ``memory_efficiency``
          deliberately does not clamp this ratio, so a double-count
          surfaces here instead of saturating silently at 1.0;
        * per class, every completed read was either stage-attributed or
          explicitly counted unattributed (``reads_attributed +
          reads_unattributed == reads_completed``), and no read of a
          healthy run is unattributed.
        """
        self.checks += 1
        if self.injected != self.completed + len(self._inflight):
            self._fail(
                f"request conservation violated: injected={self.injected} "
                f"!= completed={self.completed} + "
                f"in_flight={len(self._inflight)}"
            )
        for req in self._inflight.values():
            self._check_lifecycle(req)
        if stats is None:
            return
        self.checks += 1
        if stats.bus_busy_cycles > stats.mc_active_cycles:
            self._fail(
                f"bus busy cycles exceed MC active cycles: "
                f"bus_busy_cycles={stats.bus_busy_cycles} > "
                f"mc_active_cycles={stats.mc_active_cycles} "
                "(double-counted bus reservation?)"
            )
        for qos_id, cls in sorted(stats.classes.items()):
            self.checks += 1
            if cls.reads_attributed + cls.reads_unattributed != cls.reads_completed:
                self._fail(
                    f"class {qos_id} read attribution does not add up: "
                    f"attributed={cls.reads_attributed} + "
                    f"unattributed={cls.reads_unattributed} != "
                    f"completed={cls.reads_completed}"
                )
            if cls.reads_unattributed:
                self._fail(
                    f"class {qos_id} completed {cls.reads_unattributed} "
                    "read(s) with partial lifecycle stamps (stage "
                    "attribution skipped) — a lifecycle-stamping bug"
                )

    # ------------------------------------------------------------------
    # checkpoint-restore validation
    # ------------------------------------------------------------------
    def on_restore(self, system) -> None:
        """Validate a system resurrected from a checkpoint.

        Called by :func:`repro.runner.checkpoint.restore_system` on the
        freshly unpickled object graph, before any measurement cycle
        runs.  The per-hop hooks above catch violations as they happen;
        this pass instead audits the *at-rest* state a snapshot claims
        to be in, so a corrupt, truncated, or version-skewed checkpoint
        fails here with a structural diagnosis instead of replaying into
        a silently wrong figure.

        Checks, in order:

        * wheel-window geometry: ``horizon == wheel_pos + wheel size``
          and the clock standing inside the window;
        * bucket accounting: ``_wheel_count`` equals the entries
          actually sitting in buckets;
        * live-event conservation: the live counter equals the
          uncancelled entries across wheel and overflow (a fired-but-
          queued or double-counted entry breaks replay ordering);
        * per-entry placement: every cancellable event sits in the
          bucket its timestamp maps to, inside the window, in the
          future, with a sequence number the engine has already minted
          (same for overflow heap entries, which must also respect the
          heap order the refill pop relies on);
        * request sanity: every queued in-flight request has monotone
          lifecycle stamps, none stamped beyond the restored clock, and
          a non-negative virtual deadline;
        * if a sanitizer was snapshotted with the system, its own
          carried state still satisfies conservation and clock bounds.
        """
        engine = system.engine
        now = engine._now
        wheel_pos = engine._wheel_pos
        horizon = engine._horizon
        if horizon != wheel_pos + _WHEEL_SIZE:
            self._fail(
                f"restored wheel window is torn: horizon={horizon} != "
                f"wheel_pos={wheel_pos} + {_WHEEL_SIZE}"
            )
        if not now <= wheel_pos <= now + 1:
            self._fail(
                f"restored clock outside its wheel window: now={now}, "
                f"wheel_pos={wheel_pos}"
            )
        # _wheel_count spans both phases: the main wheel and the late
        # wheel (whose entries are all fire-and-forget tuples)
        bucket_entries = sum(len(bucket) for bucket in engine._wheel)
        bucket_entries += sum(len(bucket) for bucket in engine._wheel_late)
        if bucket_entries != engine._wheel_count:
            self._fail(
                f"restored wheel count is stale: _wheel_count="
                f"{engine._wheel_count} but buckets hold {bucket_entries}"
            )
        live = 0
        seq_ceiling = engine._seq
        for index, bucket in enumerate(engine._wheel):
            for entry in bucket:
                if type(entry) in (tuple, list):
                    live += 1
                    continue
                self._check_restored_event(
                    entry, index, now, wheel_pos, horizon, seq_ceiling
                )
                if not entry.cancelled:
                    live += 1
        # late-phase entries are uncancellable fire-and-forget tuples
        live += sum(len(bucket) for bucket in engine._wheel_late)
        overflow = engine._overflow
        for heap_index, (when, seq, entry) in enumerate(overflow):
            if when < wheel_pos:
                self._fail(
                    f"restored overflow entry at cycle {when} is behind the "
                    f"wheel window start {wheel_pos}"
                )
            if seq >= seq_ceiling:
                self._fail(
                    f"restored overflow entry carries unminted seq {seq} "
                    f"(engine seq counter is {seq_ceiling})"
                )
            parent = (heap_index - 1) >> 1
            if heap_index and overflow[parent][:2] > (when, seq):
                self._fail(
                    f"restored overflow heap order violated at index "
                    f"{heap_index}: parent {overflow[parent][:2]} > "
                    f"child {(when, seq)}"
                )
            if isinstance(entry, Event):
                if entry.seq >= seq_ceiling:
                    self._fail(
                        f"restored overflow event carries unminted seq "
                        f"{entry.seq} (engine seq counter is {seq_ceiling})"
                    )
                if not entry.cancelled:
                    live += 1
            else:
                live += 1
        if live != engine._live:
            self._fail(
                f"restored live-event counter out of sync: engine says "
                f"{engine._live}, queues hold {live} live entries"
            )
        for req in self._iter_queued_requests(system):
            self._check_restored_request(req, now)
        snapshotted = engine.sanitizer
        if snapshotted is not None and snapshotted is not self:
            if snapshotted._last_event_when > now:
                self._fail(
                    "restored sanitizer saw an event at "
                    f"{snapshotted._last_event_when}, after the restored "
                    f"clock {now}"
                )
            if snapshotted.injected != (
                snapshotted.completed + len(snapshotted._inflight)
            ):
                self._fail(
                    "restored sanitizer violates conservation: injected="
                    f"{snapshotted.injected} != completed="
                    f"{snapshotted.completed} + in_flight="
                    f"{len(snapshotted._inflight)}"
                )
        self.checks += 1

    def _check_restored_event(
        self,
        event,
        bucket_index: int,
        now: int,
        wheel_pos: int,
        horizon: int,
        seq_ceiling: int,
    ) -> None:
        self.checks += 1
        if event.fired:
            self._fail(
                f"restored wheel holds an already-fired event for cycle "
                f"{event.when}"
            )
        if not wheel_pos <= event.when < horizon:
            self._fail(
                f"restored event at cycle {event.when} lies outside the "
                f"wheel window [{wheel_pos}, {horizon})"
            )
        if event.when < now:
            self._fail(
                f"restored event at cycle {event.when} is in the past "
                f"(clock is at {now})"
            )
        if (event.when & _WHEEL_MASK) != bucket_index:
            self._fail(
                f"restored event at cycle {event.when} sits in bucket "
                f"{bucket_index} instead of {event.when & _WHEEL_MASK}"
            )
        if event.seq >= seq_ceiling:
            self._fail(
                f"restored event carries unminted seq {event.seq} "
                f"(engine seq counter is {seq_ceiling})"
            )

    @staticmethod
    def _iter_queued_requests(system):
        for per_core in system._mc_pending_reads:
            for queue in per_core.values():
                yield from queue
        for queue in system._mc_pending_writes:
            yield from queue

    def _check_restored_request(self, req: MemoryRequest, now: int) -> None:
        self.checks += 1
        problem = req.lifecycle_violation()
        if problem is not None:
            self._fail(f"restored request: {problem}: {req.hop_trace()}")
        latest = max((stamp for _, stamp in req.lifecycle()), default=-1)
        if latest > now:
            self._fail(
                f"restored request stamped at {latest}, after the restored "
                f"clock {now}: {req.hop_trace()}"
            )
        if req.completed_at >= 0:
            self._fail(
                f"restored request already completed but still queued: "
                f"{req.hop_trace()}"
            )
        if req.virtual_deadline < 0:
            self._fail(
                f"restored request carries negative virtual deadline "
                f"{req.virtual_deadline}: {req.hop_trace()}"
            )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _check_lifecycle(self, req: MemoryRequest) -> None:
        self.checks += 1
        problem = req.lifecycle_violation()
        if problem is not None:
            self._fail(f"{problem}: {req.hop_trace()}")

    def _fail(self, message: str) -> None:
        self.violations += 1
        raise SimulationError(f"sanitizer: {message}")
