"""Statistics collection for simulated runs.

The statistics layer is deliberately passive: components call ``record_*``
hooks, and the analysis layer (:mod:`repro.analysis`) turns the raw counters
into the metrics the paper reports (bandwidth shares, weighted slowdown,
memory efficiency, service-time percentiles).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.streams import epoch_record
from repro.sim.records import MemoryRequest

__all__ = ["ClassStats", "EpochSample", "Stats"]


@dataclass(slots=True)
class ClassStats:
    """Cumulative counters for one QoS class.

    The ``stage_*`` sums decompose DRAM-read latency along the request
    path (pacer wait, interconnect, controller queueing, bank+bus
    service); they cover only reads that reached memory with full
    timestamps, counted by ``reads_attributed``.  A read completed with
    *partial* timestamps counts toward ``reads_unattributed`` instead —
    in a healthy run that counter stays 0 (every read the controller
    retires has the full stamp chain), so a nonzero value flags a
    lifecycle-stamping bug and trips the sanitizer's run-end check.
    """

    qos_id: int
    bytes_read: int = 0
    bytes_written: int = 0
    reads_completed: int = 0
    writes_completed: int = 0
    instructions: int = 0
    read_latency_sum: int = 0
    read_latency_max: int = 0
    reads_attributed: int = 0
    reads_unattributed: int = 0
    stage_pacer_sum: int = 0
    stage_noc_sum: int = 0
    stage_queue_sum: int = 0
    stage_service_sum: int = 0

    @property
    def total_bytes(self) -> int:
        return self.bytes_read + self.bytes_written

    @property
    def mean_read_latency(self) -> float:
        if self.reads_completed == 0:
            return 0.0
        return self.read_latency_sum / self.reads_completed


@dataclass(slots=True)
class EpochSample:
    """Per-epoch snapshot used to build bandwidth timelines (Figs. 5/6/8)."""

    epoch: int
    start_cycle: int
    end_cycle: int
    bytes_by_class: dict[int, int]
    saturated: bool = False
    multiplier: int = -1

    @property
    def cycles(self) -> int:
        return self.end_cycle - self.start_cycle

    def bandwidth(self, qos_id: int) -> float:
        """Bytes per cycle consumed by ``qos_id`` during this epoch."""
        if self.cycles <= 0:
            return 0.0
        return self.bytes_by_class.get(qos_id, 0) / self.cycles


class Stats:
    """Aggregated run statistics.

    One instance is shared by every component in a :class:`~repro.sim.system.System`.
    """

    def __init__(self, sample_latencies: bool = False) -> None:
        self.classes: dict[int, ClassStats] = {}
        self.epochs: list[EpochSample] = []
        self.sample_latencies = sample_latencies
        self.read_latencies: dict[int, list[int]] = {}
        self._epoch_bytes: dict[int, int] = {}
        self._last_epoch_end = 0
        # memory-controller aggregates (filled in by controllers)
        self.bus_busy_cycles = 0
        self.mc_active_cycles = 0
        self.requests_enqueued = 0
        self.requests_rejected = 0
        # epoch metric sinks (repro.obs.streams); close_epoch publishes
        # one record per sink per epoch boundary
        self._sinks: list = []

    # ------------------------------------------------------------------
    # recording hooks
    # ------------------------------------------------------------------
    def class_stats(self, qos_id: int) -> ClassStats:
        stats = self.classes.get(qos_id)
        if stats is None:
            stats = ClassStats(qos_id=qos_id)
            self.classes[qos_id] = stats
        return stats

    def record_completion(self, req: MemoryRequest) -> None:
        """Account a finished memory transaction to its QoS class."""
        # inlined class_stats(): one call per completed transaction
        qos_id = req.qos_id
        stats = self.classes.get(qos_id)
        if stats is None:
            stats = ClassStats(qos_id=qos_id)
            self.classes[qos_id] = stats
        if req.is_read:
            stats.bytes_read += req.size
            stats.reads_completed += 1
            # inlined req.total_latency: the controller stamped
            # completed_at immediately before calling this
            latency = req.completed_at - req.created_at
            stats.read_latency_sum += latency
            if latency > stats.read_latency_max:
                stats.read_latency_max = latency
            if self.sample_latencies:
                self.read_latencies.setdefault(qos_id, []).append(latency)
            # Attribution needs every intermediate stamp: a request with
            # issued_at set but arrived_mc_at unset would otherwise fold
            # the -1 sentinel into the noc/queue sums (they would still
            # total the end-to-end latency, but the per-stage split would
            # be silently wrong).  Partial-stamp reads are counted, not
            # dropped, so reads_attributed + reads_unattributed ==
            # reads_completed holds and the sanitizer can check it.
            if (
                req.released_at >= 0
                and req.arrived_mc_at >= 0
                and req.issued_at >= 0
            ):
                stats.reads_attributed += 1
                stats.stage_pacer_sum += req.released_at - req.created_at
                stats.stage_noc_sum += req.arrived_mc_at - req.released_at
                stats.stage_queue_sum += req.issued_at - req.arrived_mc_at
                stats.stage_service_sum += req.completed_at - req.issued_at
            else:
                stats.reads_unattributed += 1
        else:
            stats.bytes_written += req.size
            stats.writes_completed += 1
        epoch_bytes = self._epoch_bytes
        epoch_bytes[qos_id] = epoch_bytes.get(qos_id, 0) + req.size

    def record_instructions(self, qos_id: int, count: int) -> None:
        self.class_stats(qos_id).instructions += count

    # ------------------------------------------------------------------
    # epochs
    # ------------------------------------------------------------------
    def add_sink(self, sink) -> None:
        """Attach an epoch metric sink (anything with ``publish(record)``).

        Each subsequent :meth:`close_epoch` publishes one
        :func:`repro.obs.streams.epoch_record` to every attached sink.
        """
        self._sinks.append(sink)

    @property
    def sinks(self) -> tuple:
        return tuple(self._sinks)

    def close_epoch(self, now: int, saturated: bool = False, multiplier: int = -1) -> EpochSample:
        """Snapshot per-class bytes since the previous epoch boundary."""
        sample = EpochSample(
            epoch=len(self.epochs),
            start_cycle=self._last_epoch_end,
            end_cycle=now,
            # canonical key order: the dict's insertion order otherwise
            # reflects which class completed a request first, which a
            # sharded run (merging per-shard deltas) cannot reproduce
            bytes_by_class=dict(sorted(self._epoch_bytes.items())),
            saturated=saturated,
            multiplier=multiplier,
        )
        self.epochs.append(sample)
        self._epoch_bytes = {}
        self._last_epoch_end = now
        if self._sinks:
            record = epoch_record(sample)
            for sink in self._sinks:
                sink.publish(record)
        return sample

    # ------------------------------------------------------------------
    # summaries
    # ------------------------------------------------------------------
    def total_bytes(self, qos_id: int | None = None) -> int:
        if qos_id is not None:
            return self.class_stats(qos_id).total_bytes
        return sum(stats.total_bytes for stats in self.classes.values())

    def bandwidth_share(self, qos_id: int) -> float:
        """Fraction of all transferred bytes consumed by ``qos_id``."""
        total = self.total_bytes()
        if total == 0:
            return 0.0
        return self.class_stats(qos_id).total_bytes / total

    def memory_efficiency(self) -> float:
        """Data-bus busy cycles over cycles with pending MC work (Fig. 12).

        Deliberately unclamped: a ratio above 1.0 means ``bus_busy_cycles``
        was double-counted (or active-cycle tracking lost time) and should
        surface, not saturate at a plausible-looking 1.0.  The sanitizer
        asserts ``bus_busy_cycles <= mc_active_cycles`` at run end.
        """
        if self.mc_active_cycles == 0:
            return 0.0
        return self.bus_busy_cycles / self.mc_active_cycles

    def ipc(self, qos_id: int, cycles: int) -> float:
        """Instructions per cycle for a class over ``cycles``."""
        if cycles <= 0:
            return 0.0
        return self.class_stats(qos_id).instructions / cycles
