"""Tiled SoC topology and physical address mapping.

The paper's baseline is an 8x4 tiled SoC: every tile holds a CPU, private
caches, and one slice of the shared L3; memory controllers sit on the mesh
edges.  The interconnect is modelled as latency only (hop count times per-hop
cycles) because the paper explicitly assumes NoC bandwidth is provisioned for
peak memory throughput.

Addresses are hashed uniformly across L3 slices and memory controllers, the
paper's stated assumption for keeping the global wired-OR SAT signal
meaningful (Section III-C1).

networkx is used at construction time only: shortest-path distances are
computed once and flattened into dense integer latency tables, so the
per-request path is two list indexes.  ``repro lint`` rule PERF001 keeps
graph-library imports from creeping back into per-event code.
"""

from __future__ import annotations

import networkx as nx

from repro.sim.config import SystemConfig

__all__ = ["AddressMap", "MeshTopology"]


def _mix_bits(value: int) -> int:
    """Cheap deterministic 64-bit mix (xorshift-multiply) for address hashing."""
    value &= (1 << 64) - 1
    value ^= value >> 33
    value = (value * 0xFF51AFD7ED558CCD) & ((1 << 64) - 1)
    value ^= value >> 33
    return value


class AddressMap:
    """Maps a physical address to line, L3 slice, MC, bank, and DRAM row.

    The line -> (slice, mc, bank, row) decode is memoized: workloads revisit
    a bounded working set of lines, so after warm-up every lookup is one
    dict probe instead of two 64-bit hash mixes and three divisions.
    """

    def __init__(self, config: SystemConfig, num_slices: int) -> None:
        self._line_shift = config.line_bytes.bit_length() - 1
        self._num_mcs = config.num_mcs
        self._banks = config.banks_per_mc
        self._lines_per_row = config.lines_per_row
        self._num_slices = max(1, num_slices)
        self._hash_mcs = config.mc_interleave == "hash"
        #: line -> (slice, mc, bank, row) memo.
        self._decoded: dict[int, tuple[int, int, int, int]] = {}

    @property
    def num_mcs(self) -> int:
        return self._num_mcs

    def line_of(self, addr: int) -> int:
        return addr >> self._line_shift

    def _decode_line(self, line: int) -> tuple[int, int, int, int]:
        """Compute and memoize the full decode of one cache line."""
        slice_id = _mix_bits(line) % self._num_slices
        if not self._hash_mcs:
            mc = line % self._num_mcs
        else:
            mc = (_mix_bits(line ^ 0x9E3779B97F4A7C15) >> 8) % self._num_mcs
        bank = (line // self._num_mcs) % self._banks
        row = line // (self._num_mcs * self._banks * self._lines_per_row)
        decoded = (slice_id, mc, bank, row)
        self._decoded[line] = decoded
        return decoded

    def decode(self, addr: int) -> tuple[int, int, int, int]:
        """``(slice, mc, bank, row)`` for an address, memoized per line."""
        line = addr >> self._line_shift
        decoded = self._decoded.get(line)
        if decoded is None:
            decoded = self._decode_line(line)
        return decoded

    def slice_of(self, addr: int) -> int:
        """L3 slice index for an address (uniform hash)."""
        return self.decode(addr)[0]

    def mc_of(self, addr: int) -> int:
        """Memory controller index.

        Uniform hash by default (the paper's assumption); with the
        ``low-bits`` interleave a strided access pattern can concentrate
        on one controller, the scenario where the global wired-OR SAT
        signal over-throttles and per-controller governors help.
        """
        return self.decode(addr)[1]

    def bank_of(self, addr: int) -> int:
        return self.decode(addr)[2]

    def row_of(self, addr: int) -> int:
        """DRAM row id within the bank, for row-hit detection."""
        return self.decode(addr)[3]


class MeshTopology:
    """2D mesh of tiles with memory controllers on the left/right edges.

    Provides hop distances used to compute interconnect latency.  Built on a
    :func:`networkx.grid_2d_graph` so distances come from actual shortest
    paths rather than hand-rolled Manhattan arithmetic (they coincide on a
    full mesh, which the tests assert).  The graph is consulted only in
    ``__init__``: all pairwise latencies are flattened into dense integer
    tables so the per-request path never touches networkx.
    """

    def __init__(self, config: SystemConfig) -> None:
        self._cols = config.mesh_cols
        self._rows = config.mesh_rows
        self._hop_cycles = config.noc_hop_cycles
        self._base_cycles = config.noc_base_cycles
        graph = nx.grid_2d_graph(self._cols, self._rows)
        self._tile_coords = [
            (index % self._cols, index // self._cols)
            for index in range(self._cols * self._rows)
        ]
        self._mc_coords = self._place_mcs(config.num_mcs)
        self._distance = dict(nx.all_pairs_shortest_path_length(graph))
        # Dense latency tables: [src][dst] indexing, plain ints.
        base = self._base_cycles
        hop = self._hop_cycles
        self._tile_tile_latency: list[list[int]] = [
            [
                base + self._distance[src][dst] * hop
                for dst in self._tile_coords
            ]
            for src in self._tile_coords
        ]
        self._tile_mc_latency: list[list[int]] = [
            [
                base + self._distance[src][mc] * hop
                for mc in self._mc_coords
            ]
            for src in self._tile_coords
        ]

    def _place_mcs(self, num_mcs: int) -> list[tuple[int, int]]:
        """Spread MCs across the left and right mesh edges (paper Fig. 2)."""
        coords: list[tuple[int, int]] = []
        for index in range(num_mcs):
            side = index % 2
            slot = index // 2
            col = 0 if side == 0 else self._cols - 1
            row = (slot * max(1, self._rows // max(1, (num_mcs + 1) // 2))) % self._rows
            coord = (col, row)
            # avoid stacking two controllers on the same tile when possible
            attempts = 0
            while coord in coords and attempts < self._rows:
                coord = (col, (coord[1] + 1) % self._rows)
                attempts += 1
            coords.append(coord)
        return coords

    @property
    def num_tiles(self) -> int:
        return self._cols * self._rows

    def tile_coord(self, tile: int) -> tuple[int, int]:
        return self._tile_coords[tile]

    def mc_coord(self, mc_id: int) -> tuple[int, int]:
        return self._mc_coords[mc_id]

    def hops(self, src: tuple[int, int], dst: tuple[int, int]) -> int:
        return self._distance[src][dst]

    def fused_route_tables(
        self, l3_latency: int
    ) -> tuple[list[list[int]], list[list[list[int]]]]:
        """Cumulative route delays for the fused L2-miss fast paths.

        ``hit[core][slice]`` is the whole L3-hit round trip (core ->
        slice -> core plus the L3 access); ``miss[core][slice][mc]`` the
        whole L3-miss delivery leg (core -> slice -> MC plus the L3
        lookup).  Materializing the sums keeps the per-request path to a
        couple of list indexes with no arithmetic — the hop chain has no
        arbitration point, so the cumulative latency is fixed at issue.
        """
        hit = [
            [2 * to_slice + l3_latency for to_slice in row]
            for row in self._tile_tile_latency
        ]
        miss = [
            [
                [
                    to_slice + l3_latency + mc_latency
                    for mc_latency in self._tile_mc_latency[slice_tile]
                ]
                for slice_tile, to_slice in enumerate(row)
            ]
            for row in self._tile_tile_latency
        ]
        return hit, miss

    def tile_to_tile_latency(self, src_tile: int, dst_tile: int) -> int:
        """One-way NoC latency between two tiles, in cycles."""
        return self._tile_tile_latency[src_tile][dst_tile]

    def tile_to_mc_latency(self, tile: int, mc_id: int) -> int:
        """One-way NoC latency from a tile to a memory controller."""
        return self._tile_mc_latency[tile][mc_id]

    def min_tile_to_mc_latency(self) -> int:
        """Minimum one-way tile<->MC latency over every (tile, MC) pair.

        This is the conservative lookahead of a sharded run (DESIGN.md
        §11): every cross-shard hop — an L2-miss delivery, a writeback, a
        read return — crosses a tile<->MC link, so no message generated
        inside a window of this width can demand delivery inside the same
        window.  Always >= ``noc_base_cycles`` >= 1 by construction.
        """
        return min(min(row) for row in self._tile_mc_latency)
