"""Request records that flow through the simulated memory system.

A :class:`MemoryRequest` is created when an L2 miss leaves a core and carries
timestamps for every hop so the analysis layer can attribute latency to the
pacer, the interconnect, the front-end queue, and DRAM service.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum

__all__ = ["AccessType", "MemoryRequest", "next_request_id"]

_request_ids = itertools.count()


def next_request_id() -> int:
    """Return a process-unique, monotonically increasing request id."""
    return next(_request_ids)


class AccessType(str, Enum):
    """Kind of memory-system transaction."""

    READ = "read"
    WRITE = "write"
    WRITEBACK = "writeback"

    @property
    def is_read(self) -> bool:
        return self is AccessType.READ


@dataclass(slots=True)
class MemoryRequest:
    """One cache-line transaction travelling from a source to a target.

    Timestamps are in engine cycles; ``-1`` means "has not happened".
    """

    addr: int
    access: AccessType
    qos_id: int
    core_id: int
    size: int = 64
    req_id: int = field(default_factory=next_request_id)

    # lifecycle timestamps
    created_at: int = -1          # L2 miss detected
    released_at: int = -1         # passed the pacer onto the NoC
    arrived_mc_at: int = -1       # entered a memory-controller front-end queue
    dispatched_at: int = -1       # moved to a back-end bank queue
    issued_at: int = -1           # bank access began
    completed_at: int = -1        # data transfer finished

    # routing / mechanism state
    mc_id: int = -1
    bank_id: int = -1
    row_id: int = -1
    l3_hit: bool = False
    caused_writeback: bool = False
    virtual_deadline: int = 0

    @property
    def is_read(self) -> bool:
        return self.access is AccessType.READ

    @property
    def is_memory_write(self) -> bool:
        """True for transactions that occupy the write path at the MC."""
        return self.access in (AccessType.WRITE, AccessType.WRITEBACK)

    @property
    def total_latency(self) -> int:
        """Cycles from L2 miss to completion (requires completion)."""
        if self.completed_at < 0 or self.created_at < 0:
            raise ValueError(f"request {self.req_id} has not completed")
        return self.completed_at - self.created_at

    @property
    def pacer_delay(self) -> int:
        """Cycles the request waited at the source governor."""
        if self.released_at < 0 or self.created_at < 0:
            raise ValueError(f"request {self.req_id} was never released")
        return self.released_at - self.created_at

    @property
    def queue_delay(self) -> int:
        """Cycles spent waiting in MC queues before the bank access began."""
        if self.issued_at < 0 or self.arrived_mc_at < 0:
            raise ValueError(f"request {self.req_id} was never issued to a bank")
        return self.issued_at - self.arrived_mc_at
