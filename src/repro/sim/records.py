"""Request records that flow through the simulated memory system.

A :class:`MemoryRequest` is created when an L2 miss leaves a core and carries
timestamps for every hop so the analysis layer can attribute latency to the
pacer, the interconnect, the front-end queue, and DRAM service.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from enum import Enum
from itertools import islice

__all__ = [
    "AccessType",
    "LIFECYCLE_STAGES",
    "MemoryRequest",
    "advance_request_ids",
    "next_request_id",
    "request_id_watermark",
]

#: Attribute names of the lifecycle timestamps, in hop order.
LIFECYCLE_STAGES = (
    "created_at",
    "released_at",
    "arrived_mc_at",
    "dispatched_at",
    "issued_at",
    "completed_at",
)

_request_ids = itertools.count()


def next_request_id() -> int:
    """Return a process-unique, monotonically increasing request id."""
    return next(_request_ids)


def request_id_watermark() -> int:
    """Consume and return the counter's next id, as a restore watermark.

    Recorded in simulation checkpoints: request ids are scheduler
    tie-breaks (FR-FCFS, the PABST arbiter), so a run restored in a
    fresh process must mint ids strictly above every id the snapshotted
    warm-up phase produced — exactly as a cold run would have.
    """
    return next(_request_ids)


def advance_request_ids(minimum: int) -> None:
    """Ensure future request ids are ``>= minimum``.

    ``MemoryRequest`` binds ``_request_ids.__next__`` as a default
    factory at class-definition time, so the shared counter must be
    advanced *in place* — rebinding the module global would strand the
    dataclass on the old counter.  ``deque(..., maxlen=0)`` drains the
    islice at C speed.  No-op when the counter is already past
    ``minimum``; ids only ever move forward.
    """
    current = next(_request_ids)
    if current < minimum:
        deque(islice(_request_ids, minimum - current - 1), maxlen=0)


class AccessType(str, Enum):
    """Kind of memory-system transaction."""

    READ = "read"
    WRITE = "write"
    WRITEBACK = "writeback"

    @property
    def is_read(self) -> bool:
        return self is AccessType.READ


@dataclass(slots=True)
class MemoryRequest:
    """One cache-line transaction travelling from a source to a target.

    Timestamps are in engine cycles; ``-1`` means "has not happened".
    """

    addr: int
    access: AccessType
    qos_id: int
    core_id: int
    size: int = 64
    # bound method of the shared counter: skips the next_request_id frame
    # on every construction (requests are minted once per L2 miss)
    req_id: int = field(default_factory=_request_ids.__next__)

    # lifecycle timestamps
    created_at: int = -1          # L2 miss detected
    released_at: int = -1         # passed the pacer onto the NoC
    arrived_mc_at: int = -1       # entered a memory-controller front-end queue
    dispatched_at: int = -1       # moved to a back-end bank queue
    issued_at: int = -1           # bank access began
    completed_at: int = -1        # data transfer finished

    # routing / mechanism state
    mc_id: int = -1
    bank_id: int = -1
    row_id: int = -1
    l3_hit: bool = False
    caused_writeback: bool = False
    virtual_deadline: int = 0
    #: Global NoC injection sequence number, stamped by the system when
    #: the request enters the network.  Ingress pumps and the response
    #: inbox sort on it, making admission/delivery order a function of
    #: the traffic instead of event insertion order (and therefore
    #: identical between single-process and sharded runs).
    noc_seq: int = -1

    # Derived from ``access`` once at construction: these flags sit on the
    # controller's per-pass hot path, where a property doing an enum
    # membership test per call is measurable.
    is_read: bool = field(init=False, repr=False, compare=False)
    #: True for transactions that occupy the write path at the MC.
    is_memory_write: bool = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        self.is_read = self.access is AccessType.READ
        self.is_memory_write = self.access in (AccessType.WRITE, AccessType.WRITEBACK)

    @property
    def total_latency(self) -> int:
        """Cycles from L2 miss to completion (requires completion)."""
        if self.completed_at < 0 or self.created_at < 0:
            raise ValueError(f"request {self.req_id} has not completed")
        return self.completed_at - self.created_at

    @property
    def pacer_delay(self) -> int:
        """Cycles the request waited at the source governor."""
        if self.released_at < 0 or self.created_at < 0:
            raise ValueError(f"request {self.req_id} was never released")
        return self.released_at - self.created_at

    @property
    def queue_delay(self) -> int:
        """Cycles spent waiting in MC queues before the bank access began."""
        if self.issued_at < 0 or self.arrived_mc_at < 0:
            raise ValueError(f"request {self.req_id} was never issued to a bank")
        return self.issued_at - self.arrived_mc_at

    # ------------------------------------------------------------------
    # lifecycle introspection (used by the runtime sanitizer)
    # ------------------------------------------------------------------
    def lifecycle(self) -> tuple[tuple[str, int], ...]:
        """``(stage, timestamp)`` pairs in hop order (``-1`` = not reached)."""
        return tuple((stage, getattr(self, stage)) for stage in LIFECYCLE_STAGES)

    def hop_trace(self) -> str:
        """One-line trace of every hop, for diagnostics.

        Example: ``req 7 read qos=0 core=1 mc=0 bank=3 | created=10
        released=12 arrived_mc=20 dispatched=31 issued=31 completed=55``.
        """
        stamps = " ".join(
            f"{stage.removesuffix('_at')}={value}"
            for stage, value in self.lifecycle()
            if value >= 0
        )
        return (
            f"req {self.req_id} {self.access.value} qos={self.qos_id} "
            f"core={self.core_id} mc={self.mc_id} bank={self.bank_id} "
            f"| {stamps or 'no timestamps'}"
        )

    def lifecycle_violation(self) -> str | None:
        """Describe the first lifecycle-ordering violation, or None.

        Stages a request legitimately skips (an L3 hit never reaches a
        controller; a writeback is created and released in the same call)
        are simply absent; among the stamps that *are* set, hop order must
        be monotone and nothing may precede ``created``.
        """
        stamped = [(stage, value) for stage, value in self.lifecycle() if value >= 0]
        if not stamped:
            return None
        if self.created_at < 0:
            return f"request has {stamped[0][0]} but was never created"
        for (earlier, t0), (later, t1) in zip(stamped, stamped[1:]):
            if t1 < t0:
                return (
                    f"lifecycle out of order: {later}={t1} precedes "
                    f"{earlier}={t0}"
                )
        return None
