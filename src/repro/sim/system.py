"""System builder and runner.

``System`` wires the full machine of Fig. 2 — cores with private L2s, a
shared sliced L3 over a latency-modelled mesh, and per-channel memory
controllers — and threads a pluggable :class:`~repro.sim.mechanism.QoSMechanism`
through the three points PABST instruments:

* the L2 miss path (source pacing),
* the response path (L3-hit undo and writeback charging),
* the memory-controller scheduler (target arbitration).

Two queueing details matter for reproducing the paper's motivation figure:
requests that find a full MC front-end queue wait in a FIFO *outside* the
controller (so a target-only arbiter cannot reorder them — the Fig. 1b
failure), and the MSHR file caps each core's outstanding misses (so a
latency-sensitive workload's bandwidth collapses with latency — Fig. 1c).
"""

from __future__ import annotations

from bisect import bisect_left, insort
from collections import deque
from functools import partial
from operator import attrgetter, itemgetter
from typing import Callable

from repro.cache.hierarchy import CacheHierarchy, HierarchyOutcome, HitLevel
from repro.cache.partition import WayPartition
from repro.core.saturation import SaturationMonitor
from repro.cpu.model import Core
from repro.cpu.mshr import AllocationResult, MshrFile
from repro.dram.controller import MemoryController
from repro.obs.registry import Registry
from repro.obs.trace import RequestTracer
from repro.qos.classes import QoSRegistry
from repro.qos.monitor import BandwidthMonitor
from repro.sim.config import SystemConfig
from repro.accel import make_engine
from repro.sim.engine import _WHEEL_MASK
from repro.sim.mechanism import QoSMechanism
from repro.sim.records import AccessType, MemoryRequest
from repro.sim.sanitizer import SimSanitizer
from repro.sim.stats import Stats
from repro.sim.topology import AddressMap, MeshTopology
from repro.workloads.base import Access, Workload

__all__ = ["System"]

_BY_NOC_SEQ = attrgetter("noc_seq")
_BY_KEY = itemgetter(0)


class System:
    """A complete simulated machine executing one workload per core."""

    def __init__(
        self,
        config: SystemConfig,
        registry: QoSRegistry,
        workloads: dict[int, Workload],
        mechanism: QoSMechanism | None = None,
        seed: int = 0,
        sample_latencies: bool = False,
        sanitize: bool = False,
        tracer: RequestTracer | None = None,
    ) -> None:
        if not workloads:
            raise ValueError("need at least one core running a workload")
        # The mechanism is resolved first so machine-level mechanisms can
        # rewrite the config before anything is built from it (the static
        # bandwidth partition scales DRAM timings here).  The base class
        # returns the config unchanged.
        self.mechanism = mechanism if mechanism is not None else QoSMechanism()
        config = self.mechanism.prepare_config(config, registry)
        for core_id in workloads:
            if not 0 <= core_id < config.cores:
                raise ValueError(f"core {core_id} outside config.cores={config.cores}")
            registry.class_of_core(core_id)  # raises if unassigned

        self.config = config
        self.registry = registry
        # backend factory: the pure Engine or its C-backed twin, per the
        # process's active repro.accel selection (attribute-compatible,
        # so the inlined wheel inserts below work against either)
        self.engine = make_engine(seed)
        if sanitize:
            self.engine.sanitizer = SimSanitizer()
        if tracer is not None:
            self.engine.tracer = tracer
        self.stats = Stats(sample_latencies=sample_latencies)
        self.topology = MeshTopology(config)
        self.address_map = AddressMap(config, num_slices=config.cores)
        self.hierarchy = CacheHierarchy(
            config, self.address_map, self._build_partition(), seed=seed
        )
        # hot-path bindings: these run once per demand access / response
        self._l2s = self.hierarchy.l2s
        self._decode = self.address_map.decode
        self._line_shift = self.address_map._line_shift
        self._l2_latency = config.l2_latency
        self._line_bytes = config.line_bytes
        self._wb_demand = config.writeback_accounting == "demand"
        # Cumulative route-delay tables for the fused injection fast path:
        # the L2-miss hop chains have no arbitration point, so their total
        # latency is a pure lookup at injection time.
        self._hit_delay, self._miss_delay = self.topology.fused_route_tables(
            config.l3_latency
        )

        self.controllers = [
            MemoryController(self.engine, mc_id, config, self.address_map, self.stats)
            for mc_id in range(config.num_mcs)
        ]
        # Overflow for requests that found a full front-end queue.  Reads
        # back up in per-source FIFOs admitted round-robin (modelling NoC
        # injection arbitration: each core gets a fair share of slots, but
        # no slot ever reflects QoS priority -- the Fig. 1b failure mode);
        # writes back up in one FIFO per controller.
        self._mc_pending_reads: list[dict[int, deque[MemoryRequest]]] = [
            {} for _ in range(config.num_mcs)
        ]
        # Sorted ring of source cores with a non-empty pending queue, one
        # per controller.  Maintained incrementally (insort on first
        # enqueue, removal on drain) so the round-robin admission loop
        # never re-sorts the source list.
        self._mc_read_sources: list[list[int]] = [
            [] for _ in range(config.num_mcs)
        ]
        self._mc_rr_pointer: list[int] = [0] * config.num_mcs
        self._mc_pending_writes: list[deque[MemoryRequest]] = [
            deque() for _ in range(config.num_mcs)
        ]
        # NoC injection sequence, stamped on every request entering the
        # network.  The ingress pumps sort arrivals on it, so admission
        # order is a pure function of the traffic — not of the order the
        # delivery events happened to be inserted — which is what lets a
        # sharded run reproduce the single-process schedule exactly.
        self._noc_seq = 0
        # per-MC ingress pump state: same-cycle arrivals buffer here and a
        # late-phase pump admits them (backlog first, then arrivals in
        # noc_seq order); a space hint from the controller re-runs the
        # backlog admission through the same pump
        self._mc_arrivals: list[list[MemoryRequest]] = [
            [] for _ in range(config.num_mcs)
        ]
        self._mc_pump_armed = [False] * config.num_mcs
        self._mc_space_hint = [False] * config.num_mcs
        # response inbox: every response landing at the source in cycle T
        # buffers here and a late-phase flush delivers the batch in a
        # canonical key order (L3 hits by injection order, then memory
        # reads by (mc, bus-slot end))
        self._resp_inbox: list[tuple] = []
        for controller in self.controllers:
            controller.on_read_complete = self._on_read_complete
            controller.add_space_listener(self._on_mc_space)

        self.cores: dict[int, Core] = {
            core_id: Core(
                engine=self.engine,
                core_id=core_id,
                qos_id=registry.class_of_core(core_id),
                workload=workload,
                access_fn=self._core_access,
                on_instructions=self.stats.record_instructions,
                class_stats_lookup=self.stats.class_stats,
            )
            for core_id, workload in sorted(workloads.items())
        }
        self._mshrs = {
            core_id: MshrFile(config.l2_mshrs) for core_id in self.cores
        }
        self._stalled: dict[int, deque] = {core_id: deque() for core_id in self.cores}

        # Fuse the deterministic read-return chain (bank service -> NoC
        # return -> core response) now that the cores exist.  Absent or
        # zero-return-delay cores keep the unfused on_read_complete path.
        core_list = [self.cores.get(core_id) for core_id in range(config.cores)]
        for controller in self.controllers:
            controller.configure_read_fusion(
                return_delays=[
                    self.topology.tile_to_mc_latency(core_id, controller.mc_id)
                    for core_id in range(config.cores)
                ],
                cores=core_list,
                respond=self._enqueue_response,
            )

        self.saturation = SaturationMonitor(
            self.controllers, threshold_fraction=config.sat_threshold_fraction
        )
        self.bandwidth_monitor = BandwidthMonitor(
            self.stats, peak_bytes_per_cycle=config.peak_bandwidth
        )

        self.mechanism.attach(self)
        for controller in self.controllers:
            policy = self.mechanism.mc_policy(controller.mc_id)
            if policy is not None:
                controller.policy = policy

        # Observability registry: pull-based (obj, attr) providers over
        # the counters the components maintain anyway, so registration
        # adds no hot-path work (DESIGN.md §9).  Part of the pickled
        # System graph, so checkpoints restore it with the components.
        self.obs = Registry()
        self._register_obs()

        self._epochs_started = False
        self._next_epoch_at = 0

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def _build_partition(self) -> WayPartition | None:
        """Exclusive L3 way partition from the classes' ``l3_ways`` fields."""
        way_counts = {
            qos_class.qos_id: qos_class.l3_ways
            for qos_class in self.registry.classes
            if qos_class.l3_ways is not None
        }
        if not way_counts:
            return None
        return WayPartition.exclusive(self.config.l3_assoc, way_counts)

    def _register_obs(self) -> None:
        """Register every component's counters/gauges on :attr:`obs`.

        Names are stable dotted paths — tests and external tooling key
        on them — and all values come from attributes the components
        already maintain, so this method is pure bookkeeping.
        """
        obs = self.obs
        obs.register_counter("stats.requests_enqueued", self.stats, "requests_enqueued")
        obs.register_counter("stats.requests_rejected", self.stats, "requests_rejected")
        obs.register_counter("stats.bus_busy_cycles", self.stats, "bus_busy_cycles")
        obs.register_counter("stats.mc_active_cycles", self.stats, "mc_active_cycles")
        # Dispatch-loop fast-path coverage: zero on the pure backend (the
        # attributes exist on both engine classes), live counts under c.
        obs.register_counter("accel.fastpath_hits", self.engine, "fastpath_hits")
        obs.register_counter("accel.fastpath_misses", self.engine, "fastpath_misses")
        for controller in self.controllers:
            prefix = f"mc{controller.mc_id}"
            obs.register_counter(f"{prefix}.reads_accepted", controller, "reads_accepted")
            obs.register_counter(f"{prefix}.writes_accepted", controller, "writes_accepted")
            obs.register_counter(f"{prefix}.rejects", controller, "rejects")
            obs.register_gauge(f"{prefix}.queue_depth", controller, "queued_reads")
            obs.register_gauge(f"{prefix}.queued_writes", controller, "queued_writes")
            obs.register_gauge(f"{prefix}.inflight", controller, "inflight")
        for core_id, mshr in self._mshrs.items():
            obs.register_gauge(f"mshr.c{core_id}.outstanding", mshr, "outstanding")
        for core_id in self.cores:
            l2 = self._l2s[core_id]
            obs.register_counter(f"l2.c{core_id}.hits", l2, "hits")
            obs.register_counter(f"l2.c{core_id}.misses", l2, "misses")
        for tile, l3_slice in enumerate(self.hierarchy.l3_slices):
            obs.register_counter(f"l3.s{tile}.hits", l3_slice, "hits")
            obs.register_counter(f"l3.s{tile}.misses", l3_slice, "misses")
        self.mechanism.register_obs(obs)

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------
    def run(self, cycles: int) -> None:
        """Advance the simulation by ``cycles`` (callable repeatedly).

        Epoch ticks are driven by this loop, not by a self-reposting
        event: the engine runs to each boundary minus one, the clock is
        advanced onto the boundary, and the tick runs before any of the
        boundary cycle's events.  Driving the tick from outside the
        event queue pins its position in the schedule (start-of-cycle,
        always), which a queued tick cannot guarantee once it round-trips
        through the overflow heap — and it gives window-synchronized
        runners (shard barriers) the same boundary semantics for free.
        """
        if cycles <= 0:
            raise ValueError("cycles must be positive")
        for core in self.cores.values():
            core.start()
        engine = self.engine
        if not self._epochs_started:
            self._epochs_started = True
            self._next_epoch_at = engine.now + self.config.epoch_cycles
        end = engine.now + cycles
        while self._next_epoch_at <= end:
            boundary = self._next_epoch_at
            engine.run_until(boundary - 1)
            engine.advance_clock(boundary)
            self._epoch_tick()
            self._next_epoch_at = boundary + self.config.epoch_cycles
        engine.run_until(end)

    def run_epochs(self, epochs: int) -> None:
        """Advance by a whole number of QoS epochs."""
        self.run(epochs * self.config.epoch_cycles)

    def finalize(self) -> None:
        """Close open accounting windows; call once after the last run()."""
        for controller in self.controllers:
            controller.finalize()
        if self.engine.sanitizer is not None:
            self.engine.sanitizer.on_run_end(self.stats)

    def _epoch_tick(self) -> None:
        """One epoch boundary: sample saturation, drive the mechanism,
        close the stats window.  Runs at start-of-boundary-cycle, before
        any of that cycle's events (see :meth:`run`)."""
        saturated = self.saturation.sample()
        self.mechanism.on_epoch(saturated, tuple(self.saturation.last_signals))
        self.stats.close_epoch(
            self.engine.now,
            saturated=saturated,
            multiplier=self.mechanism.multiplier(),
        )

    # ------------------------------------------------------------------
    # memory-access path (called by cores)
    # ------------------------------------------------------------------
    def _core_access(
        self, core: Core, access: Access, done: Callable[[], None]
    ) -> None:
        # Inlined L2-hit probe (mirrors SetAssociativeCache.access()'s hit
        # path): the L2 hit is the dominant memory outcome, and taking it
        # without the hierarchy.access + cache.access frames is measurable
        # at every-access rates.  A probe miss falls through to the full
        # hierarchy walk, whose own L2 probe repeats the miss verdict.
        addr = access.addr
        l2 = self._l2s[core.core_id]
        line_number = addr >> self._line_shift
        way = l2._where.get(line_number)
        if way is not None:
            set_index = line_number & l2._set_mask
            if access.is_write:
                l2._ways[set_index][way].dirty = True
            lru = l2._lru
            if lru is not None:
                lru._clock += 1
                lru._stamps[set_index][way] = lru._clock
            else:
                l2._policy.on_access(set_index, way)
            l2.hits += 1
            # inlined engine.post: the L2-hit resume dominates event traffic
            engine = self.engine
            when = engine._now + self._l2_latency
            if when < engine._horizon:
                engine._wheel[when & _WHEEL_MASK].append((done, ()))
                engine._wheel_count += 1
                engine._live += 1
            else:
                engine.post(self._l2_latency, done)
            return
        outcome = self.hierarchy.access(
            core.core_id, addr, access.is_write, core.qos_id
        )
        self._start_miss(core, access, outcome, done)

    def _start_miss(
        self,
        core: Core,
        access: Access,
        outcome: HierarchyOutcome,
        done: Callable[[], None],
    ) -> None:
        line = access.addr >> self._line_shift
        result = self._mshrs[core.core_id].allocate(line, done)
        if result is AllocationResult.FULL:
            self._stalled[core.core_id].append((core, access, outcome, done))
            return
        if result is AllocationResult.MERGED:
            return
        self._launch(core, access, outcome)

    def _launch(self, core: Core, access: Access, outcome: HierarchyOutcome) -> None:
        req = MemoryRequest(
            addr=access.addr,
            access=AccessType.READ,
            qos_id=core.qos_id,
            core_id=core.core_id,
            size=self._line_bytes,
        )
        req.created_at = self.engine._now
        req.l3_hit = outcome.level is HitLevel.L3
        req.caused_writeback = self._wb_demand and bool(outcome.mem_writebacks)
        if self.engine.sanitizer is not None:
            self.engine.sanitizer.on_inject(req)
        if self.engine.tracer is not None:
            self.engine.tracer.created(req)
        self.mechanism.request_release(
            core.core_id, req, partial(self._inject, core, req, outcome)
        )

    def _inject(self, core: Core, req: MemoryRequest, outcome: HierarchyOutcome) -> None:
        """The request passed the pacer and enters the SoC network."""
        engine = self.engine
        req.released_at = engine._now
        req.noc_seq = self._noc_seq
        self._noc_seq += 1
        if engine.tracer is not None:
            engine.tracer.released(req)
        core_id = core.core_id
        slice_tile = outcome.l3_slice if outcome.l3_slice >= 0 else core_id
        if req.l3_hit:
            when = engine._now + self._hit_delay[core_id][slice_tile]
            if when < engine._horizon:
                engine._wheel[when & _WHEEL_MASK].append(
                    (self._enqueue_response, (core, req))
                )
                engine._wheel_count += 1
                engine._live += 1
            else:
                engine.post_at(when, self._enqueue_response, core, req)
            return

        # one decode stamps the full route (mc/bank/row) so the controller's
        # accept path never re-decodes the address
        _, mc_id, req.bank_id, req.row_id = self._decode(req.addr)
        req.mc_id = mc_id
        when = engine._now + self._miss_delay[core_id][slice_tile][mc_id]
        if when < engine._horizon:
            engine._wheel[when & _WHEEL_MASK].append((self._deliver, (req,)))
            engine._wheel_count += 1
            engine._live += 1
        else:
            engine.post_at(when, self._deliver, req)
        for writeback in outcome.mem_writebacks:
            self._send_writeback(core, writeback, slice_tile)

    def _send_writeback(self, core: Core, info, slice_tile: int) -> None:
        """Dirty L3 eviction: a memory write, attributed per Section V-C.

        Under ``demand`` accounting (the paper's choice) the triggering
        class pays — both in bandwidth attribution and via the response
        flag that makes its pacer charge an extra period.  Under ``owner``
        accounting the class that wrote the data pays, and its pacers are
        charged directly.
        """
        if self.config.writeback_accounting == "owner":
            qos_id = info.owner_qos_id
            self.mechanism.charge_class_writeback(qos_id)
        else:
            qos_id = core.qos_id
        wb = MemoryRequest(
            addr=info.addr,
            access=AccessType.WRITEBACK,
            qos_id=qos_id,
            core_id=core.core_id,
            size=self.config.line_bytes,
        )
        wb.created_at = self.engine._now
        wb.released_at = self.engine._now
        wb.noc_seq = self._noc_seq
        self._noc_seq += 1
        _, wb.mc_id, wb.bank_id, wb.row_id = self._decode(info.addr)
        if self.engine.sanitizer is not None:
            self.engine.sanitizer.on_inject(wb)
        if self.engine.tracer is not None:
            self.engine.tracer.created(wb)
            self.engine.tracer.released(wb)
        delay = self.topology.tile_to_mc_latency(slice_tile, wb.mc_id)
        self.engine.post(delay, self._deliver, wb)

    def _deliver(self, req: MemoryRequest) -> None:  # repro: native-kernel
        """Arrival at the MC edge: buffer it and arm this cycle's pump.

        All of a cycle's arrivals admit together in the late phase, in
        ``noc_seq`` order, so the admission sequence (and therefore the
        arbiter's virtual-deadline assignment) never depends on the
        order their delivery events were inserted.
        """
        buf = self._mc_arrivals[req.mc_id]
        buf.append(req)
        if not self._mc_pump_armed[req.mc_id]:
            self._mc_pump_armed[req.mc_id] = True
            self.engine.post_late_at(self.engine._now, self._pump_mc, req.mc_id)

    def _pump_mc(self, mc_id: int) -> None:  # repro: native-kernel
        """Late-phase ingress pump for one MC.

        Backlogged requests admit first (they are older than anything
        arriving this cycle), then the cycle's arrivals in ``noc_seq``
        order.  The pump re-arms itself (via the space hint) if admission
        triggers a scheduling pass that frees more queue space within
        the same late phase.
        """
        self._mc_pump_armed[mc_id] = False
        controller = self.controllers[mc_id]
        if self._mc_space_hint[mc_id]:
            self._mc_space_hint[mc_id] = False
            self._admit_pending_reads(mc_id)
            pending_writes = self._mc_pending_writes[mc_id]
            while pending_writes:
                if not controller.try_enqueue(pending_writes[0]):
                    break
                pending_writes.popleft()
        buf = self._mc_arrivals[mc_id]
        if not buf:
            return
        arrivals = buf[:]
        buf.clear()
        arrivals.sort(key=_BY_NOC_SEQ)
        pending_reads = self._mc_pending_reads[mc_id]
        for req in arrivals:
            if req.is_memory_write:
                pending = self._mc_pending_writes[mc_id]
                if pending or not controller.try_enqueue(req):
                    pending.append(req)
                continue
            per_core = pending_reads.get(req.core_id)
            if per_core:
                per_core.append(req)
            elif not controller.try_enqueue(req):
                self._queue_pending_read(mc_id, req)

    def _queue_pending_read(self, mc_id: int, req: MemoryRequest) -> None:
        """Append a backpressured read to its source's overflow FIFO.

        Single point that keeps ``_mc_pending_reads`` and the sorted
        ``_mc_read_sources`` admission ring consistent.
        """
        pending = self._mc_pending_reads[mc_id]
        per_core = pending.get(req.core_id)
        if per_core is None:
            per_core = deque()
            pending[req.core_id] = per_core
            insort(self._mc_read_sources[mc_id], req.core_id)
        per_core.append(req)

    def _admit_pending_reads(self, mc_id: int) -> None:
        """Round-robin one-per-core admission of backpressured reads.

        ``_mc_read_sources[mc_id]`` is kept sorted incrementally, so each
        admission pass rotates a snapshot of the ring at the RR pointer
        (one bisect) instead of re-sorting the source list per pass.
        """
        controller = self.controllers[mc_id]
        pending = self._mc_pending_reads[mc_id]
        sources = self._mc_read_sources[mc_id]
        while sources:
            start = bisect_left(sources, self._mc_rr_pointer[mc_id])
            ordered = sources[start:] + sources[:start]
            admitted_any = False
            for core in ordered:
                queue = pending[core]
                if not controller.try_enqueue(queue[0]):
                    return
                queue.popleft()
                if not queue:
                    del pending[core]
                    del sources[bisect_left(sources, core)]
                self._mc_rr_pointer[mc_id] = core + 1
                admitted_any = True
            if not admitted_any:
                return

    def _on_mc_space(self, mc_id: int) -> None:  # repro: native-kernel
        """Synchronous space hint from the controller: run the pump late.

        Called inline from the controller's scheduling pass the moment a
        read issues.  The actual admission happens in the pump, so
        backlog admission order is canonical no matter which pass (or
        which shard's message) produced the hint.
        """
        self._mc_space_hint[mc_id] = True
        if not self._mc_pump_armed[mc_id]:
            self._mc_pump_armed[mc_id] = True
            self.engine.post_late_at(self.engine._now, self._pump_mc, mc_id)

    def _on_read_complete(self, req: MemoryRequest) -> None:
        core = self.cores.get(req.core_id)
        if core is None:
            return
        delay = self.topology.tile_to_mc_latency(core.core_id, req.mc_id)
        self.engine.post(delay, self._enqueue_response, core, req)

    def _enqueue_response(self, core: Core, req: MemoryRequest) -> None:  # repro: native-kernel
        """Buffer a response arriving at the source tile this cycle.

        The late-phase flush delivers the cycle's batch in one canonical
        order: L3 hits by injection sequence first, then memory reads by
        ``(mc_id, bus-slot end)`` — every key is unique (the data bus
        serializes completions per MC), so the sort is total and the
        delivery order is independent of event insertion order.
        """
        inbox = self._resp_inbox
        if not inbox:
            self.engine.post_late_at(self.engine._now, self._flush_responses)
        if req.l3_hit:
            inbox.append(((0, req.noc_seq, 0), core, req))
        else:
            inbox.append(((1, req.mc_id, req.completed_at), core, req))

    def _flush_responses(self) -> None:  # repro: native-kernel
        inbox = self._resp_inbox
        self._resp_inbox = []
        inbox.sort(key=_BY_KEY)
        for _, core, req in inbox:
            self._respond(core, req)

    def _respond(self, core: Core, req: MemoryRequest) -> None:
        """Response reached the source tile: notify mechanism, wake waiters."""
        if req.completed_at < 0:
            req.completed_at = self.engine._now  # L3 hit completes locally
            if self.engine.sanitizer is not None:
                self.engine.sanitizer.on_complete(req)
            if self.engine.tracer is not None:
                self.engine.tracer.completed(req)
        self.mechanism.on_response(core.core_id, req)
        line = req.addr >> self._line_shift
        for callback in self._mshrs[core.core_id].complete(line):
            callback()
        self._drain_stalled(core.core_id)

    def _drain_stalled(self, core_id: int) -> None:
        queue = self._stalled[core_id]
        mshrs = self._mshrs[core_id]
        while queue:
            core, access, outcome, done = queue[0]
            line = access.addr >> self._line_shift
            result = mshrs.allocate(line, done)
            if result is AllocationResult.FULL:
                return
            queue.popleft()
            if result is AllocationResult.NEW:
                self._launch(core, access, outcome)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def peak_bandwidth(self) -> float:
        return self.config.peak_bandwidth

    def outstanding_misses(self, core_id: int) -> int:
        return self._mshrs[core_id].outstanding

    def blocked_at_mc(self, mc_id: int) -> int:
        """Requests queued outside a full controller (not arbitrable)."""
        reads = sum(len(q) for q in self._mc_pending_reads[mc_id].values())
        return reads + len(self._mc_pending_writes[mc_id])
