"""System configuration.

:class:`SystemConfig` captures the machine described in the paper's Table III
(a 32-core, 8x4 tiled SoC with four memory controllers) plus the scaled
variants this reproduction actually runs (see DESIGN.md §4: a pure-Python
model cannot execute 32 cores x 100M instructions, so experiments default to
8-16 cores, 1-2 channels, and proportionally shorter epochs).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.dram.timing import DramTiming, PagePolicy

__all__ = ["SystemConfig"]


@dataclass(frozen=True, slots=True)
class SystemConfig:
    """Full machine description consumed by :class:`repro.sim.system.System`."""

    # cores and tiles
    cores: int = 8
    mesh_cols: int = 4
    mesh_rows: int = 2

    # cache line
    line_bytes: int = 64

    # private L2 (the PABST throttle point)
    l2_size_kb: int = 256
    l2_assoc: int = 8
    l2_latency: int = 12
    l2_mshrs: int = 16

    # shared, sliced, way-partitioned L3
    l3_slice_kb: int = 1024
    l3_assoc: int = 16
    l3_latency: int = 30

    # interconnect (latency only; see DESIGN.md)
    noc_hop_cycles: int = 3
    noc_base_cycles: int = 4

    # memory controllers
    num_mcs: int = 2
    banks_per_mc: int = 16
    row_bytes: int = 2048
    frontend_read_queue: int = 32
    frontend_write_queue: int = 32
    write_high_watermark: int = 24
    write_low_watermark: int = 8
    page_policy: str = PagePolicy.CLOSED
    dram: DramTiming = field(default_factory=DramTiming.ddr4_2400)

    # QoS control quantum and saturation setpoint (Section III-C1: SAT is
    # raised when average read-queue occupancy exceeds this fraction of
    # the queue capacity; the paper uses one half)
    epoch_cycles: int = 2000
    sat_threshold_fraction: float = 0.5

    # How lines interleave across memory controllers: "hash" is the
    # uniform address hash the paper assumes; "low-bits" maps by low line
    # bits, letting strided workloads concentrate on one controller (used
    # to evaluate the per-controller-governor alternative of III-C1).
    mc_interleave: str = "hash"

    # Who pays for a dirty L3 eviction's memory write (Section V-C):
    # "demand" charges the class whose incoming request caused the eviction
    # (the paper's choice), "owner" charges the class that wrote the data.
    writeback_accounting: str = "demand"

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ValueError("cores must be positive")
        if self.cores > self.mesh_cols * self.mesh_rows:
            raise ValueError(
                f"{self.cores} cores do not fit a "
                f"{self.mesh_cols}x{self.mesh_rows} mesh"
            )
        if self.num_mcs <= 0:
            raise ValueError("num_mcs must be positive")
        if self.line_bytes <= 0 or self.line_bytes & (self.line_bytes - 1):
            raise ValueError("line_bytes must be a positive power of two")
        if self.page_policy not in PagePolicy.ALL:
            raise ValueError(f"unknown page policy {self.page_policy!r}")
        if self.write_low_watermark >= self.write_high_watermark:
            raise ValueError("write_low_watermark must be < write_high_watermark")
        if self.write_high_watermark > self.frontend_write_queue:
            raise ValueError("write_high_watermark exceeds the write queue")
        if self.epoch_cycles <= 0:
            raise ValueError("epoch_cycles must be positive")
        if not 0.0 < self.sat_threshold_fraction <= 1.0:
            raise ValueError("sat_threshold_fraction must be in (0, 1]")
        if self.writeback_accounting not in ("demand", "owner"):
            raise ValueError(
                f"unknown writeback accounting {self.writeback_accounting!r}"
            )
        if self.mc_interleave not in ("hash", "low-bits"):
            raise ValueError(f"unknown mc_interleave {self.mc_interleave!r}")
        for name in ("l2_assoc", "l3_assoc", "l2_mshrs", "banks_per_mc"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")

    # ------------------------------------------------------------------
    # derived values
    # ------------------------------------------------------------------
    @property
    def peak_bandwidth(self) -> float:
        """System peak in bytes/cycle across all channels."""
        return self.num_mcs * self.dram.peak_bandwidth(self.line_bytes)

    @property
    def l2_sets(self) -> int:
        return (self.l2_size_kb * 1024) // (self.line_bytes * self.l2_assoc)

    @property
    def l3_slice_sets(self) -> int:
        return (self.l3_slice_kb * 1024) // (self.line_bytes * self.l3_assoc)

    @property
    def lines_per_row(self) -> int:
        return max(1, self.row_bytes // self.line_bytes)

    # ------------------------------------------------------------------
    # presets
    # ------------------------------------------------------------------
    @classmethod
    def paper_32core(cls) -> "SystemConfig":
        """The full Table III machine: 32 cores, 8x4 mesh, 4 channels.

        The paper's epoch is 10us = 20,000 cycles at 2 GHz.
        """
        return cls(
            cores=32,
            mesh_cols=8,
            mesh_rows=4,
            num_mcs=4,
            epoch_cycles=20_000,
        )

    @classmethod
    def default_experiment(cls, cores: int = 8, num_mcs: int = 2) -> "SystemConfig":
        """Scaled configuration used by the reproduction's experiments.

        Caches shrink along with run lengths so that working sets wrap and
        writeback traffic reaches steady state within the simulated window
        (paper runs are ~10^8 instructions; ours are ~10^5-10^6 cycles).
        """
        cols = max(2, (cores + 1) // 2)
        rows = (cores + cols - 1) // cols
        return cls(
            cores=cores,
            mesh_cols=cols,
            mesh_rows=rows,
            num_mcs=num_mcs,
            l2_size_kb=64,
            l3_slice_kb=128,
            # Sized so one 16-MSHR streaming class plus a latency-sensitive
            # class fits in the controllers, while two streaming classes
            # oversubscribe them -- the regime boundary Fig. 1 explores.
            frontend_read_queue=48,
            epoch_cycles=2000,
        )

    @classmethod
    def soc_256core(cls) -> "SystemConfig":
        """Scale-out stress machine: 256 cores, 16x16 mesh, 32 channels.

        The headline workload for the sharded runner (DESIGN.md §11): a
        machine big enough that one engine's event loop is the
        bottleneck.  ``noc_base_cycles`` is raised to 16 so the
        conservative lookahead window (the minimum tile<->MC latency)
        spans at least 16 cycles — fewer barriers per epoch, which is
        where sharded wall-clock wins come from.  Caches stay small so
        traffic is memory-bound: most simulated work lands on the
        target shards.
        """
        return cls(
            cores=256,
            mesh_cols=16,
            mesh_rows=16,
            num_mcs=32,
            l2_size_kb=64,
            l3_slice_kb=128,
            noc_base_cycles=16,
            frontend_read_queue=48,
            epoch_cycles=2000,
        )

    @classmethod
    def small_test(cls) -> "SystemConfig":
        """Tiny machine for fast unit tests."""
        return cls(
            cores=2,
            mesh_cols=2,
            mesh_rows=1,
            num_mcs=1,
            l2_size_kb=16,
            l3_slice_kb=32,
            banks_per_mc=4,
            frontend_read_queue=8,
            frontend_write_queue=8,
            write_high_watermark=6,
            write_low_watermark=2,
            epoch_cycles=500,
        )

    def with_dram(self, dram: DramTiming) -> "SystemConfig":
        """Copy of this config with different DRAM timings (Fig. 11 baseline)."""
        return replace(self, dram=dram)

    def scaled_cores(self, cores: int) -> "SystemConfig":
        """Copy with a different core count on an adequate mesh."""
        cols = max(2, (cores + 1) // 2)
        rows = (cores + cols - 1) // cols
        return replace(self, cores=cores, mesh_cols=cols, mesh_rows=rows)
