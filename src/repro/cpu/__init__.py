"""CPU-side models: the core and its MSHR file."""

from repro.cpu.model import Core
from repro.cpu.mshr import AllocationResult, MshrFile

__all__ = ["AllocationResult", "Core", "MshrFile"]
