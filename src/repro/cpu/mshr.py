"""Miss Status Holding Registers.

MSHRs bound the number of outstanding L2 misses per core, which is what
limits the memory-level parallelism a workload can expose — the property
that makes latency-sensitive workloads unable to generate bandwidth when
memory latency rises (Section I).  Secondary misses to a line that is
already outstanding merge into the existing entry.
"""

from __future__ import annotations

from enum import Enum
from typing import Callable

__all__ = ["AllocationResult", "MshrFile"]


class AllocationResult(str, Enum):
    """Outcome of an allocation attempt."""

    NEW = "new"          # new entry allocated; a memory request must be sent
    MERGED = "merged"    # joined an outstanding entry; no new request
    FULL = "full"        # no entry free; the requester must stall


class MshrFile:
    """Fixed-capacity table of outstanding line misses with merging."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._capacity = capacity
        self._entries: dict[int, list[Callable[[], None]]] = {}

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def outstanding(self) -> int:
        return len(self._entries)

    @property
    def available(self) -> int:
        return self._capacity - len(self._entries)

    def allocate(self, line_addr: int, on_complete: Callable[[], None]) -> AllocationResult:
        """Try to track a miss to ``line_addr``.

        ``on_complete`` fires when :meth:`complete` is called for the line.
        """
        waiters = self._entries.get(line_addr)
        if waiters is not None:
            waiters.append(on_complete)
            return AllocationResult.MERGED
        if len(self._entries) >= self._capacity:
            return AllocationResult.FULL
        self._entries[line_addr] = [on_complete]
        return AllocationResult.NEW

    def complete(self, line_addr: int) -> list[Callable[[], None]]:
        """Retire the entry and return the waiter callbacks to invoke."""
        waiters = self._entries.pop(line_addr, None)
        if waiters is None:
            raise KeyError(f"no outstanding miss for line {line_addr:#x}")
        return waiters

    def is_outstanding(self, line_addr: int) -> bool:
        return line_addr in self._entries
