"""Core model.

The paper models an out-of-order, non-speculative CPU whose instruction
window is bounded by structural hazards (ROB/LSQ).  This reproduction keeps
the two properties PABST's behaviour depends on:

* bounded memory-level parallelism — a core runs ``workload.contexts``
  independent dependent-chains, and outstanding L2 misses are further capped
  by the MSHR file;
* latency sensitivity — each context blocks until its access completes, so
  a low-context workload's request rate falls as memory latency grows.

The core knows nothing about caches or PABST: it asks the system to perform
an access and gets a completion callback.

The per-context completion callback is allocated once at :meth:`Core.start`
(a ``partial`` over the context id) rather than per access: a context has at
most one access outstanding, so the in-flight access lives in a per-context
slot and the callback stays reusable.  This removes a closure allocation and
a call frame from every access on the dominant L2-hit path.
"""

from __future__ import annotations

from functools import partial
from typing import Callable

import numpy as np

from repro.sim.engine import _WHEEL_MASK, Engine
from repro.workloads.base import Access, Workload

__all__ = ["Core"]


class Core:
    """One CPU tile driving a workload through the memory system."""

    def __init__(
        self,
        engine: Engine,
        core_id: int,
        qos_id: int,
        workload: Workload,
        access_fn: "Callable[[Core, Access, Callable[[], None]], None]",
        on_instructions: Callable[[int, int], None],
        class_stats_lookup: Callable[[int], object] | None = None,
    ) -> None:
        self._engine = engine
        self.core_id = core_id
        self.qos_id = qos_id
        self.workload = workload
        self._access_fn = access_fn
        self._on_instructions = on_instructions
        # Optional fast path for instruction accounting: the system passes
        # ``Stats.class_stats`` so retirement becomes one attribute bump on
        # the cached ClassStats instead of a call per completed access.  The
        # lookup stays lazy so a never-retiring core creates no stats entry
        # (same observable behaviour as calling on_instructions each time).
        self._stats_lookup = class_stats_lookup
        self._class_stats = None
        # ``Workload.on_complete`` is a no-op hook; skip the virtual call
        # per completion unless the workload actually overrides it.
        self._wl_on_complete = (
            workload.on_complete
            if type(workload).on_complete is not Workload.on_complete
            else None
        )
        self.rng: np.random.Generator = engine.rng(f"core.{core_id}")
        workload.bind(self)

        self.accesses_issued = 0
        self.accesses_completed = 0
        self.instructions = 0
        self._live_contexts = 0
        self._started = False
        self._current: list[Access | None] = []
        self._done: list[Callable[[], None]] = []

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Kick off every context at cycle 0 (idempotent)."""
        if self._started:
            return
        self._started = True
        contexts = self.workload.contexts
        self._live_contexts = contexts
        self._current = [None] * contexts
        self._done = [partial(self._complete, context) for context in range(contexts)]
        for context in range(contexts):
            self._engine.post(0, self._advance, context)

    @property
    def now(self) -> int:
        return self._engine.now

    @property
    def done(self) -> bool:
        """True once every context has retired."""
        return self._started and self._live_contexts == 0

    # ------------------------------------------------------------------
    # context state machine
    # ------------------------------------------------------------------
    def _advance(self, context: int) -> None:
        access = self.workload.next_access(context)
        if access is None:
            self._live_contexts -= 1
            return
        self._current[context] = access
        gap = access.gap
        if gap > 0:
            # inlined engine.post (this is the compute-gap path of every
            # context advance; the call overhead is measurable at scale)
            engine = self._engine
            when = engine._now + gap
            if when < engine._horizon:
                engine._wheel[when & _WHEEL_MASK].append(
                    (self._issue, (context, access))
                )
                engine._wheel_count += 1
                engine._live += 1
            else:
                engine.post(gap, self._issue, context, access)
        else:
            self.accesses_issued += 1
            self._access_fn(self, access, self._done[context])

    def _issue(self, context: int, access: Access) -> None:
        self.accesses_issued += 1
        self._access_fn(self, access, self._done[context])

    def _complete(self, context: int) -> None:
        access = self._current[context]
        self.accesses_completed += 1
        count = access.instructions
        if count:
            self.instructions += count
            stats = self._class_stats
            if stats is not None:
                stats.instructions += count
            else:
                lookup = self._stats_lookup
                if lookup is not None:
                    stats = lookup(self.qos_id)
                    self._class_stats = stats
                    stats.instructions += count
                else:
                    self._on_instructions(self.qos_id, count)
        wl_on_complete = self._wl_on_complete
        if wl_on_complete is not None:
            wl_on_complete(context, access, self._engine._now)
        self._advance(context)
