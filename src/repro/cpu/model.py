"""Core model.

The paper models an out-of-order, non-speculative CPU whose instruction
window is bounded by structural hazards (ROB/LSQ).  This reproduction keeps
the two properties PABST's behaviour depends on:

* bounded memory-level parallelism — a core runs ``workload.contexts``
  independent dependent-chains, and outstanding L2 misses are further capped
  by the MSHR file;
* latency sensitivity — each context blocks until its access completes, so
  a low-context workload's request rate falls as memory latency grows.

The core knows nothing about caches or PABST: it asks the system to perform
an access and gets a completion callback.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.sim.engine import Engine
from repro.workloads.base import Access, Workload

__all__ = ["Core"]


class Core:
    """One CPU tile driving a workload through the memory system."""

    def __init__(
        self,
        engine: Engine,
        core_id: int,
        qos_id: int,
        workload: Workload,
        access_fn: "Callable[[Core, Access, Callable[[], None]], None]",
        on_instructions: Callable[[int, int], None],
    ) -> None:
        self._engine = engine
        self.core_id = core_id
        self.qos_id = qos_id
        self.workload = workload
        self._access_fn = access_fn
        self._on_instructions = on_instructions
        self.rng: np.random.Generator = engine.rng(f"core.{core_id}")
        workload.bind(self)

        self.accesses_issued = 0
        self.accesses_completed = 0
        self.instructions = 0
        self._live_contexts = 0
        self._started = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Kick off every context at cycle 0 (idempotent)."""
        if self._started:
            return
        self._started = True
        self._live_contexts = self.workload.contexts
        for context in range(self.workload.contexts):
            self._engine.post(0, self._advance, context)

    @property
    def now(self) -> int:
        return self._engine.now

    @property
    def done(self) -> bool:
        """True once every context has retired."""
        return self._started and self._live_contexts == 0

    # ------------------------------------------------------------------
    # context state machine
    # ------------------------------------------------------------------
    def _advance(self, context: int) -> None:
        access = self.workload.next_access(context)
        if access is None:
            self._live_contexts -= 1
            return
        if access.gap > 0:
            self._engine.post(access.gap, self._issue, context, access)
        else:
            self._issue(context, access)

    def _issue(self, context: int, access: Access) -> None:
        self.accesses_issued += 1
        self._access_fn(self, access, lambda: self._complete(context, access))

    def _complete(self, context: int, access: Access) -> None:
        self.accesses_completed += 1
        if access.instructions:
            self.instructions += access.instructions
            self._on_instructions(self.qos_id, access.instructions)
        self.workload.on_complete(context, access, self._engine.now)
        self._advance(context)
