"""Fig. 8 (Principle 3): proportional distribution of excess bandwidth.

Three classes: an L3-resident streamer holding a 25% allocation it cannot
use after warm-up, a high-priority DDR streamer at 50%, and a low-priority
DDR streamer at 25%.  The L3 class's unused share must be redistributed in
proportion to the remaining weights: the DDR streams should settle at about
66% and 33% of the consumed bandwidth (2:1), each 16%/8% over its nominal
share — the numbers the paper quotes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import format_series
from repro.analysis.timeline import BandwidthTimeline
from repro.core.pabst import PabstMechanism
from repro.experiments.common import ClassSpec, build_system, run_system
from repro.workloads.stream import StreamWorkload

__all__ = ["Fig08Result", "run", "sweep_cells"]

L3_WEIGHT = 1       # 25%
DDR_HI_WEIGHT = 2   # 50%
DDR_LO_WEIGHT = 1   # 25%


@dataclass
class Fig08Result:
    timeline: BandwidthTimeline
    l3_share: float
    ddr_hi_share_of_ddr: float
    ddr_lo_share_of_ddr: float
    utilization: float

    def report(self) -> str:
        lines = [
            "Fig. 8 - excess distribution: L3-resident 25%, DDR 50%, DDR 25%",
            format_series("l3-resident", self.timeline.utilization_series(0)),
            format_series("ddr-hi (50%)", self.timeline.utilization_series(1)),
            format_series("ddr-lo (25%)", self.timeline.utilization_series(2)),
            f"ddr-hi share of consumed bandwidth = {self.ddr_hi_share_of_ddr:.3f}"
            " (paper: ~0.66)",
            f"ddr-lo share of consumed bandwidth = {self.ddr_lo_share_of_ddr:.3f}"
            " (paper: ~0.33)",
            f"l3-resident share = {self.l3_share:.3f} (≈0 after warm-up)",
            f"utilization = {self.utilization:.3f} of peak",
        ]
        return "\n".join(lines)


def run(quick: bool = False, seed: int = 0) -> Fig08Result:
    epochs, warmup = (70, 30) if quick else (160, 60)
    # the L3 class streams a working set well under its exclusive partition
    specs = [
        ClassSpec(
            qos_id=0,
            name="l3-stream",
            weight=L3_WEIGHT,
            cores=2,
            workload_factory=lambda: StreamWorkload(
                working_set_bytes=48 << 10, stride_bytes=64, name="l3-stream"
            ),
            l3_ways=6,
        ),
        ClassSpec(
            qos_id=1,
            name="ddr-hi",
            weight=DDR_HI_WEIGHT,
            cores=2,
            workload_factory=StreamWorkload,
            l3_ways=5,
        ),
        ClassSpec(
            qos_id=2,
            name="ddr-lo",
            weight=DDR_LO_WEIGHT,
            cores=2,
            workload_factory=StreamWorkload,
            l3_ways=5,
        ),
    ]
    system = build_system(specs, mechanism=PabstMechanism(), seed=seed)
    result = run_system(system, epochs=epochs, warmup_epochs=warmup)
    steady = result.steady_bytes
    ddr_total = steady.get(1, 0) + steady.get(2, 0)
    return Fig08Result(
        timeline=result.timeline,
        l3_share=result.share(0),
        ddr_hi_share_of_ddr=steady.get(1, 0) / ddr_total if ddr_total else 0.0,
        ddr_lo_share_of_ddr=steady.get(2, 0) / ddr_total if ddr_total else 0.0,
        utilization=result.total_utilization(),
    )


def sweep_cells(quick: bool = False) -> list[dict]:
    """This figure is one timeline run; a single empty cell."""
    return [{}]
