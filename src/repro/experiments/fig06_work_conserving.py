"""Fig. 6 (Principle 2): work conservation / do no harm.

A periodic streamer (70% share) alternates between memory-resident and
cache-resident phases while a constant streamer (30% share) runs steadily.
During the periodic class's idle phases the constant streamer must ramp to
nearly 100% of bandwidth; when the periodic class resumes, the constant
streamer must be throttled back to its 30% allocation within a few epochs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import format_series
from repro.analysis.timeline import BandwidthTimeline
from repro.core.pabst import PabstMechanism
from repro.experiments.common import ClassSpec, build_system, run_system
from repro.workloads.periodic import PeriodicStreamWorkload
from repro.workloads.stream import StreamWorkload

__all__ = ["Fig06Result", "run", "sweep_cells"]

PERIODIC_WEIGHT = 7
CONSTANT_WEIGHT = 3


@dataclass
class Fig06Result:
    timeline: BandwidthTimeline
    phase_cycles: int
    epoch_cycles: int
    constant_util_active: float   # constant class while periodic streams
    constant_util_idle: float     # constant class while periodic rests

    def report(self) -> str:
        lines = [
            "Fig. 6 - work conservation: periodic (70%) vs constant (30%)",
            format_series("periodic", self.timeline.utilization_series(0)),
            format_series("constant", self.timeline.utilization_series(1)),
            f"constant-class utilization while periodic active: "
            f"{self.constant_util_active:.2f} of peak",
            f"constant-class utilization while periodic idle:   "
            f"{self.constant_util_idle:.2f} of peak",
        ]
        return "\n".join(lines)


def run(
    quick: bool = False, seed: int = 0, sanitize: bool | None = None
) -> Fig06Result:
    phase = 30_000 if quick else 100_000
    cycles_total = phase * (4 if quick else 6)
    specs = [
        ClassSpec(
            qos_id=0,
            name="periodic",
            weight=PERIODIC_WEIGHT,
            cores=4,
            workload_factory=lambda: PeriodicStreamWorkload(
                active_cycles=phase, idle_cycles=phase
            ),
            l3_ways=8,
        ),
        ClassSpec(
            qos_id=1,
            name="constant",
            weight=CONSTANT_WEIGHT,
            cores=4,
            workload_factory=StreamWorkload,
            l3_ways=8,
        ),
    ]
    system = build_system(
        specs, mechanism=PabstMechanism(), seed=seed, sanitize=sanitize
    )
    epoch_cycles = system.config.epoch_cycles
    epochs = cycles_total // epoch_cycles
    result = run_system(system, epochs=epochs, warmup_epochs=epochs // 4)
    timeline = result.timeline

    # classify measurement epochs by the periodic workload's phase, skipping
    # the epochs around each transition where the governor is still walking
    # M toward the new equilibrium (about a dozen epochs; Section III-B1)
    period = 2 * phase
    active, idle = [], []
    settle = (4 if quick else 12) * epoch_cycles
    for index, sample in enumerate(timeline.epochs):
        if index < result.warmup_epochs:
            continue
        position = sample.start_cycle % period
        util = sample.bandwidth(1) / system.config.peak_bandwidth
        if settle <= position < phase - settle:
            active.append(util)
        elif phase + settle <= position < period - settle:
            idle.append(util)
    return Fig06Result(
        timeline=timeline,
        phase_cycles=phase,
        epoch_cycles=epoch_cycles,
        constant_util_active=sum(active) / len(active) if active else 0.0,
        constant_util_idle=sum(idle) / len(idle) if idle else 0.0,
    )


def sweep_cells(quick: bool = False) -> list[dict]:
    """This figure is one timeline run; a single empty cell."""
    return [{}]
