"""Fig. 12 (Section IV-F): what bandwidth QoS costs in memory efficiency.

Memory efficiency = data-bus busy cycles over cycles the controller had
pending work.  Running the Fig. 10 mix (SPEC class + streaming aggressor at
32:1) under {none, governor only, arbiter only, PABST} quantifies the two
loss sources the paper identifies: the governor intentionally drives
traffic below saturation while probing, and the arbiter constrains the
controller's pick order.  Efficiency without QoS should be high, and the
drop should be largest for latency-sensitive workloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.report import format_table
from repro.experiments.common import ClassSpec, build_system, make_mechanism, run_system
from repro.workloads.spec import SPEC_PROFILES, spec_workload
from repro.workloads.stream import StreamWorkload

__all__ = ["EfficiencyRow", "Fig12Result", "MECHANISM_ORDER", "default_workloads", "run", "sweep_cells"]

SPEC_WEIGHT = 32
STREAM_WEIGHT = 1
MECHANISM_ORDER = ("none", "source-only", "target-only", "pabst")


@dataclass(frozen=True)
class EfficiencyRow:
    workload: str
    efficiency: dict[str, float]
    spec_share: dict[str, float]


@dataclass
class Fig12Result:
    rows: list[EfficiencyRow] = field(default_factory=list)

    def mean_efficiency(self, mechanism: str) -> float:
        values = [row.efficiency[mechanism] for row in self.rows]
        return sum(values) / len(values) if values else 0.0

    def report(self) -> str:
        table = [
            (row.workload, *[row.efficiency[m] for m in MECHANISM_ORDER])
            for row in self.rows
        ]
        table.append(("MEAN", *[self.mean_efficiency(m) for m in MECHANISM_ORDER]))
        return format_table(
            ["workload", *MECHANISM_ORDER],
            table,
            title="Fig. 12 - memory efficiency (bus busy / controller active)",
        )


def default_workloads(quick: bool = False) -> tuple[str, ...]:
    """The workload set :func:`run` uses when none is given."""
    return ("libquantum", "mcf") if quick else tuple(sorted(SPEC_PROFILES))


def sweep_cells(quick: bool = False) -> list[dict]:
    """One independent cell per workload row."""
    return [{"workloads": (workload,)} for workload in default_workloads(quick)]


def run(
    workloads: tuple[str, ...] | None = None,
    quick: bool = False,
    seed: int = 0,
) -> Fig12Result:
    if workloads is None:
        workloads = default_workloads(quick)
    epochs = 50 if quick else 110
    result = Fig12Result()
    for workload in workloads:
        efficiency: dict[str, float] = {}
        spec_share: dict[str, float] = {}
        for mechanism in MECHANISM_ORDER:
            specs = [
                ClassSpec(
                    qos_id=0,
                    name=workload,
                    weight=SPEC_WEIGHT,
                    cores=4,
                    workload_factory=lambda: spec_workload(workload),
                    l3_ways=8,
                ),
                ClassSpec(
                    qos_id=1,
                    name="stream",
                    weight=STREAM_WEIGHT,
                    cores=4,
                    workload_factory=StreamWorkload,
                    l3_ways=8,
                ),
            ]
            system = build_system(
                specs, mechanism=make_mechanism(mechanism), seed=seed
            )
            run = run_system(system, epochs=epochs, warmup_epochs=epochs // 4)
            efficiency[mechanism] = system.stats.memory_efficiency()
            spec_share[mechanism] = run.share(0)
        result.rows.append(
            EfficiencyRow(
                workload=workload, efficiency=efficiency, spec_share=spec_share
            )
        )
    return result
