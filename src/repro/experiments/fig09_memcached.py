"""Fig. 9 (Section IV-D): memcached service times under co-location.

A single memcached server thread (high priority, 20:1 share) is co-located
with streaming aggressors.  Without QoS the stream's queue pressure inflates
both the mean and the tail of transaction service times; PABST should bring
the whole distribution back near the isolated run.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.metrics import percentile
from repro.analysis.report import format_table
from repro.experiments.common import ClassSpec, build_system, make_mechanism, run_system
from repro.workloads.memcached import MemcachedWorkload
from repro.workloads.stream import StreamWorkload

__all__ = ["Fig09Result", "ServiceTimeSummary", "run"]

MEMCACHED_WEIGHT = 20
STREAM_WEIGHT = 1


@dataclass(frozen=True)
class ServiceTimeSummary:
    """Distribution of transaction service times for one configuration."""

    config: str
    transactions: int
    mean: float
    p50: float
    p95: float
    p99: float

    @classmethod
    def from_samples(cls, config: str, samples: list[int]) -> "ServiceTimeSummary":
        mean = sum(samples) / len(samples) if samples else 0.0
        return cls(
            config=config,
            transactions=len(samples),
            mean=mean,
            p50=percentile(samples, 50),
            p95=percentile(samples, 95),
            p99=percentile(samples, 99),
        )


@dataclass
class Fig09Result:
    isolated: ServiceTimeSummary
    baseline: ServiceTimeSummary
    pabst: ServiceTimeSummary

    def degradation(self, summary: ServiceTimeSummary) -> float:
        """Mean service time relative to the isolated run."""
        if self.isolated.mean == 0:
            return 0.0
        return summary.mean / self.isolated.mean

    def report(self) -> str:
        rows = [
            (s.config, s.transactions, s.mean, s.p50, s.p95, s.p99,
             self.degradation(s))
            for s in (self.isolated, self.baseline, self.pabst)
        ]
        return format_table(
            ["config", "txns", "mean", "p50", "p95", "p99", "vs isolated"],
            rows,
            title="Fig. 9 - memcached transaction service times (cycles), 20:1 share",
        )


def _specs(with_aggressor: bool, memcached: MemcachedWorkload) -> list[ClassSpec]:
    specs = [
        ClassSpec(
            qos_id=0,
            name="memcached",
            weight=MEMCACHED_WEIGHT,
            cores=1,
            workload_factory=lambda: memcached,
            l3_ways=8,
        )
    ]
    if with_aggressor:
        specs.append(
            ClassSpec(
                qos_id=1,
                name="stream",
                weight=STREAM_WEIGHT,
                cores=4,
                workload_factory=StreamWorkload,
                l3_ways=8,
            )
        )
    return specs


def _run_one(
    config_name: str,
    mechanism_name: str | None,
    with_aggressor: bool,
    epochs: int,
    seed: int,
) -> ServiceTimeSummary:
    memcached = MemcachedWorkload(transactions=None, warmup_transactions=50)
    mechanism = make_mechanism(mechanism_name) if mechanism_name else None
    system = build_system(
        _specs(with_aggressor, memcached), mechanism=mechanism, seed=seed
    )
    run_system(system, epochs=epochs, warmup_epochs=1)
    return ServiceTimeSummary.from_samples(config_name, memcached.service_times)


def run(quick: bool = False, seed: int = 0) -> Fig09Result:
    epochs = 80 if quick else 250
    return Fig09Result(
        isolated=_run_one("isolated", None, False, epochs, seed),
        baseline=_run_one("none + stream", "none", True, epochs, seed),
        pabst=_run_one("pabst + stream", "pabst", True, epochs, seed),
    )
