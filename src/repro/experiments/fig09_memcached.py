"""Fig. 9 (Section IV-D): memcached service times under co-location.

A single memcached server thread (high priority, 20:1 share) is co-located
with streaming aggressors.  Without QoS the stream's queue pressure inflates
both the mean and the tail of transaction service times; PABST should bring
the whole distribution back near the isolated run.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.metrics import percentile
from repro.analysis.report import format_table
from repro.experiments.common import ClassSpec, build_system, make_mechanism, run_system
from repro.workloads.memcached import MemcachedWorkload
from repro.workloads.stream import StreamWorkload

__all__ = ["Fig09Result", "SCENARIOS", "ServiceTimeSummary", "run", "sweep_cells"]

MEMCACHED_WEIGHT = 20
STREAM_WEIGHT = 1


@dataclass(frozen=True)
class ServiceTimeSummary:
    """Distribution of transaction service times for one configuration."""

    config: str
    transactions: int
    mean: float
    p50: float
    p95: float
    p99: float

    @classmethod
    def from_samples(cls, config: str, samples: list[int]) -> "ServiceTimeSummary":
        mean = sum(samples) / len(samples) if samples else 0.0
        return cls(
            config=config,
            transactions=len(samples),
            mean=mean,
            p50=percentile(samples, 50),
            p95=percentile(samples, 95),
            p99=percentile(samples, 99),
        )


@dataclass
class Fig09Result:
    isolated: ServiceTimeSummary | None = None
    baseline: ServiceTimeSummary | None = None
    pabst: ServiceTimeSummary | None = None

    def degradation(self, summary: ServiceTimeSummary) -> float:
        """Mean service time relative to the isolated run."""
        if self.isolated is None or self.isolated.mean == 0:
            return 0.0
        return summary.mean / self.isolated.mean

    def report(self) -> str:
        rows = [
            (s.config, s.transactions, s.mean, s.p50, s.p95, s.p99,
             self.degradation(s))
            for s in (self.isolated, self.baseline, self.pabst)
            if s is not None
        ]
        return format_table(
            ["config", "txns", "mean", "p50", "p95", "p99", "vs isolated"],
            rows,
            title="Fig. 9 - memcached transaction service times (cycles), 20:1 share",
        )


def _specs(with_aggressor: bool, memcached: MemcachedWorkload) -> list[ClassSpec]:
    specs = [
        ClassSpec(
            qos_id=0,
            name="memcached",
            weight=MEMCACHED_WEIGHT,
            cores=1,
            workload_factory=lambda: memcached,
            l3_ways=8,
        )
    ]
    if with_aggressor:
        specs.append(
            ClassSpec(
                qos_id=1,
                name="stream",
                weight=STREAM_WEIGHT,
                cores=4,
                workload_factory=StreamWorkload,
                l3_ways=8,
            )
        )
    return specs


def _run_one(
    config_name: str,
    mechanism_name: str | None,
    with_aggressor: bool,
    epochs: int,
    seed: int,
) -> ServiceTimeSummary:
    memcached = MemcachedWorkload(transactions=None, warmup_transactions=50)
    mechanism = make_mechanism(mechanism_name) if mechanism_name else None
    system = build_system(
        _specs(with_aggressor, memcached), mechanism=mechanism, seed=seed
    )
    run_system(system, epochs=epochs, warmup_epochs=1)
    return ServiceTimeSummary.from_samples(config_name, memcached.service_times)


#: scenario name -> (result field, report label, mechanism, with_aggressor)
SCENARIOS: dict[str, tuple[str, str | None, bool]] = {
    "isolated": ("isolated", None, False),
    "baseline": ("none + stream", "none", True),
    "pabst": ("pabst + stream", "pabst", True),
}


def sweep_cells(quick: bool = False) -> list[dict]:
    """One cell per co-location scenario."""
    return [{"scenarios": (name,)} for name in SCENARIOS]


def run(
    quick: bool = False,
    seed: int = 0,
    scenarios: tuple[str, ...] = ("isolated", "baseline", "pabst"),
) -> Fig09Result:
    epochs = 80 if quick else 250
    result = Fig09Result()
    for name in scenarios:
        label, mechanism, with_aggressor = SCENARIOS[name]
        summary = _run_one(label, mechanism, with_aggressor, epochs, seed)
        setattr(result, name, summary)
    return result
