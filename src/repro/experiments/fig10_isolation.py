"""Fig. 10 (Section IV-D): performance isolation for SPEC workloads.

A multiprogrammed SPEC class (high priority, 32:1) shares the machine with
a read-streaming aggressor class.  The baseline is the same SPEC class in
isolation with the same cache allocation.  The paper reports weighted
slowdown (Eq. 6) per workload for {no QoS, governor only, arbiter only,
PABST}: no QoS averages ~2.0x, PABST ~1.2x, and the combination always
beats either half alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.metrics import weighted_slowdown
from repro.analysis.report import format_table
from repro.experiments.common import ClassSpec, build_system, make_mechanism, run_system
from repro.workloads.spec import SPEC_PROFILES, spec_workload
from repro.workloads.stream import StreamWorkload

__all__ = ["Fig10Result", "IsolationRow", "MECHANISM_ORDER", "default_workloads", "run", "sweep_cells"]

SPEC_WEIGHT = 32
STREAM_WEIGHT = 1
SPEC_CORES = 4
STREAM_CORES = 4
MECHANISM_ORDER = ("none", "source-only", "target-only", "pabst")


@dataclass(frozen=True)
class IsolationRow:
    """Weighted slowdowns for one SPEC workload."""

    workload: str
    isolated_ipc: float
    slowdowns: dict[str, float]


@dataclass
class Fig10Result:
    rows: list[IsolationRow] = field(default_factory=list)

    def mean_slowdown(self, mechanism: str) -> float:
        values = [row.slowdowns[mechanism] for row in self.rows]
        return sum(values) / len(values) if values else 0.0

    def report(self) -> str:
        table_rows = [
            (row.workload, *[row.slowdowns[m] for m in MECHANISM_ORDER])
            for row in self.rows
        ]
        table_rows.append(
            ("MEAN", *[self.mean_slowdown(m) for m in MECHANISM_ORDER])
        )
        return format_table(
            ["workload", *MECHANISM_ORDER],
            table_rows,
            title=(
                "Fig. 10 - weighted slowdown vs streaming aggressor "
                "(32:1 shares; 1.0 = isolated performance)"
            ),
        )


def _per_core_ipcs(system, core_ids: list[int]) -> list[float]:
    cycles = system.engine.now
    return [system.cores[core].instructions / cycles for core in core_ids]


def _isolated_ipcs(workload: str, epochs: int, seed: int) -> list[float]:
    specs = [
        ClassSpec(
            qos_id=0,
            name=workload,
            weight=SPEC_WEIGHT,
            cores=SPEC_CORES,
            workload_factory=lambda: spec_workload(workload),
            l3_ways=8,
        )
    ]
    system = build_system(specs, seed=seed)
    run_system(system, epochs=epochs, warmup_epochs=1)
    return _per_core_ipcs(system, list(range(SPEC_CORES)))


def _shared_ipcs(
    workload: str, mechanism: str, epochs: int, seed: int
) -> list[float]:
    specs = [
        ClassSpec(
            qos_id=0,
            name=workload,
            weight=SPEC_WEIGHT,
            cores=SPEC_CORES,
            workload_factory=lambda: spec_workload(workload),
            l3_ways=8,
        ),
        ClassSpec(
            qos_id=1,
            name="stream",
            weight=STREAM_WEIGHT,
            cores=STREAM_CORES,
            workload_factory=StreamWorkload,
            l3_ways=8,
        ),
    ]
    system = build_system(specs, mechanism=make_mechanism(mechanism), seed=seed)
    run_system(system, epochs=epochs, warmup_epochs=1)
    return _per_core_ipcs(system, list(range(SPEC_CORES)))


def default_workloads(quick: bool = False) -> tuple[str, ...]:
    """The workload set :func:`run` uses when none is given."""
    return ("libquantum", "sphinx3") if quick else tuple(sorted(SPEC_PROFILES))


def sweep_cells(quick: bool = False) -> list[dict]:
    """One independent cell per workload row."""
    return [{"workloads": (workload,)} for workload in default_workloads(quick)]


def run(
    workloads: tuple[str, ...] | None = None,
    quick: bool = False,
    seed: int = 0,
) -> Fig10Result:
    if workloads is None:
        workloads = default_workloads(quick)
    epochs = 50 if quick else 110
    result = Fig10Result()
    for workload in workloads:
        isolated = _isolated_ipcs(workload, epochs, seed)
        slowdowns = {}
        for mechanism in MECHANISM_ORDER:
            shared = _shared_ipcs(workload, mechanism, epochs, seed)
            slowdowns[mechanism] = weighted_slowdown(isolated, shared)
        result.rows.append(
            IsolationRow(
                workload=workload,
                isolated_ipc=sum(isolated) / len(isolated),
                slowdowns=slowdowns,
            )
        )
    return result
