"""Fig. 5 (Principle 1): proportional allocation.

Two classes of read streamers share the machine with a 7:3 allocation.
PABST should quickly find target rates that split bandwidth 70/30 and hold
them steady, with only small perturbations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import format_series
from repro.analysis.timeline import BandwidthTimeline
from repro.core.pabst import PabstMechanism
from repro.experiments.common import ClassSpec, build_system, run_system
from repro.workloads.stream import StreamWorkload

__all__ = ["Fig05Result", "MEASURE_KEYS", "run", "sweep_cells"]

HI_WEIGHT = 7
LO_WEIGHT = 3

#: Cell keys that only affect the measurement phase: cells differing
#: only in these share a warm-up prefix, so `repro sweep --warm-start`
#: simulates the warm-up once and forks the cells from the checkpoint.
MEASURE_KEYS = ("measure_epochs",)


@dataclass
class Fig05Result:
    timeline: BandwidthTimeline
    warmup_epochs: int
    hi_share: float
    lo_share: float
    utilization: float

    @property
    def target_hi_share(self) -> float:
        return HI_WEIGHT / (HI_WEIGHT + LO_WEIGHT)

    def report(self) -> str:
        lines = [
            "Fig. 5 - proportional allocation, two stream classes at 7:3",
            format_series("hi (70%)", self.timeline.utilization_series(0)),
            format_series("lo (30%)", self.timeline.utilization_series(1)),
            format_series("total", self.timeline.total_utilization_series()),
            f"steady hi share = {self.hi_share:.3f} (target {self.target_hi_share:.3f})",
            f"steady lo share = {self.lo_share:.3f}",
            f"steady utilization = {self.utilization:.3f} of peak",
        ]
        return "\n".join(lines)


def run(
    quick: bool = False,
    seed: int = 0,
    sanitize: bool | None = None,
    measure_epochs: int | None = None,
) -> Fig05Result:
    warmup = 25 if quick else 50
    if measure_epochs is None:
        measure_epochs = 35 if quick else 90
    epochs = warmup + measure_epochs
    cores_per_class = 4
    specs = [
        ClassSpec(
            qos_id=0,
            name="stream-70",
            weight=HI_WEIGHT,
            cores=cores_per_class,
            workload_factory=StreamWorkload,
            l3_ways=8,
        ),
        ClassSpec(
            qos_id=1,
            name="stream-30",
            weight=LO_WEIGHT,
            cores=cores_per_class,
            workload_factory=StreamWorkload,
            l3_ways=8,
        ),
    ]
    system = build_system(
        specs, mechanism=PabstMechanism(), seed=seed, sanitize=sanitize
    )
    result = run_system(system, epochs=epochs, warmup_epochs=warmup)
    return Fig05Result(
        timeline=result.timeline,
        warmup_epochs=warmup,
        hi_share=result.share(0),
        lo_share=result.share(1),
        utilization=result.total_utilization(),
    )


def sweep_cells(quick: bool = False) -> list[dict]:
    """Measurement-window sweep: convergence of the steady shares.

    Every cell shares the same warm-up prefix (same classes, seed, and
    warm-up length), differing only in how long the measured window
    runs — the showcase for checkpointed warm-starting.
    """
    lengths = range(10, 55, 5) if quick else range(30, 120, 10)
    return [{"measure_epochs": length} for length in lengths]
