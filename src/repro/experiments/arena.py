"""The QoS mechanism arena: every mechanism, head-to-head, one report.

Runs the full :mod:`repro.mechanisms` zoo over a scenario matrix and
emits a deterministic comparative report per scenario: proportionality
(hi-class share vs its 3:1 entitlement, worst relative allocation
error), total utilization (work conservation), tail latency (exact
p50/p95/p99 percentiles of per-request read latencies), the uniform
``mechanism.*`` release counters, and — for mechanisms that promise a
worst-case bound (DPQ's access latency, per-bank epoch budgets) — the
measured bound check from :meth:`QoSMechanism.bound_report`.

Structured like the fig* modules so the parallel runner drives it:
``sweep_cells()`` yields one (scenario, mechanism) cell per spec, and
:class:`ArenaResult` carries a ``metrics()`` document (schema
``repro.arena/v1``) that the worker ships through the result cache, so
``repro arena`` can merge cells from live and cached runs into one
byte-identical report.  No wall-clock values appear anywhere in the
document or report.

Latency percentiles are computed over every sampled read in the run,
warm-up included — tail behaviour during the adaptation transient is
part of what distinguishes the mechanisms.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.metrics import (
    allocation_error,
    bandwidth_shares,
    percentile,
    share_error_per_class,
)
from repro.analysis.report import format_table
from repro.experiments.common import ClassSpec, build_system, run_system
from repro.experiments.mixes import HI_WEIGHT, LO_WEIGHT, chaser_mix, stream_mix
from repro.mechanisms import ALL_MECHANISMS, make_mechanism
from repro.workloads.stream import StreamWorkload

__all__ = [
    "ArenaResult",
    "SCENARIOS",
    "comparative_report",
    "merge_documents",
    "run",
    "sweep_cells",
    "validate_report",
]

SCHEMA = "repro.arena/v1"

TARGET_HI_SHARE = HI_WEIGHT / (HI_WEIGHT + LO_WEIGHT)

_LATENCY_QUANTILES = (50.0, 95.0, 99.0)


def readmix(cores_per_class: int = 4) -> list[ClassSpec]:
    """Read-streaming class (3) against a write streamer (1).

    The third arena regime: the hi class never dirties lines, so
    writeback charging and the write-drain path only matter for the
    aggressor — separates mechanisms that regulate reads and writes
    jointly from those that only see one side.
    """
    return [
        ClassSpec(
            qos_id=0,
            name="read-stream",
            weight=HI_WEIGHT,
            cores=cores_per_class,
            workload_factory=lambda: StreamWorkload(
                write_fraction=0.0, name="read-stream"
            ),
            l3_ways=8,
        ),
        ClassSpec(
            qos_id=1,
            name="stream-lo",
            weight=LO_WEIGHT,
            cores=cores_per_class,
            workload_factory=lambda: StreamWorkload(
                write_fraction=1.0, name="write-stream"
            ),
            l3_ways=8,
        ),
    ]


_SCENARIO_FACTORIES = {
    "stream": stream_mix,
    "chaser": chaser_mix,
    "readmix": readmix,
}

#: Canonical scenario order for the default matrix and merged reports.
SCENARIOS: tuple[str, ...] = tuple(_SCENARIO_FACTORIES)


def sweep_cells(quick: bool = False) -> list[dict]:
    """One (scenario, mechanism) head-to-head entry per runner cell."""
    return [
        {"scenarios": (scenario,), "mechanisms": (mechanism,)}
        for scenario in SCENARIOS
        for mechanism in ALL_MECHANISMS
    ]


def _latency_stats(samples: list[int]) -> dict:
    if not samples:
        return {"count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0}
    stats = {
        "count": len(samples),
        "mean": round(sum(samples) / len(samples), 6),
        "max": max(samples),
    }
    for q in _LATENCY_QUANTILES:
        stats[f"p{q:.0f}"] = round(percentile(samples, q), 6)
    return stats


@dataclass
class ArenaResult:
    """All finished cells plus the matrix they were asked to cover."""

    cells: list[dict]
    quick: bool
    seed: int
    scenarios: tuple[str, ...]
    mechanisms: tuple[str, ...] = field(default_factory=tuple)

    def metrics(self) -> dict:
        """The canonical ``repro.arena/v1`` document for this run.

        Everything is plain JSON types with string keys and floats
        rounded to 6 places, so the document is byte-identical across a
        JSON round-trip — the property the result cache relies on.
        """
        return {
            "schema": SCHEMA,
            "quick": self.quick,
            "seed": self.seed,
            "scenarios": list(self.scenarios),
            "mechanisms": list(self.mechanisms),
            "cells": self.cells,
        }

    def report(self) -> str:
        return comparative_report(self.metrics())


def run(
    quick: bool = False,
    seed: int = 0,
    mechanisms: tuple[str, ...] = ALL_MECHANISMS,
    scenarios: tuple[str, ...] = SCENARIOS,
) -> ArenaResult:
    """Run every selected mechanism on every selected scenario."""
    epochs, warmup = (40, 15) if quick else (120, 45)
    weights = {0: float(HI_WEIGHT), 1: float(LO_WEIGHT)}
    cells: list[dict] = []
    for scenario in scenarios:
        try:
            factory = _SCENARIO_FACTORIES[scenario]
        except KeyError:
            known = ", ".join(SCENARIOS)
            raise KeyError(
                f"unknown scenario {scenario!r}; known: {known}"
            ) from None
        for mechanism_name in mechanisms:
            mechanism = make_mechanism(mechanism_name)
            system = build_system(
                factory(),
                mechanism=mechanism,
                seed=seed,
                sample_latencies=True,
            )
            result = run_system(system, epochs=epochs, warmup_epochs=warmup)
            observed = {
                qos_id: result.steady_bytes.get(qos_id, 0)
                for qos_id in weights
            }
            shares = bandwidth_shares(observed)
            per_class_error = share_error_per_class(observed, weights)
            latencies = {
                str(qos_id): _latency_stats(
                    system.stats.read_latencies.get(qos_id, [])
                )
                for qos_id in sorted(weights)
            }
            cells.append(
                {
                    "scenario": scenario,
                    "mechanism": mechanism_name,
                    "shares": {
                        str(q): round(shares.get(q, 0.0), 6)
                        for q in sorted(weights)
                    },
                    "target_hi_share": round(TARGET_HI_SHARE, 6),
                    "allocation_error": round(
                        allocation_error(observed, weights), 6
                    ),
                    "share_error": {
                        str(q): round(per_class_error[q], 6)
                        for q in sorted(per_class_error)
                    },
                    "utilization": round(result.total_utilization(), 6),
                    "read_latency": latencies,
                    "counters": {
                        "epochs": mechanism.obs_epochs,
                        "releases_granted": mechanism.obs_releases_granted,
                        "releases_denied": mechanism.obs_releases_denied,
                        "writeback_charges": mechanism.obs_writeback_charges,
                    },
                    "multiplier": round(float(mechanism.multiplier()), 6),
                    "bound": mechanism.bound_report(),
                }
            )
    return ArenaResult(
        cells=cells,
        quick=quick,
        seed=seed,
        scenarios=tuple(scenarios),
        mechanisms=tuple(mechanisms),
    )


def merge_documents(documents: list[dict]) -> dict:
    """Merge per-cell ``repro.arena/v1`` documents into one.

    The parallel runner executes one (scenario, mechanism) cell per
    spec; this reassembles their documents in the canonical order
    (scenario in ``SCENARIOS`` order, then mechanism in registry order)
    so the merged document is independent of completion order.
    """
    if not documents:
        raise ValueError("nothing to merge")
    for document in documents:
        if document.get("schema") != SCHEMA:
            raise ValueError(
                f"schema mismatch: {document.get('schema')!r} != {SCHEMA!r}"
            )
        for key in ("quick", "seed"):
            if document[key] != documents[0][key]:
                raise ValueError(f"cannot merge documents with mixed {key!r}")
    cells = [cell for document in documents for cell in document["cells"]]
    scenario_order = {name: i for i, name in enumerate(SCENARIOS)}
    mechanism_order = {name: i for i, name in enumerate(ALL_MECHANISMS)}
    cells.sort(
        key=lambda cell: (
            scenario_order.get(cell["scenario"], len(scenario_order)),
            cell["scenario"],
            mechanism_order.get(cell["mechanism"], len(mechanism_order)),
            cell["mechanism"],
        )
    )
    seen_scenarios: list[str] = []
    seen_mechanisms: list[str] = []
    for cell in cells:
        if cell["scenario"] not in seen_scenarios:
            seen_scenarios.append(cell["scenario"])
        if cell["mechanism"] not in seen_mechanisms:
            seen_mechanisms.append(cell["mechanism"])
    return {
        "schema": SCHEMA,
        "quick": documents[0]["quick"],
        "seed": documents[0]["seed"],
        "scenarios": seen_scenarios,
        "mechanisms": seen_mechanisms,
        "cells": cells,
    }


def comparative_report(document: dict) -> str:
    """Render a merged arena document as per-scenario league tables."""
    sections: list[str] = []
    for scenario in document["scenarios"]:
        rows = []
        for cell in document["cells"]:
            if cell["scenario"] != scenario:
                continue
            hi_latency = cell["read_latency"].get("0", {})
            bound = cell["bound"]
            if bound is None:
                verdict = "-"
            else:
                verdict = (
                    f"ok ({bound['max_observed']}/{bound['bound']})"
                    if bound["ok"]
                    else f"VIOLATED x{bound['violations']}"
                )
            rows.append(
                (
                    cell["mechanism"],
                    cell["shares"].get("0", 0.0),
                    cell["target_hi_share"],
                    cell["allocation_error"],
                    cell["utilization"],
                    hi_latency.get("p95", 0.0),
                    hi_latency.get("p99", 0.0),
                    cell["counters"]["releases_denied"],
                    verdict,
                )
            )
        sections.append(
            format_table(
                [
                    "mechanism",
                    "hi share",
                    "target",
                    "alloc err",
                    "util",
                    "hi p95",
                    "hi p99",
                    "denied",
                    "wc bound",
                ],
                rows,
                title=f"Arena - scenario '{scenario}'",
            )
        )
    return "\n\n".join(sections)


_CELL_REQUIRED_KEYS = {
    "scenario": str,
    "mechanism": str,
    "shares": dict,
    "target_hi_share": float,
    "allocation_error": float,
    "share_error": dict,
    "utilization": float,
    "read_latency": dict,
    "counters": dict,
    "multiplier": float,
}

_COUNTER_KEYS = (
    "epochs",
    "releases_granted",
    "releases_denied",
    "writeback_charges",
)

_BOUND_KEYS = ("kind", "bound", "max_observed", "violations", "ok")


def validate_report(document: dict) -> int:
    """Check a document against the ``repro.arena/v1`` schema.

    Raises :class:`ValueError` on the first problem; returns the number
    of cells on success.  Hand-rolled (no jsonschema dependency) but
    strict about the fields the report and CI consume.
    """
    if not isinstance(document, dict):
        raise ValueError("document must be an object")
    if document.get("schema") != SCHEMA:
        raise ValueError(f"schema must be {SCHEMA!r}, got {document.get('schema')!r}")
    for key, kind in (
        ("quick", bool),
        ("seed", int),
        ("scenarios", list),
        ("mechanisms", list),
        ("cells", list),
    ):
        if not isinstance(document.get(key), kind):
            raise ValueError(f"document[{key!r}] must be {kind.__name__}")
    for i, cell in enumerate(document["cells"]):
        where = f"cells[{i}]"
        if not isinstance(cell, dict):
            raise ValueError(f"{where} must be an object")
        for key, kind in _CELL_REQUIRED_KEYS.items():
            if key not in cell:
                raise ValueError(f"{where} missing {key!r}")
            value = cell[key]
            if kind is float:
                if not isinstance(value, (int, float)) or isinstance(value, bool):
                    raise ValueError(f"{where}[{key!r}] must be a number")
            elif not isinstance(value, kind):
                raise ValueError(f"{where}[{key!r}] must be {kind.__name__}")
        for key in _COUNTER_KEYS:
            count = cell["counters"].get(key)
            if not isinstance(count, int) or count < 0:
                raise ValueError(
                    f"{where} counter {key!r} must be a non-negative int"
                )
        for qos_id, stats in cell["read_latency"].items():
            for key in ("count", "mean", "p50", "p95", "p99", "max"):
                if key not in stats:
                    raise ValueError(
                        f"{where} read_latency[{qos_id!r}] missing {key!r}"
                    )
        if "bound" not in cell:
            raise ValueError(f"{where} missing 'bound'")
        bound = cell["bound"]
        if bound is not None:
            for key in _BOUND_KEYS:
                if key not in bound:
                    raise ValueError(f"{where} bound missing {key!r}")
            if not isinstance(bound["ok"], bool):
                raise ValueError(f"{where} bound['ok'] must be a bool")
    return len(document["cells"])
