"""Shared plumbing for the paper-figure experiments.

Each ``fig*`` module builds systems from :class:`ClassSpec` lists, runs them
for a warm-up plus measurement window, and returns a result object with a
``report()`` method that prints the same rows/series the paper's figure
shows.  Benchmarks and tests consume the same functions; ``quick`` variants
shrink core counts and epochs for CI-speed runs.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable, Iterator, Sequence

from repro.analysis.timeline import BandwidthTimeline
from repro.mechanisms import MECHANISMS, make_mechanism
from repro.qos.classes import QoSRegistry
from repro.sim.config import SystemConfig
from repro.sim.mechanism import QoSMechanism
from repro.sim.system import System
from repro.workloads.base import Workload

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.trace import RequestTracer
    from repro.runner.checkpoint import Checkpoint, CheckpointStore

__all__ = [
    "ClassSpec",
    "MECHANISMS",
    "RunResult",
    "build_system",
    "config_overrides",
    "make_mechanism",
    "run_system",
    "sanitized",
    "sharded",
    "traced",
    "warm_start",
]

# Default for build_system(sanitize=None).  The ``repro run --sanitize``
# CLI flag and the :func:`sanitized` context manager flip this so every
# system an experiment builds gets a runtime sanitizer without threading
# a flag through all nine fig* modules.
_default_sanitize = False


@contextmanager
def sanitized(enabled: bool = True) -> Iterator[None]:
    """Enable the runtime sanitizer for systems built inside the block."""
    global _default_sanitize
    previous = _default_sanitize
    _default_sanitize = enabled
    try:
        yield
    finally:
        _default_sanitize = previous


# SystemConfig field overrides applied to every system built inside a
# :func:`config_overrides` block.  Same pattern as ``sanitized``: the
# runner threads sweep-wide config tweaks through all nine fig* modules
# without changing their signatures.
_default_overrides: dict[str, object] = {}


@contextmanager
def config_overrides(**overrides: object) -> Iterator[None]:
    """Override :class:`SystemConfig` fields for systems built inside.

    Unknown field names raise at build time (``dataclasses.replace``
    validates against the config's fields).  Overrides nest: inner blocks
    shadow outer ones field-by-field.
    """
    global _default_overrides
    previous = _default_overrides
    _default_overrides = {**previous, **overrides}
    try:
        yield
    finally:
        _default_overrides = previous


# Checkpoint store consulted by run_system() for every run inside a
# :func:`warm_start` block.  Third instance of the ambient-default
# pattern (`sanitized`, `config_overrides`): the sweep runner turns on
# warm-starting for whole fig* runs without changing their signatures.
_default_checkpoint_store: "CheckpointStore | None" = None


@contextmanager
def warm_start(store: "CheckpointStore") -> Iterator[None]:
    """Warm-start runs inside the block from ``store``'s checkpoints.

    Every :func:`run_system` call inside the block checkpoints its
    warm-up/measurement boundary into ``store`` (first run of a prefix)
    or forks from the stored snapshot instead of re-simulating the
    warm-up (every later run sharing that prefix).  Forked runs are
    byte-identical to cold ones — see DESIGN.md §8.
    """
    global _default_checkpoint_store
    previous = _default_checkpoint_store
    _default_checkpoint_store = store
    try:
        yield
    finally:
        _default_checkpoint_store = previous


# Request tracer and epoch metric sinks attached to every system built
# inside a :func:`traced` block.  Fourth instance of the ambient-default
# pattern: `repro trace fig05` wires observability into a whole figure
# run without the fig* modules knowing the tracer exists.
_default_tracer: "RequestTracer | None" = None
_default_sinks: tuple = ()


@contextmanager
def traced(
    tracer: "RequestTracer | None" = None, sinks: Sequence = ()
) -> Iterator[None]:
    """Attach observability to every system built inside the block.

    ``tracer`` (a :class:`repro.obs.trace.RequestTracer`) is installed
    as each built engine's lifecycle recorder; ``sinks`` (objects with
    ``publish(record)``) receive every epoch metric record the systems'
    ``Stats.close_epoch`` produces.  A figure module that builds several
    systems feeds them all into the same tracer/sinks — request ids are
    process-global, so transition streams never collide.
    """
    global _default_tracer, _default_sinks
    previous = (_default_tracer, _default_sinks)
    _default_tracer = tracer
    _default_sinks = tuple(sinks)
    try:
        yield
    finally:
        _default_tracer, _default_sinks = previous


# Shard count applied to every run_system() call inside a
# :func:`sharded` block.  Fifth instance of the ambient-default pattern:
# `repro sweep --shards N` parallelizes whole fig* runs without the
# figure modules knowing the shard runner exists.
_default_shards = 1


@contextmanager
def sharded(shards: int, backend: str = "process") -> Iterator[None]:
    """Run every :func:`run_system` call inside the block sharded.

    The machine is partitioned across ``shards`` engines synchronized
    in conservative windows (DESIGN.md §11); reports are byte-identical
    to single-process runs.  ``shards=1`` is the single-process path.
    Incompatible with :func:`warm_start` / ``resume_from`` (a snapshot
    captures one engine, not a shard ensemble) and with :func:`traced`
    (the tracer would only see one shard's hops) — ``run_system``
    raises on those combinations.
    """
    global _default_shards, _default_shard_backend
    if shards < 1:
        raise ValueError("shards must be >= 1")
    previous = (_default_shards, _default_shard_backend)
    _default_shards = shards
    _default_shard_backend = backend
    try:
        yield
    finally:
        _default_shards, _default_shard_backend = previous


_default_shard_backend = "process"


# MECHANISMS / make_mechanism now live in repro.mechanisms (the full
# zoo, including the paper's baselines); re-exported here because the
# fig* modules and external callers import them from this module.


@dataclass(frozen=True)
class ClassSpec:
    """One QoS class in an experiment: weight, cores, and their workload."""

    qos_id: int
    name: str
    weight: float
    cores: int
    workload_factory: Callable[[], Workload]
    l3_ways: int | None = None

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ValueError(f"class {self.name!r} needs at least one core")


def build_system(
    specs: Sequence[ClassSpec],
    config: SystemConfig | None = None,
    mechanism: QoSMechanism | None = None,
    seed: int = 0,
    sample_latencies: bool = False,
    sanitize: bool | None = None,
) -> System:
    """Wire a system with cores assigned to classes in spec order."""
    if not specs:
        raise ValueError("need at least one class spec")
    total_cores = sum(spec.cores for spec in specs)
    if config is None:
        config = SystemConfig.default_experiment(cores=total_cores, num_mcs=2)
    if _default_overrides:
        config = replace(config, **_default_overrides)
    if total_cores > config.cores:
        raise ValueError(
            f"specs need {total_cores} cores, config has {config.cores}"
        )
    registry = QoSRegistry()
    workloads: dict[int, Workload] = {}
    next_core = 0
    for spec in specs:
        registry.define_class(
            spec.qos_id, spec.name, weight=spec.weight, l3_ways=spec.l3_ways
        )
        for _ in range(spec.cores):
            registry.assign_core(next_core, spec.qos_id)
            workloads[next_core] = spec.workload_factory()
            next_core += 1
    system = System(
        config,
        registry,
        workloads,
        mechanism=mechanism,
        seed=seed,
        sample_latencies=sample_latencies,
        sanitize=_default_sanitize if sanitize is None else sanitize,
        tracer=_default_tracer,
    )
    for sink in _default_sinks:
        system.stats.add_sink(sink)
    return system


@dataclass
class RunResult:
    """Everything an experiment needs from one finished run."""

    system: System
    timeline: BandwidthTimeline
    warmup_epochs: int
    steady_bytes: dict[int, int] = field(default_factory=dict)

    @property
    def cycles(self) -> int:
        return self.system.engine.now

    def share(self, qos_id: int) -> float:
        return self.timeline.steady_share(qos_id, self.warmup_epochs)

    def ipc(self, qos_id: int) -> float:
        return self.system.stats.ipc(qos_id, self.cycles)

    def total_utilization(self) -> float:
        total = sum(self.steady_bytes.values())
        measured = self.timeline.epochs[self.warmup_epochs :]
        cycles = sum(sample.cycles for sample in measured)
        if cycles == 0:
            return 0.0
        return total / cycles / self.system.config.peak_bandwidth


def run_system(
    system: System,
    epochs: int,
    warmup_epochs: int,
    *,
    checkpoint_after_warmup: "CheckpointStore | None" = None,
    resume_from: "Checkpoint | None" = None,
) -> RunResult:
    """Run for ``epochs`` QoS epochs and summarize the steady window.

    ``system`` must be freshly built (no cycles run yet).  Three ways to
    cover the warm-up window, all producing byte-identical results:

    * plain (default): simulate all ``epochs`` in one go;
    * ``resume_from=checkpoint``: fork the measurement phase from an
      explicit warm-up snapshot instead of simulating the warm-up —
      the checkpoint's prefix must match this run (validated);
    * ``checkpoint_after_warmup=store`` (or an ambient
      :func:`warm_start` block): consult the store for this run's
      warm-up prefix — fork on a hit, otherwise simulate the warm-up,
      snapshot it into the store, and continue.
    """
    if warmup_epochs >= epochs:
        raise ValueError("need more epochs than warm-up")
    store = checkpoint_after_warmup
    if store is None:
        store = _default_checkpoint_store
    if _default_shards > 1:
        from repro.sim.engine import SimulationError

        if resume_from is not None or store is not None:
            raise SimulationError(
                "sharded runs cannot warm-start: a checkpoint captures one "
                "engine, not a shard ensemble"
            )
        from repro.runner.shardpool import run_sharded

        # run_sharded returns the system finalized; finalize() must not
        # run again (it would double-close the controllers' windows)
        system = run_sharded(
            system, epochs, _default_shards, backend=_default_shard_backend
        )
    elif resume_from is not None or (store is not None and warmup_epochs > 0):
        system = _run_warm_started(
            system, epochs, warmup_epochs, store, resume_from
        )
        system.finalize()
    else:
        system.run_epochs(epochs)
        system.finalize()
    timeline = BandwidthTimeline(
        system.stats.epochs, system.config.peak_bandwidth
    )
    return RunResult(
        system=system,
        timeline=timeline,
        warmup_epochs=warmup_epochs,
        steady_bytes=timeline.steady_bytes(warmup_epochs),
    )


def _run_warm_started(
    system: System,
    epochs: int,
    warmup_epochs: int,
    store: "CheckpointStore | None",
    resume_from: "Checkpoint | None",
) -> System:
    """Cover ``epochs`` via checkpointing; returns the system that ran.

    On a fork the caller's ``system`` object is abandoned unrun and the
    restored clone takes its place — restores never mutate the snapshot,
    so one stored warm-up serves any number of forks.
    """
    from repro.runner.checkpoint import (
        restore_system,
        snapshot_system,
        warmup_prefix_hash,
    )
    from repro.sim.engine import SimulationError

    if system._epochs_started:
        raise SimulationError(
            "warm-started run_system needs a freshly built system; this "
            "one has already simulated cycles"
        )
    prefix_hash = warmup_prefix_hash(system, warmup_epochs)
    checkpoint = resume_from
    if checkpoint is not None:
        if checkpoint.prefix_hash != prefix_hash:
            raise SimulationError(
                f"resume_from checkpoint prefix {checkpoint.prefix_hash} "
                f"does not match this run's warm-up prefix {prefix_hash}"
            )
    elif store is not None:
        checkpoint = store.load(prefix_hash)
    if checkpoint is not None:
        system = restore_system(checkpoint)
    else:
        system.run_epochs(warmup_epochs)
        if store is not None:
            store.save(snapshot_system(system, warmup_epochs, prefix_hash))
    system.run_epochs(epochs - warmup_epochs)
    return system
