"""Fig. 7 (Section IV-C): source vs target vs PABST on both mixes.

Repeats the Fig. 1 experiment with PABST added: six bars — {source-only,
target-only, PABST} x {stream mix, chaser mix}, all with a 3:1 allocation.
The paper's claim: PABST tracks whichever single-point regulator does
better on each mix, with a small residual error on the chaser mix that
only sacrificing controller efficiency could remove.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.metrics import allocation_error, bandwidth_shares
from repro.analysis.report import format_table
from repro.experiments.common import build_system, make_mechanism, run_system
from repro.experiments.mixes import HI_WEIGHT, LO_WEIGHT, chaser_mix, stream_mix

__all__ = ["Fig07Result", "MixOutcome", "run", "sweep_cells"]

TARGET_HI_SHARE = HI_WEIGHT / (HI_WEIGHT + LO_WEIGHT)

_MIXES = (("stream", stream_mix), ("chaser", chaser_mix))


@dataclass(frozen=True)
class MixOutcome:
    """One bar of the figure."""

    mix: str
    mechanism: str
    hi_share: float
    error: float
    utilization: float


@dataclass
class Fig07Result:
    outcomes: list[MixOutcome]

    def outcome(self, mix: str, mechanism: str) -> MixOutcome:
        for entry in self.outcomes:
            if entry.mix == mix and entry.mechanism == mechanism:
                return entry
        raise KeyError(f"no outcome for {mix!r}/{mechanism!r}")

    def report(self) -> str:
        rows = [
            (o.mix, o.mechanism, o.hi_share, TARGET_HI_SHARE, o.error, o.utilization)
            for o in self.outcomes
        ]
        return format_table(
            ["mix", "mechanism", "hi share", "target", "alloc error", "utilization"],
            rows,
            title="Fig. 7 - source and target regulation, 3:1 allocation",
        )


def sweep_cells(quick: bool = False) -> list[dict]:
    """Independent grid cells for the parallel runner: one (mix, mechanism)
    bar per cell, each a kwargs dict for :func:`run`."""
    return [
        {"mixes": (mix,), "mechanisms": (mechanism,)}
        for mix, _ in _MIXES
        for mechanism in ("source-only", "target-only", "pabst")
    ]


def run(
    mechanisms: tuple[str, ...] = ("source-only", "target-only", "pabst"),
    quick: bool = False,
    seed: int = 0,
    mixes: tuple[str, ...] = ("stream", "chaser"),
) -> Fig07Result:
    """Run every mechanism on the selected mixes and collect the bars."""
    epochs, warmup = (60, 25) if quick else (140, 50)
    outcomes: list[MixOutcome] = []
    weights = {0: float(HI_WEIGHT), 1: float(LO_WEIGHT)}
    for mix_name, specs_factory in _MIXES:
        if mix_name not in mixes:
            continue
        for mechanism_name in mechanisms:
            system = build_system(
                specs_factory(), mechanism=make_mechanism(mechanism_name), seed=seed
            )
            result = run_system(system, epochs=epochs, warmup_epochs=warmup)
            observed = {
                qos_id: result.steady_bytes.get(qos_id, 0) for qos_id in weights
            }
            shares = bandwidth_shares(observed)
            outcomes.append(
                MixOutcome(
                    mix=mix_name,
                    mechanism=mechanism_name,
                    hi_share=shares.get(0, 0.0),
                    error=allocation_error(observed, weights),
                    utilization=result.total_utilization(),
                )
            )
    return Fig07Result(outcomes=outcomes)
