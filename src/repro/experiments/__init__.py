"""Experiment definitions, one module per figure in the paper's evaluation.

Each module exposes ``run(quick=False, seed=0)`` returning a result object
with a ``report()`` method that prints the figure's rows/series.  The
``benchmarks/`` directory wraps these for pytest-benchmark; EXPERIMENTS.md
records paper-vs-measured values.
"""

from repro.experiments import (
    fig01_motivation,
    fig05_proportional,
    fig06_work_conserving,
    fig07_source_and_target,
    fig08_excess,
    fig09_memcached,
    fig10_isolation,
    fig11_iaas,
    fig12_efficiency,
)
from repro.experiments.common import (
    MECHANISMS,
    ClassSpec,
    RunResult,
    build_system,
    make_mechanism,
    run_system,
)

__all__ = [
    "ClassSpec", "MECHANISMS", "RunResult", "build_system", "make_mechanism",
    "run_system",
    "fig01_motivation", "fig05_proportional", "fig06_work_conserving",
    "fig07_source_and_target", "fig08_excess", "fig09_memcached",
    "fig10_isolation", "fig11_iaas", "fig12_efficiency",
]
