"""256-core scale-out run: the sharded runner's headline workload.

Not a paper figure — the paper's Table III machine tops out at 32 cores —
but the scaling scenario its epoch-based control loop is built for: a
256-core, 32-channel SoC where a single engine's event loop is the
simulation bottleneck.  Four bandwidth classes of pure streamers keep
the run memory-bound, so most simulated work lives on the memory
controllers — exactly the part a sharded run (``--shards N``) farms out
to target shards.

The report is byte-identical at any shard count, like every figure; the
bench harness uses this config to measure the sharded runner's
wall-clock behaviour (``repro bench soc256 --shards N``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import format_series
from repro.analysis.timeline import BandwidthTimeline
from repro.core.pabst import PabstMechanism
from repro.experiments.common import ClassSpec, build_system, run_system
from repro.sim.config import SystemConfig
from repro.workloads.stream import StreamWorkload

__all__ = ["Soc256Result", "run", "sweep_cells"]

#: (name, weight, cores) per class; weights sum to 16 for round shares.
CLASSES = (
    ("plat", 8, 64),
    ("gold", 4, 64),
    ("silver", 3, 64),
    ("bronze", 1, 64),
)


@dataclass
class Soc256Result:
    timeline: BandwidthTimeline
    warmup_epochs: int
    shares: dict[int, float]
    utilization: float

    def report(self) -> str:
        total_weight = sum(weight for _, weight, _ in CLASSES)
        lines = ["soc256 - 256 cores / 32 MCs, four stream classes at 8:4:3:1"]
        for qos_id, (name, weight, _) in enumerate(CLASSES):
            lines.append(
                format_series(name, self.timeline.utilization_series(qos_id))
            )
        for qos_id, (name, weight, _) in enumerate(CLASSES):
            lines.append(
                f"steady {name} share = {self.shares[qos_id]:.3f} "
                f"(target {weight / total_weight:.3f})"
            )
        lines.append(f"steady utilization = {self.utilization:.3f} of peak")
        return "\n".join(lines)


def run(
    quick: bool = False,
    seed: int = 0,
    sanitize: bool | None = None,
) -> Soc256Result:
    warmup = 2 if quick else 5
    epochs = warmup + (4 if quick else 15)
    specs = [
        ClassSpec(
            qos_id=qos_id,
            name=name,
            weight=weight,
            cores=cores,
            workload_factory=StreamWorkload,
            l3_ways=4,
        )
        for qos_id, (name, weight, cores) in enumerate(CLASSES)
    ]
    system = build_system(
        specs,
        config=SystemConfig.soc_256core(),
        mechanism=PabstMechanism(),
        seed=seed,
        sanitize=sanitize,
    )
    result = run_system(system, epochs=epochs, warmup_epochs=warmup)
    return Soc256Result(
        timeline=result.timeline,
        warmup_epochs=warmup,
        shares={qos_id: result.share(qos_id) for qos_id in range(len(CLASSES))},
        utilization=result.total_utilization(),
    )


def sweep_cells(quick: bool = False) -> list[dict]:
    """A single cell: the run itself is the sweep-scale workload."""
    return [{}]
