"""Workload mixes shared by the motivation experiments (Figs. 1 and 7).

Both figures run the same two mixes with a 3:1 allocation:

* **stream mix** — two write-streaming classes.  Their combined outstanding
  misses oversubscribe the controller queues, the regime where target-only
  regulation loses control (Fig. 1b).
* **chaser mix** — a latency-sensitive pointer chaser (high share) against a
  write streamer.  The chaser's achievable bandwidth is set by its memory
  latency, the regime where source-only regulation cannot help (Fig. 1c).

The chaser runs more chains per core than the paper's four because this
reproduction gives it fewer cores; what matters is that the class *could*
consume its 75% entitlement at isolated latency (see DESIGN.md §4).
"""

from __future__ import annotations

from repro.experiments.common import ClassSpec
from repro.workloads.chaser import ChaserWorkload
from repro.workloads.stream import StreamWorkload

__all__ = [
    "HI_WEIGHT",
    "LO_WEIGHT",
    "chaser_mix",
    "stream_mix",
]

HI_WEIGHT = 3
LO_WEIGHT = 1


def _aggressor_stream() -> StreamWorkload:
    return StreamWorkload(write_fraction=1.0, name="write-stream")


def stream_mix(cores_per_class: int = 4) -> list[ClassSpec]:
    """Two write-stream classes with a 3:1 share split."""
    return [
        ClassSpec(
            qos_id=0,
            name="stream-hi",
            weight=HI_WEIGHT,
            cores=cores_per_class,
            workload_factory=_aggressor_stream,
            l3_ways=8,
        ),
        ClassSpec(
            qos_id=1,
            name="stream-lo",
            weight=LO_WEIGHT,
            cores=cores_per_class,
            workload_factory=_aggressor_stream,
            l3_ways=8,
        ),
    ]


def chaser_mix(cores_per_class: int = 4, chains: int = 8) -> list[ClassSpec]:
    """Latency-sensitive chaser (3) against a write streamer (1)."""
    return [
        ClassSpec(
            qos_id=0,
            name="chaser",
            weight=HI_WEIGHT,
            cores=cores_per_class,
            workload_factory=lambda: ChaserWorkload(chains=chains),
            l3_ways=8,
        ),
        ClassSpec(
            qos_id=1,
            name="stream-lo",
            weight=LO_WEIGHT,
            cores=cores_per_class,
            workload_factory=_aggressor_stream,
            l3_ways=8,
        ),
    ]
