"""Fig. 1 (Section I): why neither source- nor target-only regulation works.

Four columns: (a) source regulator on two streams, (b) target regulator on
two streams, (c) source regulator on chaser+stream, (d) target regulator on
chaser+stream — all with a 3:1 allocation.  The paper's shape: (a) is fine,
(b) fails badly (queues oversubscribed), (c) fails badly (throttling cannot
lower the chaser's latency), (d) is the better of the two but leaves a
residual error.

This is the same machinery as Fig. 7 restricted to the single-point
regulators; see :mod:`repro.experiments.fig07_source_and_target`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import format_table
from repro.experiments.fig07_source_and_target import (
    TARGET_HI_SHARE,
    Fig07Result,
    MixOutcome,
    run as _run_fig07,
)

__all__ = ["Fig01Result", "run", "sweep_cells", "TARGET_HI_SHARE"]

_COLUMNS = (
    ("a", "stream", "source-only"),
    ("b", "stream", "target-only"),
    ("c", "chaser", "source-only"),
    ("d", "chaser", "target-only"),
)


@dataclass
class Fig01Result:
    inner: Fig07Result

    def column(self, label: str) -> MixOutcome:
        for col, mix, mechanism in _COLUMNS:
            if col == label:
                return self.inner.outcome(mix, mechanism)
        raise KeyError(f"Fig. 1 has no column {label!r}")

    def _present_columns(self) -> list[tuple[str, str, str]]:
        """The figure's columns restricted to mechanisms actually run."""
        available = {(o.mix, o.mechanism) for o in self.inner.outcomes}
        return [
            (col, mix, mechanism)
            for col, mix, mechanism in _COLUMNS
            if (mix, mechanism) in available
        ]

    def report(self) -> str:
        rows = [
            (
                col,
                f"{mechanism} / {mix} mix",
                self.inner.outcome(mix, mechanism).hi_share,
                TARGET_HI_SHARE,
                self.inner.outcome(mix, mechanism).error,
            )
            for col, mix, mechanism in self._present_columns()
        ]
        return format_table(
            ["col", "regulator / workload", "hi share", "target", "alloc error"],
            rows,
            title="Fig. 1 - source- vs target-based regulation, 3:1 allocation",
        )


def sweep_cells(quick: bool = False) -> list[dict]:
    """One cell per single-point regulator (each runs both mixes)."""
    return [{"mechanisms": (m,)} for m in ("source-only", "target-only")]


def run(
    quick: bool = False,
    seed: int = 0,
    mechanisms: tuple[str, ...] = ("source-only", "target-only"),
) -> Fig01Result:
    inner = _run_fig07(mechanisms=mechanisms, quick=quick, seed=seed)
    return Fig01Result(inner=inner)
