"""Fig. 11 (Section IV-E): work-conserving fairness in an IaaS setting.

Four equal-priority classes (25% each) run the same SPEC workload on a
consolidated machine under PABST.  The baseline approximates a *static*
25% bandwidth reservation: the same class running alone with DRAM clocked
four times slower.  Because PABST is work conserving — classes rarely all
demand their full share at once — every workload should run 15-90% faster
than under the static split.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.report import format_table
from repro.baselines.static_partition import static_partition_config
from repro.core.pabst import PabstMechanism
from repro.experiments.common import ClassSpec, build_system, run_system
from repro.sim.config import SystemConfig
from repro.workloads.spec import SPEC_PROFILES, spec_workload

__all__ = ["Fig11Result", "IaasRow", "default_workloads", "run", "sweep_cells"]

NUM_CLASSES = 4
CORES_PER_CLASS = 2
SHARE_DIVISOR = 4


@dataclass(frozen=True)
class IaasRow:
    workload: str
    static_ipc: float
    pabst_ipc: float

    @property
    def speedup(self) -> float:
        if self.static_ipc <= 0:
            return 0.0
        return self.pabst_ipc / self.static_ipc

    @property
    def improvement_pct(self) -> float:
        return (self.speedup - 1.0) * 100.0


@dataclass
class Fig11Result:
    rows: list[IaasRow] = field(default_factory=list)

    def report(self) -> str:
        table = [
            (row.workload, row.static_ipc, row.pabst_ipc, row.speedup,
             f"{row.improvement_pct:+.0f}%")
            for row in self.rows
        ]
        return format_table(
            ["workload", "static-1/4 IPC", "pabst IPC", "speedup", "improvement"],
            table,
            title=(
                "Fig. 11 - consolidated equal shares (PABST) vs static 1/4 "
                "bandwidth partition"
            ),
        )


def _static_ipc(workload: str, epochs: int, seed: int) -> float:
    """One class alone on a machine with DRAM slowed 4x (per-core IPC)."""
    config = static_partition_config(
        SystemConfig.default_experiment(cores=CORES_PER_CLASS, num_mcs=2),
        SHARE_DIVISOR,
    )
    specs = [
        ClassSpec(
            qos_id=0,
            name=workload,
            weight=1,
            cores=CORES_PER_CLASS,
            workload_factory=lambda: spec_workload(workload),
        )
    ]
    system = build_system(specs, config=config, seed=seed)
    run_system(system, epochs=epochs, warmup_epochs=1)
    return system.stats.ipc(0, system.engine.now) / CORES_PER_CLASS


def _pabst_ipc(workload: str, epochs: int, seed: int) -> float:
    """Four equal classes of the same workload under PABST (per-core IPC)."""
    ways_each = 4
    specs = [
        ClassSpec(
            qos_id=class_id,
            name=f"{workload}.{class_id}",
            weight=1,
            cores=CORES_PER_CLASS,
            workload_factory=lambda: spec_workload(workload),
            l3_ways=ways_each,
        )
        for class_id in range(NUM_CLASSES)
    ]
    system = build_system(specs, mechanism=PabstMechanism(), seed=seed)
    run_system(system, epochs=epochs, warmup_epochs=1)
    per_class = [
        system.stats.ipc(class_id, system.engine.now) / CORES_PER_CLASS
        for class_id in range(NUM_CLASSES)
    ]
    return sum(per_class) / len(per_class)


def default_workloads(quick: bool = False) -> tuple[str, ...]:
    """The workload set :func:`run` uses when none is given."""
    return ("mcf", "milc") if quick else tuple(sorted(SPEC_PROFILES))


def sweep_cells(quick: bool = False) -> list[dict]:
    """One independent cell per workload row."""
    return [{"workloads": (workload,)} for workload in default_workloads(quick)]


def run(
    workloads: tuple[str, ...] | None = None,
    quick: bool = False,
    seed: int = 0,
) -> Fig11Result:
    if workloads is None:
        workloads = default_workloads(quick)
    epochs = 50 if quick else 110
    result = Fig11Result()
    for workload in workloads:
        result.rows.append(
            IaasRow(
                workload=workload,
                static_ipc=_static_ipc(workload, epochs, seed),
                pabst_ipc=_pabst_ipc(workload, epochs, seed),
            )
        )
    return result
