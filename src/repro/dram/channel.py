"""DRAM channel data bus.

The bus serializes data bursts; its utilization is the numerator of the
paper's *memory efficiency* metric (Fig. 12).
"""

from __future__ import annotations

__all__ = ["DataBus"]


class DataBus:
    """Single data bus shared by all banks behind one memory controller."""

    def __init__(self, burst_cycles: int) -> None:
        if burst_cycles <= 0:
            raise ValueError(f"burst_cycles must be positive, got {burst_cycles}")
        self._burst = burst_cycles
        self.free_at = 0
        self.busy_cycles = 0
        self.transfers = 0

    @property
    def burst_cycles(self) -> int:
        return self._burst

    def reserve(self, earliest_start: int) -> tuple[int, int]:
        """Reserve the bus for one burst starting no earlier than given.

        Returns ``(data_start, data_end)`` and advances the bus reservation.
        """
        data_start = max(earliest_start, self.free_at)
        data_end = data_start + self._burst
        self.free_at = data_end
        self.busy_cycles += self._burst
        self.transfers += 1
        return data_start, data_end
