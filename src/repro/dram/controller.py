"""Memory controller with a queued front-end and a bank/bus back-end.

The structure follows Section III-C of the paper:

* A **front-end** accepts requests from the SoC network into separate read
  and write queues.  Both queues have finite capacity; when the read queue
  is full the controller exerts backpressure and requests pile up *outside*
  the controller (at the L3), which is exactly the condition under which
  target-only regulation breaks down (Fig. 1b).
* A **back-end** of banks and one shared data bus serves requests.  A
  request leaves the front-end at the moment its bank access begins, so the
  pluggable :class:`~repro.dram.schedulers.SchedulingPolicy` (FR-FCFS,
  FQM-style, or the PABST arbiter) always selects over every queued request
  whose bank is ready — see ``schedulers.py`` for why the selection point
  is unified.
* Reads have priority; writes drain in batches between a high and a low
  watermark (the paper leaves the baseline read/write switch unmodified).

Two timing rules keep the model honest:

* an access issues only when its bank-prep time covers the remaining
  data-bus backlog, so bus slots are never reserved far ahead of service
  (which would freeze the order and silently defeat arbitration);
* every scheduling pass re-arms a wakeup at the next bank-free or
  gate-open time, so queued work never stalls waiting for an unrelated
  event.

The controller also integrates its read-queue occupancy over time, which
the PABST saturation monitor samples at each epoch boundary.
"""

from __future__ import annotations

from bisect import bisect_right, insort
from typing import TYPE_CHECKING, Callable

from repro import accel
from repro.dram.bank import Bank
from repro.dram.channel import DataBus
from repro.dram.schedulers import FrFcfsPolicy, SchedulingPolicy
from repro.dram.timing import PagePolicy
from repro.sim.engine import _WHEEL_MASK, Engine
from repro.sim.records import MemoryRequest

if TYPE_CHECKING:  # pragma: no cover - break the sim<->dram import cycle
    from repro.sim.config import SystemConfig
    from repro.sim.stats import Stats
    from repro.sim.topology import AddressMap

__all__ = ["MemoryController"]

#: "No wakeup needed" sentinel for the min-scan in ``_schedule_wakeup``
#: (compares greater than any reachable cycle count).
_FAR = 1 << 62


class MemoryController:
    """One DDR channel: front-end queues, banks, data bus, and a scheduler."""

    def __init__(
        self,
        engine: Engine,
        mc_id: int,
        config: "SystemConfig",
        address_map: "AddressMap",
        stats: "Stats",
        policy: SchedulingPolicy | None = None,
    ) -> None:
        self._engine = engine
        self.mc_id = mc_id
        self._config = config
        self._timing = config.dram
        self._map = address_map
        self._stats = stats
        self.policy: SchedulingPolicy = policy if policy is not None else FrFcfsPolicy()
        self.banks = [
            Bank(bank, self._timing, config.page_policy)
            for bank in range(config.banks_per_mc)
        ]
        self.bus = DataBus(self._timing.t_burst)
        # Derived timing constants for the scheduler's ready scan.  Under
        # the closed-page policy every access pays the same prep, so the
        # prep-vs-bus-backlog gate is request-independent.
        self._min_prep = self._timing.access_prep(row_hit=True)
        self._uniform_prep = (
            None
            if config.page_policy == PagePolicy.OPEN
            else self._timing.access_prep(row_hit=False)
        )
        # Compiled ready-scan kernels (repro.accel's extension module) or
        # None under the pure backend.  Bound once per controller: the
        # backend selection applies at system build time, and the binding
        # is process-local (dropped on pickle, re-resolved on restore).
        self._ckern = accel.controller_kernels()
        # front-end queue capacities, flattened for the accept hot path
        self._read_capacity = config.frontend_read_queue
        self._write_capacity = config.frontend_write_queue
        self._wm_high = config.write_high_watermark
        self._wm_low = config.write_low_watermark
        # bank busy_until mirrored into a plain int list: the ready scan
        # and the wakeup computation touch it for every queued request on
        # every pass, where a list index beats an attribute load
        self._bank_busy = [0] * config.banks_per_mc
        # Ascending multiset of outstanding bank busy-until times, fed by
        # _issue and consumed by _schedule_wakeup.  A bank cannot be
        # re-issued before its previous busy window expires, so any entry
        # superseded by a newer issue to the same bank is already <= now
        # by the time a wakeup looks — pruning the expired prefix leaves
        # exactly the live busy times, and the head is the next bank-free
        # cycle without scanning every bank per pass.
        self._busy_times: list[int] = []
        self.read_queue: list[MemoryRequest] = []
        self.write_queue: list[MemoryRequest] = []
        self.on_read_complete: Callable[[MemoryRequest], None] | None = None
        self._space_listeners: list[Callable[[int], None]] = []
        self._draining_writes = False

        # hop fusion (configured by System once the cores exist): reads
        # whose return path has no arbitration point are issued as one
        # fused chain (bank completion + core response) instead of two
        # separately scheduled events — see configure_read_fusion().
        # Keyed by core_id; a miss (absent core, foreign injector id,
        # zero return delay) falls back to the unfused path.
        self._fused: dict[int, tuple] | None = None
        self._respond_fn: Callable | None = None

        # scheduling-pass coalescing: _pass_at is the armed pass time, and
        # _pass_token identifies the newest armed pass event — superseded
        # events dispatch, see their stale token, and return immediately
        # (cheaper than allocating a cancellable Event per arm)
        self._pass_at: int | None = None
        self._pass_token = 0

        # read-queue occupancy integral (for the saturation monitor)
        self._occ_integral = 0
        self._occ_last_update = 0
        self._occ_window_start = 0

        # activity tracking (denominator of memory efficiency, Fig. 12)
        self._inflight = 0
        self._active_since = -1
        self.active_cycles = 0

        # counters
        self.reads_accepted = 0
        self.writes_accepted = 0
        self.rejects = 0

    # ------------------------------------------------------------------
    # front-end
    # ------------------------------------------------------------------
    @property
    def read_queue_capacity(self) -> int:
        return self._config.frontend_read_queue

    def try_enqueue(self, req: MemoryRequest) -> bool:
        """Accept a request into the front-end; False means queue full."""
        now = self._engine._now
        if req.is_memory_write:
            if len(self.write_queue) >= self._write_capacity:
                self.rejects += 1
                self._stats.requests_rejected += 1
                return False
            target = self.write_queue
            self.writes_accepted += 1
        else:
            if len(self.read_queue) >= self._read_capacity:
                self.rejects += 1
                self._stats.requests_rejected += 1
                return False
            target = self.read_queue
            # inlined _update_occupancy() (before the append below)
            self._occ_integral += len(target) * (now - self._occ_last_update)
            self._occ_last_update = now
            self.reads_accepted += 1

        req.arrived_mc_at = now
        req.mc_id = self.mc_id
        if req.bank_id < 0:
            # injected requests arrive pre-decoded (the system stamps the
            # route when the request enters the NoC); only raw requests
            # from tests or direct callers pay the decode here
            _, _, req.bank_id, req.row_id = self._map.decode(req.addr)
        target.append(req)
        self._stats.requests_enqueued += 1
        self.policy.on_accept(req, now)
        if self._engine.sanitizer is not None:
            self._engine.sanitizer.on_accept(req)
        if self._engine.tracer is not None:
            self._engine.tracer.arrived(req)
        # inlined _note_arrival()
        if self._inflight == 0:
            self._active_since = now
        self._inflight += 1
        self._request_pass(now)
        return True

    def add_space_listener(self, callback: Callable[[int], None]) -> None:
        """Register a callback invoked synchronously when space frees up.

        Listeners must be cheap and must not re-enter the controller:
        the contract is "set a hint, arm a drain", nothing more.
        """
        self._space_listeners.append(callback)

    # ------------------------------------------------------------------
    # saturation-monitor interface
    # ------------------------------------------------------------------
    def sample_read_occupancy(self) -> float:
        """Average read-queue occupancy since the last sample."""
        now = self._engine._now
        self._update_occupancy()
        elapsed = now - self._occ_window_start
        average = self._occ_integral / elapsed if elapsed > 0 else float(
            len(self.read_queue)
        )
        self._occ_integral = 0
        self._occ_window_start = now
        return average

    def _update_occupancy(self) -> None:
        now = self._engine._now
        self._occ_integral += len(self.read_queue) * (now - self._occ_last_update)
        self._occ_last_update = now

    # ------------------------------------------------------------------
    # activity accounting
    # ------------------------------------------------------------------
    def finalize(self) -> None:
        """Close open accounting intervals at the end of a run."""
        self._update_occupancy()
        if self._inflight > 0:
            delta = self._engine._now - self._active_since
            self.active_cycles += delta
            self._stats.mc_active_cycles += delta
            self._active_since = self._engine._now

    # ------------------------------------------------------------------
    # scheduling passes
    # ------------------------------------------------------------------
    def _request_pass(self, when: int) -> None:
        """Coalesce scheduling passes: keep at most one, at the earliest time."""
        if self._pass_at is not None and self._pass_at <= when:
            return
        self._pass_at = when
        token = self._pass_token + 1
        self._pass_token = token
        # inlined engine.post_at (the arm rate makes even the call overhead
        # measurable); `when` is always an int >= engine._now here, and pass
        # times are near-future, so the wheel-window fast path all but
        # always takes — post_at handles the overflow remainder
        engine = self._engine
        if when < engine._horizon:
            engine._wheel[when & _WHEEL_MASK].append((self._run_pass, (token,)))
            engine._wheel_count += 1
            engine._live += 1
        else:
            engine.post_at(when, self._run_pass, token)

    def _run_pass(self, token: int) -> None:  # repro: hot-kernel; repro: native-kernel
        if token != self._pass_token:
            return  # superseded by a later request for an earlier pass
        self._pass_at = None
        now = self._engine._now
        # watermark-based write-drain switch (inlined _update_write_mode)
        if self._draining_writes:
            if len(self.write_queue) <= self._wm_low:
                self._draining_writes = False
        elif len(self.write_queue) >= self._wm_high:
            self._draining_writes = True
        if not (self.read_queue or self.write_queue):
            # nothing queued: _issue_ready and _schedule_wakeup would both
            # no-op — skip their call frames on this common drained pass
            return
        issued_reads = self._issue_ready(now)
        if issued_reads:
            self._notify_space()
        # Always re-arm: queued work may be waiting on a bank recovery or on
        # the data-bus issue gate, neither of which produces its own event.
        self._schedule_wakeup(now)

    def _ready(self, queue: list[MemoryRequest], bus_backlog: int, now: int) -> list[MemoryRequest]:
        """Requests whose bank is free and whose prep covers the bus backlog."""
        kern = self._ckern
        if kern is not None:
            return kern.ready_scan(
                queue, self._bank_busy, self.banks,
                self._uniform_prep, bus_backlog, now,
            )
        busy = self._bank_busy
        uniform_prep = self._uniform_prep
        if uniform_prep is not None:
            # closed page: prep is the same for every request, so the bus
            # gate either blocks the whole queue or none of it
            if uniform_prep < bus_backlog:
                return []
            return [req for req in queue if busy[req.bank_id] <= now]
        banks = self.banks
        ready: list[MemoryRequest] = []
        for req in queue:
            if busy[req.bank_id] <= now and banks[req.bank_id].prep_cycles(req.row_id) >= bus_backlog:
                ready.append(req)
        return ready

    def _issue_ready(self, now: int) -> int:  # repro: hot-kernel
        """Serve ready requests until banks, bus, or queues run out.

        The ready lists are maintained incrementally across issues instead
        of rescanning both queues per pick.  Within one pass ``now`` is
        fixed, banks only become busier (the issued one), and the bus gate
        only tightens, so filtering the previous ready list is exactly
        equivalent to recomputing it from the full queue.
        """
        issued_reads = 0
        banks = self.banks
        uniform_prep = self._uniform_prep
        kern = self._ckern
        draining = self._draining_writes
        bus_backlog = self.bus.free_at - now
        read_queue = self.read_queue
        ready_reads = self._ready(read_queue, bus_backlog, now) if read_queue else []
        ready_writes: list[MemoryRequest] | None = None
        while True:
            if draining or not ready_reads:
                if ready_writes is None:
                    write_queue = self.write_queue
                    ready_writes = (
                        self._ready(write_queue, bus_backlog, now) if write_queue else []
                    )
                pool = ready_writes if ready_writes else ready_reads
            else:
                pool = ready_reads
            if not pool:
                return issued_reads
            req = self.policy.pick(pool, banks, now)
            self._issue(req, now)
            if req.is_read:
                issued_reads += 1
            bus_backlog = self.bus.free_at - now
            bank_id = req.bank_id
            if kern is not None:
                # compiled twin of both filter branches below (including
                # the closed-page all-or-nothing bus gate)
                ready_reads = kern.filter_ready(
                    ready_reads, req, banks, uniform_prep, bus_backlog
                )
                if ready_writes is not None:
                    ready_writes = kern.filter_ready(
                        ready_writes, req, banks, uniform_prep, bus_backlog
                    )
            elif uniform_prep is not None:
                if uniform_prep < bus_backlog:
                    ready_reads = []
                    if ready_writes is not None:
                        ready_writes = []
                else:
                    ready_reads = [
                        r for r in ready_reads
                        if r is not req and r.bank_id != bank_id
                    ]
                    if ready_writes is not None:
                        ready_writes = [
                            r for r in ready_writes
                            if r is not req and r.bank_id != bank_id
                        ]
            else:
                ready_reads = [
                    r for r in ready_reads
                    if r is not req and r.bank_id != bank_id
                    and banks[r.bank_id].prep_cycles(r.row_id) >= bus_backlog
                ]
                if ready_writes is not None:
                    ready_writes = [
                        r for r in ready_writes
                        if r is not req and r.bank_id != bank_id
                        and banks[r.bank_id].prep_cycles(r.row_id) >= bus_backlog
                    ]

    def _issue(self, req: MemoryRequest, now: int) -> None:
        bank = self.banks[req.bank_id]
        # closed page pays the uniform prep; open page probes the bank row
        prep = self._uniform_prep
        if prep is None:
            prep = bank.prep_cycles(req.row_id)
        # inlined DataBus.reserve()
        bus = self.bus
        data_start = now + prep
        if data_start < bus.free_at:
            data_start = bus.free_at
        burst = bus._burst
        data_end = data_start + burst
        bus.free_at = data_end
        bus.busy_cycles += burst
        bus.transfers += 1
        bank.issue(now, req.row_id, data_end)
        self._bank_busy[req.bank_id] = bank.busy_until
        insort(self._busy_times, bank.busy_until)
        req.dispatched_at = now
        req.issued_at = now
        if self._engine.sanitizer is not None:
            self._engine.sanitizer.on_issue(req)
        if self._engine.tracer is not None:
            self._engine.tracer.issued(req)
        self._stats.bus_busy_cycles += burst
        if req.is_memory_write:
            queue = self.write_queue
        else:
            # inlined _update_occupancy() (before the removal below)
            self._occ_integral += len(self.read_queue) * (
                now - self._occ_last_update
            )
            self._occ_last_update = now
            queue = self.read_queue
        # identity-based removal: list.remove() would re-scan with the
        # dataclass __eq__, comparing every field of every queued request
        for index, queued in enumerate(queue):
            if queued is req:
                del queue[index]
                break
        engine = self._engine
        if req.is_read and self._fused is not None:
            fused = self._fused.get(req.core_id)
            if fused is not None:
                # fused chain: bank completion at data_end, core response
                # NoC-return-delay cycles later, one scheduler insertion
                core, return_delay = fused
                engine.post_chain_at(
                    data_end,
                    self._complete_fused,
                    (req,),
                    return_delay,
                    self._respond_fn,
                    (core, req),
                )
                return
        # inlined engine.post_at; data_end is an int > now by construction
        # and within the wheel window (bus backlog is queue-bounded)
        if data_end < engine._horizon:
            engine._wheel[data_end & _WHEEL_MASK].append((self._complete, (req,)))
            engine._wheel_count += 1
            engine._live += 1
        else:
            engine.post_at(data_end, self._complete, (req,))

    def configure_read_fusion(
        self,
        return_delays: list[int],
        cores: list,
        respond: Callable,
    ) -> None:
        """Fuse bank-service -> NoC return -> core response into one chain.

        ``return_delays[c]`` is the fixed tile-to-MC NoC latency for core
        ``c`` and ``cores[c]`` the core object (None for absent cores —
        those reads fall back to the generic ``on_read_complete`` path).
        Cores with a zero return delay also stay unfused: a chain
        continuation must land strictly after the completion bucket.

        Fused and unfused paths write identical ``MemoryRequest`` stage
        timestamps and dispatch in identical order; fusion only halves
        the scheduling cost of the two-hop return.
        """
        self._fused = {
            core_id: (core, delay)
            for core_id, (core, delay) in enumerate(zip(cores, return_delays))
            if core is not None and delay >= 1
        }
        self._respond_fn = respond

    def _retire(self, req: MemoryRequest) -> None:
        """Completion bookkeeping shared by the fused and unfused paths."""
        now = self._engine._now
        req.completed_at = now
        if self._engine.sanitizer is not None:
            self._engine.sanitizer.on_complete(req)
        if self._engine.tracer is not None:
            self._engine.tracer.completed(req)
        self._stats.record_completion(req)
        # inlined _note_retirement()
        self._inflight -= 1
        if self._inflight == 0:
            delta = now - self._active_since
            self.active_cycles += delta
            self._stats.mc_active_cycles += delta

    def _complete(self, req: MemoryRequest) -> None:  # repro: native-kernel
        self._retire(req)
        if req.is_read and self.on_read_complete is not None:
            self.on_read_complete(req)
        self._request_pass(self._engine._now)

    def _complete_fused(self, req: MemoryRequest) -> None:  # repro: native-kernel
        # First hop of a fused read chain: identical to _complete except
        # that the engine schedules the core response itself (the chain
        # continuation replaces the on_read_complete -> post round trip).
        self._retire(req)
        self._request_pass(self._engine._now)

    def _schedule_wakeup(self, now: int) -> None:
        """Re-arm the pass at the next bank-free or bus-gate-open time."""
        if not (self.read_queue or self.write_queue):
            return
        # next bank-free time: prune the expired prefix of the sorted
        # busy-time list and read its head (see the __init__ comment for
        # why stale superseded entries are always in the pruned prefix)
        times = self._busy_times
        if times:
            cut = bisect_right(times, now)
            if cut:
                del times[:cut]
        wake = times[0] if times else _FAR
        bus_gate = self.bus.free_at - self._min_prep
        if now < bus_gate < wake:
            wake = bus_gate
        if wake != _FAR:
            # inlined _request_pass: _run_pass cleared _pass_at, so the
            # coalescing early-out can never take — arm unconditionally
            # (wheel insert inlined as in _request_pass; wake > now here)
            when = wake
            self._pass_at = when
            token = self._pass_token + 1
            self._pass_token = token
            engine = self._engine
            if when < engine._horizon:
                engine._wheel[when & _WHEEL_MASK].append(
                    (self._run_pass, (token,))
                )
                engine._wheel_count += 1
                engine._live += 1
            else:
                engine.post_at(when, self._run_pass, token)

    # ------------------------------------------------------------------
    # pickling (checkpoints, shard clones)
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        # The compiled-kernel binding is an extension module — process
        # local and backend-specific.  Checkpoints stay backend-neutral:
        # drop it here, re-resolve under the restoring process's backend.
        state["_ckern"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._ckern = accel.controller_kernels()

    def _notify_space(self) -> None:
        # Synchronous hint: listeners only set a flag and arm a late-phase
        # drain, so calling them inline keeps the admission *work* out of
        # the scheduling pass while avoiding a queue round-trip whose
        # position would depend on event insertion order.
        for listener in self._space_listeners:
            listener(self.mc_id)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def queued_reads(self) -> int:
        return len(self.read_queue)

    @property
    def queued_writes(self) -> int:
        return len(self.write_queue)

    @property
    def inflight(self) -> int:
        return self._inflight

    @property
    def draining_writes(self) -> bool:
        return self._draining_writes
