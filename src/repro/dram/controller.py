"""Memory controller with a queued front-end and a bank/bus back-end.

The structure follows Section III-C of the paper:

* A **front-end** accepts requests from the SoC network into separate read
  and write queues.  Both queues have finite capacity; when the read queue
  is full the controller exerts backpressure and requests pile up *outside*
  the controller (at the L3), which is exactly the condition under which
  target-only regulation breaks down (Fig. 1b).
* A **back-end** of banks and one shared data bus serves requests.  A
  request leaves the front-end at the moment its bank access begins, so the
  pluggable :class:`~repro.dram.schedulers.SchedulingPolicy` (FR-FCFS,
  FQM-style, or the PABST arbiter) always selects over every queued request
  whose bank is ready — see ``schedulers.py`` for why the selection point
  is unified.
* Reads have priority; writes drain in batches between a high and a low
  watermark (the paper leaves the baseline read/write switch unmodified).

Two timing rules keep the model honest:

* an access issues only when its bank-prep time covers the remaining
  data-bus backlog, so bus slots are never reserved far ahead of service
  (which would freeze the order and silently defeat arbitration);
* every scheduling pass re-arms a wakeup at the next bank-free or
  gate-open time, so queued work never stalls waiting for an unrelated
  event.

The controller also integrates its read-queue occupancy over time, which
the PABST saturation monitor samples at each epoch boundary.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.dram.bank import Bank
from repro.dram.channel import DataBus
from repro.dram.schedulers import FrFcfsPolicy, SchedulingPolicy
from repro.sim.engine import Engine, Event
from repro.sim.records import MemoryRequest

if TYPE_CHECKING:  # pragma: no cover - break the sim<->dram import cycle
    from repro.sim.config import SystemConfig
    from repro.sim.stats import Stats
    from repro.sim.topology import AddressMap

__all__ = ["MemoryController"]


class MemoryController:
    """One DDR channel: front-end queues, banks, data bus, and a scheduler."""

    def __init__(
        self,
        engine: Engine,
        mc_id: int,
        config: "SystemConfig",
        address_map: "AddressMap",
        stats: "Stats",
        policy: SchedulingPolicy | None = None,
    ) -> None:
        self._engine = engine
        self.mc_id = mc_id
        self._config = config
        self._timing = config.dram
        self._map = address_map
        self._stats = stats
        self.policy: SchedulingPolicy = policy if policy is not None else FrFcfsPolicy()
        self.banks = [
            Bank(bank, self._timing, config.page_policy)
            for bank in range(config.banks_per_mc)
        ]
        self.bus = DataBus(self._timing.t_burst)
        self.read_queue: list[MemoryRequest] = []
        self.write_queue: list[MemoryRequest] = []
        self.on_read_complete: Callable[[MemoryRequest], None] | None = None
        self._space_listeners: list[Callable[[int], None]] = []
        self._draining_writes = False

        # scheduling-pass coalescing
        self._pass_event: Event | None = None
        self._pass_at: int | None = None

        # read-queue occupancy integral (for the saturation monitor)
        self._occ_integral = 0
        self._occ_last_update = 0
        self._occ_window_start = 0

        # activity tracking (denominator of memory efficiency, Fig. 12)
        self._inflight = 0
        self._active_since = -1
        self.active_cycles = 0

        # counters
        self.reads_accepted = 0
        self.writes_accepted = 0
        self.rejects = 0

    # ------------------------------------------------------------------
    # front-end
    # ------------------------------------------------------------------
    @property
    def read_queue_capacity(self) -> int:
        return self._config.frontend_read_queue

    def try_enqueue(self, req: MemoryRequest) -> bool:
        """Accept a request into the front-end; False means queue full."""
        now = self._engine.now
        if req.is_memory_write:
            if len(self.write_queue) >= self._config.frontend_write_queue:
                self.rejects += 1
                self._stats.requests_rejected += 1
                return False
            target = self.write_queue
            self.writes_accepted += 1
        else:
            if len(self.read_queue) >= self._config.frontend_read_queue:
                self.rejects += 1
                self._stats.requests_rejected += 1
                return False
            target = self.read_queue
            self._update_occupancy()
            self.reads_accepted += 1

        req.arrived_mc_at = now
        req.mc_id = self.mc_id
        req.bank_id = self._map.bank_of(req.addr)
        req.row_id = self._map.row_of(req.addr)
        target.append(req)
        self._stats.requests_enqueued += 1
        self.policy.on_accept(req, now)
        if self._engine.sanitizer is not None:
            self._engine.sanitizer.on_accept(req)
        self._note_arrival()
        self._request_pass(now)
        return True

    def add_space_listener(self, callback: Callable[[int], None]) -> None:
        """Register a callback invoked (async) when queue space frees up."""
        self._space_listeners.append(callback)

    # ------------------------------------------------------------------
    # saturation-monitor interface
    # ------------------------------------------------------------------
    def sample_read_occupancy(self) -> float:
        """Average read-queue occupancy since the last sample."""
        now = self._engine.now
        self._update_occupancy()
        elapsed = now - self._occ_window_start
        average = self._occ_integral / elapsed if elapsed > 0 else float(
            len(self.read_queue)
        )
        self._occ_integral = 0
        self._occ_window_start = now
        return average

    def _update_occupancy(self) -> None:
        now = self._engine.now
        self._occ_integral += len(self.read_queue) * (now - self._occ_last_update)
        self._occ_last_update = now

    # ------------------------------------------------------------------
    # activity accounting
    # ------------------------------------------------------------------
    def _note_arrival(self) -> None:
        if self._inflight == 0:
            self._active_since = self._engine.now
        self._inflight += 1

    def _note_retirement(self) -> None:
        self._inflight -= 1
        if self._inflight == 0:
            delta = self._engine.now - self._active_since
            self.active_cycles += delta
            self._stats.mc_active_cycles += delta

    def finalize(self) -> None:
        """Close open accounting intervals at the end of a run."""
        self._update_occupancy()
        if self._inflight > 0:
            delta = self._engine.now - self._active_since
            self.active_cycles += delta
            self._stats.mc_active_cycles += delta
            self._active_since = self._engine.now

    # ------------------------------------------------------------------
    # scheduling passes
    # ------------------------------------------------------------------
    def _request_pass(self, when: int) -> None:
        """Coalesce scheduling passes: keep at most one, at the earliest time."""
        if self._pass_at is not None and self._pass_at <= when:
            return
        if self._pass_event is not None:
            self._pass_event.cancel()
        self._pass_at = when
        self._pass_event = self._engine.schedule_at(when, self._run_pass)

    def _run_pass(self) -> None:
        self._pass_event = None
        self._pass_at = None
        now = self._engine.now
        self._update_write_mode()
        issued_reads = self._issue_ready(now)
        if issued_reads:
            self._notify_space()
        # Always re-arm: queued work may be waiting on a bank recovery or on
        # the data-bus issue gate, neither of which produces its own event.
        self._schedule_wakeup(now)

    def _update_write_mode(self) -> None:
        if self._draining_writes:
            if len(self.write_queue) <= self._config.write_low_watermark:
                self._draining_writes = False
        elif len(self.write_queue) >= self._config.write_high_watermark:
            self._draining_writes = True

    def _ready(self, queue: list[MemoryRequest], bus_backlog: int, now: int) -> list[MemoryRequest]:
        """Requests whose bank is free and whose prep covers the bus backlog."""
        ready: list[MemoryRequest] = []
        for req in queue:
            bank = self.banks[req.bank_id]
            if bank.is_free(now) and bank.prep_cycles(req.row_id) >= bus_backlog:
                ready.append(req)
        return ready

    def _issue_ready(self, now: int) -> int:
        """Serve ready requests until banks, bus, or queues run out."""
        issued_reads = 0
        while True:
            bus_backlog = self.bus.free_at - now
            ready_reads = self._ready(self.read_queue, bus_backlog, now)
            if self._draining_writes or not ready_reads:
                ready_writes = self._ready(self.write_queue, bus_backlog, now)
                pool = ready_writes if ready_writes else ready_reads
            else:
                pool = ready_reads
            if not pool:
                return issued_reads
            req = self.policy.pick(pool, self.banks, now)
            self._issue(req, now)
            if req.is_read:
                issued_reads += 1

    def _issue(self, req: MemoryRequest, now: int) -> None:
        bank = self.banks[req.bank_id]
        prep = bank.prep_cycles(req.row_id)
        data_start, data_end = self.bus.reserve(now + prep)
        bank.issue(now, req.row_id, data_end)
        req.dispatched_at = now
        req.issued_at = now
        if self._engine.sanitizer is not None:
            self._engine.sanitizer.on_issue(req)
        self._stats.bus_busy_cycles += self.bus.burst_cycles
        if req.is_memory_write:
            self.write_queue.remove(req)
        else:
            self._update_occupancy()
            self.read_queue.remove(req)
        self._engine.schedule_at(data_end, self._complete, req)

    def _complete(self, req: MemoryRequest) -> None:
        req.completed_at = self._engine.now
        if self._engine.sanitizer is not None:
            self._engine.sanitizer.on_complete(req)
        self._stats.record_completion(req)
        self._note_retirement()
        if req.is_read and self.on_read_complete is not None:
            self.on_read_complete(req)
        self._request_pass(self._engine.now)

    def _schedule_wakeup(self, now: int) -> None:
        """Re-arm the pass at the next bank-free or bus-gate-open time."""
        if not (self.read_queue or self.write_queue):
            return
        wake_times = [
            bank.busy_until for bank in self.banks if not bank.is_free(now)
        ]
        min_prep = self._timing.access_prep(row_hit=True)
        bus_gate = self.bus.free_at - min_prep
        if bus_gate > now:
            wake_times.append(bus_gate)
        if wake_times:
            self._request_pass(max(now + 1, min(wake_times)))

    def _notify_space(self) -> None:
        for listener in self._space_listeners:
            self._engine.schedule(0, listener, self.mc_id)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def queued_reads(self) -> int:
        return len(self.read_queue)

    @property
    def queued_writes(self) -> int:
        return len(self.write_queue)

    @property
    def inflight(self) -> int:
        return self._inflight

    @property
    def draining_writes(self) -> bool:
        return self._draining_writes
