"""DRAM bank state.

A bank serves one access at a time; under the closed-page policy (the
paper's default) every access pays activate + CAS and a precharge on the way
out, while the open-page option keeps the row latched for row-hit detection
by FR-FCFS and the PABST back-end arbiter.
"""

from __future__ import annotations

from repro.dram.timing import DramTiming, PagePolicy

__all__ = ["Bank"]


class Bank:
    """Timing state for one DRAM bank.

    The derived timing values (row-hit/row-miss prep, post-burst recovery)
    are flattened to plain ints at construction so the scheduler's ready
    scan — which probes every queued request against its bank on every
    pass — never re-derives them through :class:`DramTiming` method calls.
    """

    __slots__ = (
        "bank_id",
        "_timing",
        "_page_policy",
        "open_page",
        "prep_hit",
        "prep_miss",
        "_recovery",
        "busy_until",
        "open_row",
        "accesses",
        "row_hits",
    )

    def __init__(self, bank_id: int, timing: DramTiming, page_policy: str) -> None:
        if page_policy not in PagePolicy.ALL:
            raise ValueError(f"unknown page policy {page_policy!r}")
        self.bank_id = bank_id
        self._timing = timing
        self._page_policy = page_policy
        self.open_page = page_policy == PagePolicy.OPEN
        self.prep_hit = timing.access_prep(row_hit=True)
        self.prep_miss = timing.access_prep(row_hit=False)
        self._recovery = timing.bank_recovery(page_policy)
        self.busy_until = 0
        self.open_row: int | None = None
        self.accesses = 0
        self.row_hits = 0

    def is_free(self, now: int) -> bool:
        return now >= self.busy_until

    def is_row_hit(self, row: int) -> bool:
        """True when the access would hit the currently open row."""
        return self.open_page and self.open_row == row

    def prep_cycles(self, row: int) -> int:
        """Cycles from issue until the data burst can begin."""
        if self.open_page and self.open_row == row:
            return self.prep_hit
        return self.prep_miss

    def issue(self, now: int, row: int, data_end: int) -> None:
        """Commit an access whose data burst finishes at ``data_end``."""
        if now < self.busy_until:
            raise ValueError(
                f"bank {self.bank_id} busy until {self.busy_until}, now {now}"
            )
        self.accesses += 1
        if self.open_page and self.open_row == row:
            self.row_hits += 1
        self.busy_until = data_end + self._recovery
        self.open_row = row if self.open_page else None
