"""DRAM bank state.

A bank serves one access at a time; under the closed-page policy (the
paper's default) every access pays activate + CAS and a precharge on the way
out, while the open-page option keeps the row latched for row-hit detection
by FR-FCFS and the PABST back-end arbiter.
"""

from __future__ import annotations

from repro.dram.timing import DramTiming, PagePolicy

__all__ = ["Bank"]


class Bank:
    """Timing state for one DRAM bank."""

    def __init__(self, bank_id: int, timing: DramTiming, page_policy: str) -> None:
        if page_policy not in PagePolicy.ALL:
            raise ValueError(f"unknown page policy {page_policy!r}")
        self.bank_id = bank_id
        self._timing = timing
        self._page_policy = page_policy
        self.busy_until = 0
        self.open_row: int | None = None
        self.accesses = 0
        self.row_hits = 0

    def is_free(self, now: int) -> bool:
        return now >= self.busy_until

    def is_row_hit(self, row: int) -> bool:
        """True when the access would hit the currently open row."""
        return self._page_policy == PagePolicy.OPEN and self.open_row == row

    def prep_cycles(self, row: int) -> int:
        """Cycles from issue until the data burst can begin."""
        return self._timing.access_prep(self.is_row_hit(row))

    def issue(self, now: int, row: int, data_end: int) -> None:
        """Commit an access whose data burst finishes at ``data_end``."""
        if not self.is_free(now):
            raise ValueError(
                f"bank {self.bank_id} busy until {self.busy_until}, now {now}"
            )
        self.accesses += 1
        if self.is_row_hit(row):
            self.row_hits += 1
        self.busy_until = data_end + self._timing.bank_recovery(self._page_policy)
        self.open_row = row if self._page_policy == PagePolicy.OPEN else None
