"""DDR model: timing, banks, data bus, controller, and schedulers."""

from repro.dram.bank import Bank
from repro.dram.channel import DataBus
from repro.dram.controller import MemoryController
from repro.dram.schedulers import FcfsPolicy, FrFcfsPolicy, SchedulingPolicy
from repro.dram.timing import DramTiming, PagePolicy

__all__ = [
    "Bank", "DataBus", "DramTiming", "FcfsPolicy", "FrFcfsPolicy",
    "MemoryController", "PagePolicy", "SchedulingPolicy",
]
