"""Memory-controller scheduling policies.

The controller keeps requests in its front-end read/write queues until the
moment they can actually begin a bank access (bank free, data-bus slot
within reach).  A :class:`SchedulingPolicy` chooses, among those *ready*
requests, which one the back-end serves next; ``on_accept`` lets a policy
attach state (e.g. a virtual deadline) when a request enters the front-end.

Scheduling therefore has a single selection point spanning the whole
front-end queue.  This collapses the paper's two EDF stages (front-end pick
plus back-end bank pick) into one: with short back-end queues, staging a
request at a bank *before* the bank is free lets an earlier-staged,
lower-priority request block a later, higher-priority one to the same bank
(priority inversion), which contradicts the arbiter both PABST and FQM
describe.  DESIGN.md §3 records this reconstruction.

The baseline policy is First-Ready FCFS (FR-FCFS [26]): row hits first,
then oldest.  The PABST priority arbiter implements the same interface with
earliest-virtual-deadline order.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

from repro.dram.bank import Bank
from repro.sim.records import MemoryRequest

__all__ = ["FcfsPolicy", "FrFcfsPolicy", "SchedulingPolicy", "oldest_first"]


def oldest_first(candidates: Sequence[MemoryRequest]) -> MemoryRequest:
    """Arrival order, with request id as a deterministic tiebreaker.

    Manual min loop: ``min(..., key=...)`` allocates a key tuple per
    candidate and this runs once per issued request.
    """
    best = candidates[0]
    best_arrived = best.arrived_mc_at
    best_id = best.req_id
    for req in candidates:
        arrived = req.arrived_mc_at
        if arrived > best_arrived:
            continue
        if arrived == best_arrived and req.req_id >= best_id:
            continue
        best = req
        best_arrived = arrived
        best_id = req.req_id
    return best


class SchedulingPolicy(ABC):
    """Request-selection policy used by :class:`~repro.dram.controller.MemoryController`."""

    def on_accept(self, req: MemoryRequest, now: int) -> None:
        """Hook: a request entered the front-end queue."""

    @abstractmethod
    def pick(
        self, candidates: Sequence[MemoryRequest], banks: Sequence[Bank], now: int
    ) -> MemoryRequest:
        """Choose which ready request the back-end serves next.

        ``candidates`` is non-empty and homogeneous: all reads or all
        writes (the controller selects the pool by read/write mode first).
        """


class FcfsPolicy(SchedulingPolicy):
    """Strict arrival order."""

    def pick(
        self, candidates: Sequence[MemoryRequest], banks: Sequence[Bank], now: int
    ) -> MemoryRequest:
        return oldest_first(candidates)


class FrFcfsPolicy(SchedulingPolicy):
    """First-Ready FCFS: row hits beat older row misses [26].

    Under the closed-page policy there are no row hits and this degenerates
    to FCFS, as the paper notes.
    """

    def pick(
        self, candidates: Sequence[MemoryRequest], banks: Sequence[Bank], now: int
    ) -> MemoryRequest:
        if len(candidates) == 1:
            return candidates[0]
        if banks[0].open_page:
            row_hits = [
                req for req in candidates if banks[req.bank_id].is_row_hit(req.row_id)
            ]
            if row_hits:
                return oldest_first(row_hits)
        return oldest_first(candidates)
