"""DDR timing parameters.

All values are expressed in CPU cycles so the rest of the simulator never
converts clock domains.  The presets approximate DDR4-2400 seen from a 2 GHz
CPU; :meth:`DramTiming.frequency_scaled` supports the paper's Fig. 11
baseline, which emulates a static bandwidth partition by running DRAM at a
quarter of its frequency.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["DramTiming", "PagePolicy"]


class PagePolicy:
    """Row-buffer management policies supported by the bank model."""

    CLOSED = "closed"
    OPEN = "open"

    ALL = (CLOSED, OPEN)


@dataclass(frozen=True, slots=True)
class DramTiming:
    """Bank and bus timing in CPU cycles.

    Attributes
    ----------
    t_rcd: activate-to-column-command delay.
    t_cl: column-command-to-data delay (CAS latency).
    t_rp: precharge time.
    t_burst: cycles the data bus is occupied per cache-line transfer.
    """

    t_rcd: int = 30
    t_cl: int = 30
    t_rp: int = 30
    t_burst: int = 8

    def __post_init__(self) -> None:
        for name in ("t_rcd", "t_cl", "t_rp", "t_burst"):
            value = getattr(self, name)
            if value <= 0:
                raise ValueError(f"{name} must be positive, got {value}")

    # ------------------------------------------------------------------
    # derived values
    # ------------------------------------------------------------------
    def access_prep(self, row_hit: bool) -> int:
        """Cycles from bank issue until the data burst may start."""
        if row_hit:
            return self.t_cl
        return self.t_rcd + self.t_cl

    def bank_recovery(self, page_policy: str) -> int:
        """Cycles the bank stays busy after the data burst completes."""
        if page_policy == PagePolicy.CLOSED:
            return self.t_rp
        return 0

    @property
    def closed_page_service(self) -> int:
        """Full bank occupancy of one closed-page access."""
        return self.t_rcd + self.t_cl + self.t_burst + self.t_rp

    def peak_bandwidth(self, line_bytes: int) -> float:
        """Bytes per cycle one channel can sustain at 100% bus utilization."""
        return line_bytes / self.t_burst

    # ------------------------------------------------------------------
    # presets
    # ------------------------------------------------------------------
    @classmethod
    def ddr4_2400(cls) -> "DramTiming":
        """DDR4-2400-like timings as seen from a 2 GHz CPU clock."""
        return cls(t_rcd=30, t_cl=30, t_rp=30, t_burst=8)

    def frequency_scaled(self, divisor: int) -> "DramTiming":
        """Return timings for DRAM running ``divisor``x slower.

        Used by the Fig. 11 baseline, which approximates a static 1/divisor
        bandwidth allocation by scaling DDR frequency down.
        """
        if divisor < 1:
            raise ValueError(f"divisor must be >= 1, got {divisor}")
        return replace(
            self,
            t_rcd=self.t_rcd * divisor,
            t_cl=self.t_cl * divisor,
            t_rp=self.t_rp * divisor,
            t_burst=self.t_burst * divisor,
        )
