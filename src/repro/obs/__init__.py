"""Observability layer: counter registry, request tracer, metric streams.

Three cooperating pieces, all opt-in and all near-zero cost when unused
(DESIGN.md §9 states the overhead contract):

* :mod:`repro.obs.registry` — named monotonic counters and gauges that
  components register on the :class:`~repro.sim.system.System`'s
  ``Registry``.  Sampling is pull-based (attribute reads at snapshot
  time), so registration adds nothing to simulation hot paths.
* :mod:`repro.obs.trace` — a ring-buffered recorder of
  :class:`~repro.sim.records.MemoryRequest` lifecycle transitions that
  exports Chrome trace-event JSON (viewable in Perfetto).  Attached as
  ``engine.tracer``; when absent, every hook site is a single
  ``is None`` test.
* :mod:`repro.obs.streams` — pluggable sinks that
  :meth:`repro.sim.stats.Stats.close_epoch` publishes per-class
  bandwidth/saturation/multiplier samples to (JSONL file, in-memory).

:mod:`repro.obs.warnings` additionally collects the runner's swallowed
I/O errors (cache/checkpoint store corruption) into process-global
counters surfaced by ``repro cache --stats``.
"""

from repro.obs.registry import NULL_COUNTER, ObsCounter, Registry
from repro.obs.streams import JsonlSink, MemorySink, epoch_record
from repro.obs.trace import (
    RequestTracer,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.warnings import obs_warn, reset_warning_counters, warning_counts

__all__ = [
    "JsonlSink",
    "MemorySink",
    "NULL_COUNTER",
    "ObsCounter",
    "Registry",
    "RequestTracer",
    "epoch_record",
    "obs_warn",
    "reset_warning_counters",
    "validate_chrome_trace",
    "warning_counts",
    "write_chrome_trace",
]
