"""Process-global warning counters for swallowed-but-notable errors.

The runner's cache and checkpoint stores tolerate filesystem failures
(a read-only store, a concurrently-evicted entry) by design — a cache
must not take the simulation down.  But a *silent* ``except OSError:
pass`` hides store corruption until someone wonders why nothing ever
hits.  Those sites now call :func:`obs_warn`, which both logs through
the ``repro.obs`` logger and bumps a named counter that ``repro cache
--stats`` reports.

The counters are process-global (not per-``System``) because the
failures they count happen in the runner layer, outside any simulated
system; tests isolate themselves with :func:`reset_warning_counters`.
"""

from __future__ import annotations

import logging

__all__ = ["obs_warn", "reset_warning_counters", "warning_counts"]

_log = logging.getLogger("repro.obs")

_counters: dict[str, int] = {}


def obs_warn(counter: str, message: str, *args: object) -> None:
    """Count one occurrence of ``counter`` and log ``message % args``."""
    _counters[counter] = _counters.get(counter, 0) + 1
    _log.warning(message, *args)


def warning_counts() -> dict[str, int]:
    """Snapshot of every warning counter hit so far (name -> count)."""
    return dict(_counters)


def reset_warning_counters() -> None:
    """Zero all counters (test isolation)."""
    _counters.clear()
