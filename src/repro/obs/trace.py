"""Request tracing: ring-buffered lifecycle recorder + Chrome trace export.

A :class:`RequestTracer` attached to an engine (``engine.tracer = ...``)
records one fixed-shape tuple per :class:`~repro.sim.records.MemoryRequest`
lifecycle transition — created, released, arrived at a controller,
issued to a bank, completed.  The hook sites sit next to the sanitizer
hooks in ``sim/system.py`` and ``dram/controller.py``; when no tracer is
attached each site costs one attribute load and an ``is None`` test.
Fused read-return chains (``Engine.post_chain_at``) are covered for
free: the controller stamps ``completed_at`` at bank-service time — the
first hop of the chain — and the tracer records at the stamp sites, so
fused and unfused requests produce identical transition streams.

The buffer is a bounded ring (``collections.deque(maxlen=...)``): a
trace of an arbitrarily long run keeps the *last* ``capacity``
transitions and :attr:`RequestTracer.dropped` counts what fell off.

Export is Chrome trace-event JSON (the ``{"traceEvents": [...]}`` form),
loadable in Perfetto or ``chrome://tracing``.  Tracks:

* **pid 1 — QoS classes** (one thread lane per ``qos_id``): ``pacer``
  spans (created → released), ``noc`` spans (released → arrived), and
  ``l3`` spans (released → completed) for shared-cache hits;
* **pid 2 — memory controllers** (one lane per ``mc_id``): ``queue``
  spans (arrived → issued) and ``service`` spans (issued → completed).

Timestamps are engine cycles emitted directly as the trace's
microsecond field — 1 cycle renders as 1 µs, which only rescales the
time axis.  :func:`validate_chrome_trace` checks a document against the
subset of the trace-event schema the exporter emits (and CI enforces on
the ``repro trace fig05 --quick`` artifact).
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path
from typing import TYPE_CHECKING, Any, Mapping

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.records import MemoryRequest

__all__ = [
    "RequestTracer",
    "TRACE_STAGES",
    "validate_chrome_trace",
    "write_chrome_trace",
]

#: Transition codes, in lifecycle order (indices into TRACE_STAGES).
_CREATED, _RELEASED, _ARRIVED, _ISSUED, _COMPLETED = range(5)

#: Stage names matching the transition codes above.
TRACE_STAGES = ("created", "released", "arrived_mc", "issued", "completed")

#: Process ids of the two track groups in the exported trace.
_QOS_PID = 1
_MC_PID = 2


class RequestTracer:
    """Bounded ring buffer of request lifecycle transitions.

    Each transition is one tuple ``(stage, req_id, cycle, qos_id,
    core_id, mc_id, is_read, l3_hit)``; the recording methods read the
    timestamp the caller just stamped on the request, so they take no
    clock argument and cannot disagree with the request's own record.
    """

    def __init__(self, capacity: int = 65536) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._buffer: deque[tuple] = deque(maxlen=capacity)
        self.recorded = 0

    # ------------------------------------------------------------------
    # recording hooks (one per lifecycle stage)
    # ------------------------------------------------------------------
    def created(self, req: "MemoryRequest") -> None:
        self.recorded += 1
        self._buffer.append(
            (_CREATED, req.req_id, req.created_at, req.qos_id,
             req.core_id, req.mc_id, req.is_read, req.l3_hit)
        )

    def released(self, req: "MemoryRequest") -> None:
        self.recorded += 1
        self._buffer.append(
            (_RELEASED, req.req_id, req.released_at, req.qos_id,
             req.core_id, req.mc_id, req.is_read, req.l3_hit)
        )

    def arrived(self, req: "MemoryRequest") -> None:
        self.recorded += 1
        self._buffer.append(
            (_ARRIVED, req.req_id, req.arrived_mc_at, req.qos_id,
             req.core_id, req.mc_id, req.is_read, req.l3_hit)
        )

    def issued(self, req: "MemoryRequest") -> None:
        self.recorded += 1
        self._buffer.append(
            (_ISSUED, req.req_id, req.issued_at, req.qos_id,
             req.core_id, req.mc_id, req.is_read, req.l3_hit)
        )

    def completed(self, req: "MemoryRequest") -> None:
        self.recorded += 1
        self._buffer.append(
            (_COMPLETED, req.req_id, req.completed_at, req.qos_id,
             req.core_id, req.mc_id, req.is_read, req.l3_hit)
        )

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._buffer)

    @property
    def dropped(self) -> int:
        """Transitions evicted by the ring (recorded but no longer held)."""
        return self.recorded - len(self._buffer)

    def transitions(self) -> list[tuple]:
        """The buffered transitions, oldest first."""
        return list(self._buffer)

    def clear(self) -> None:
        self._buffer.clear()
        self.recorded = 0

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def to_chrome_trace(self) -> dict[str, Any]:
        """Render the buffer as a Chrome trace-event JSON document.

        Spans are emitted for consecutive stage pairs both present in
        the buffer; a request whose early transitions were evicted by
        the ring contributes only the spans it still has both ends of.
        """
        stamps: dict[int, dict[int, tuple]] = {}
        for transition in self._buffer:
            stamps.setdefault(transition[1], {})[transition[0]] = transition
        events: list[dict[str, Any]] = []
        qos_lanes: set[int] = set()
        mc_lanes: set[int] = set()

        def span(name: str, pid: int, tid: int, start: int, end: int,
                 req_id: int, core_id: int) -> None:
            events.append(
                {
                    "name": name,
                    "cat": "request",
                    "ph": "X",
                    "ts": start,
                    "dur": end - start,
                    "pid": pid,
                    "tid": tid,
                    "args": {"req": req_id, "core": core_id},
                }
            )

        for req_id in sorted(stamps):
            stages = stamps[req_id]
            any_rec = next(iter(stages.values()))
            qos_id, core_id = any_rec[3], any_rec[4]
            l3_hit = any(rec[7] for rec in stages.values())
            created = stages.get(_CREATED)
            released = stages.get(_RELEASED)
            arrived = stages.get(_ARRIVED)
            issued = stages.get(_ISSUED)
            completed = stages.get(_COMPLETED)
            if created and released:
                qos_lanes.add(qos_id)
                span("pacer", _QOS_PID, qos_id,
                     created[2], released[2], req_id, core_id)
            if l3_hit:
                if released and completed:
                    qos_lanes.add(qos_id)
                    span("l3", _QOS_PID, qos_id,
                         released[2], completed[2], req_id, core_id)
            elif released and arrived:
                qos_lanes.add(qos_id)
                span("noc", _QOS_PID, qos_id,
                     released[2], arrived[2], req_id, core_id)
            if arrived and issued:
                mc_lanes.add(arrived[5])
                span("queue", _MC_PID, arrived[5],
                     arrived[2], issued[2], req_id, core_id)
            if issued and completed:
                mc_lanes.add(issued[5])
                span("service", _MC_PID, issued[5],
                     issued[2], completed[2], req_id, core_id)

        metadata: list[dict[str, Any]] = []
        for pid, label in ((_QOS_PID, "QoS classes"),
                           (_MC_PID, "memory controllers")):
            metadata.append(
                {"name": "process_name", "ph": "M", "pid": pid, "tid": 0,
                 "args": {"name": label}}
            )
        for qos_id in sorted(qos_lanes):
            metadata.append(
                {"name": "thread_name", "ph": "M", "pid": _QOS_PID,
                 "tid": qos_id, "args": {"name": f"class {qos_id}"}}
            )
        for mc_id in sorted(mc_lanes):
            metadata.append(
                {"name": "thread_name", "ph": "M", "pid": _MC_PID,
                 "tid": mc_id, "args": {"name": f"mc {mc_id}"}}
            )
        return {
            "traceEvents": metadata + events,
            "displayTimeUnit": "ns",
            "otherData": {
                "source": "repro.obs.trace",
                "time_unit": "1 trace us = 1 simulated cycle",
                "transitions_recorded": self.recorded,
                "transitions_dropped": self.dropped,
            },
        }


# ----------------------------------------------------------------------
# schema validation + file output
# ----------------------------------------------------------------------
_KNOWN_PHASES = frozenset("XBEIiMNODPbensvRSTFC(),")


def validate_chrome_trace(document: Mapping[str, Any]) -> int:
    """Validate ``document`` against the Chrome trace-event JSON shape.

    Enforces the object form (``traceEvents`` array) plus the
    per-event field requirements for the phases this package emits:
    complete events (``"X"``: name/ts/dur/pid/tid, integer timing,
    non-negative duration) and metadata events (``"M"``: a recognized
    name and an ``args.name`` payload).  Other phase letters are
    accepted structurally so hand-edited traces still validate.

    Returns the number of events checked; raises ``ValueError`` with
    the offending event index on the first violation.
    """
    if not isinstance(document, Mapping):
        raise ValueError("trace document must be a JSON object")
    events = document.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("trace document needs a 'traceEvents' array")
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            raise ValueError(f"{where}: events must be JSON objects")
        phase = event.get("ph")
        if not isinstance(phase, str) or phase not in _KNOWN_PHASES:
            raise ValueError(f"{where}: unknown phase {phase!r}")
        if phase == "X":
            for key in ("name", "ts", "dur", "pid", "tid"):
                if key not in event:
                    raise ValueError(f"{where}: complete event missing {key!r}")
            if not isinstance(event["name"], str):
                raise ValueError(f"{where}: event name must be a string")
            for key in ("ts", "dur", "pid", "tid"):
                value = event[key]
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    raise ValueError(f"{where}: {key!r} must be a number")
            if event["dur"] < 0:
                raise ValueError(f"{where}: negative duration {event['dur']}")
            if event["ts"] < 0:
                raise ValueError(f"{where}: negative timestamp {event['ts']}")
        elif phase == "M":
            name = event.get("name")
            if name not in ("process_name", "process_labels",
                            "process_sort_index", "thread_name",
                            "thread_sort_index"):
                raise ValueError(f"{where}: unknown metadata event {name!r}")
            args = event.get("args")
            if not isinstance(args, dict) or not args:
                raise ValueError(f"{where}: metadata event needs args")
    return len(events)


def write_chrome_trace(path: Path | str, document: Mapping[str, Any]) -> Path:
    """Validate and write a trace document; returns the path written."""
    validate_chrome_trace(document)
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(document, handle, separators=(",", ":"), sort_keys=True)
        handle.write("\n")
    return path
