"""Counter/gauge registry hung off :class:`~repro.sim.system.System`.

Components do not push samples into the registry; they register a
*provider* — an ``(object, attribute)`` pair — once at build time, and
the registry reads the attribute when someone asks for a snapshot.
This keeps the contract in DESIGN.md §9: the simulation hot paths are
byte-identical whether or not anyone ever samples, because the counters
are the plain instance attributes the components maintain anyway.

Providers are deliberately *not* callables: the registry is part of the
pickled :class:`~repro.sim.system.System` graph (checkpoints snapshot
and restore it, so warm-started runs resume their counter streams
seamlessly), and ``(obj, attr)`` pairs pickle where lambdas cannot.

For code that has no natural attribute home (the runner's warning
counters), :meth:`Registry.counter` mints an owned :class:`ObsCounter`;
a disabled registry hands back the shared no-op :data:`NULL_COUNTER`
so call sites never branch.
"""

from __future__ import annotations

from typing import Any, Iterator

__all__ = ["NULL_COUNTER", "ObsCounter", "Registry"]


class ObsCounter:
    """A registry-owned monotonic counter (``value`` only ever grows)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def add(self, amount: int = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ObsCounter({self.name}={self.value})"


class _NullCounter:
    """Shared no-op counter bound by disabled registries."""

    __slots__ = ()

    name = "<null>"
    value = 0

    def add(self, amount: int = 1) -> None:
        pass


NULL_COUNTER = _NullCounter()


class Registry:
    """Named counters and gauges over live component state.

    * **Counters** are monotonic (requests accepted, tokens stalled,
      deadline inversions) — suitable for rate computation between two
      snapshots.
    * **Gauges** are instantaneous levels (queue depth, outstanding
      MSHRs, the governor's multiplier).

    Names are dotted paths (``mc0.queue_depth``, ``pacer.c3.released``)
    and must be unique within one registry.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        # name -> (obj, attr) provider; insertion order is report order
        self._counters: dict[str, tuple[Any, str]] = {}
        self._gauges: dict[str, tuple[Any, str]] = {}
        self._owned: dict[str, ObsCounter] = {}

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def _register(
        self, table: dict[str, tuple[Any, str]], name: str, obj: Any, attr: str
    ) -> None:
        if name in self._counters or name in self._gauges:
            raise ValueError(f"metric {name!r} is already registered")
        if not hasattr(obj, attr):
            raise AttributeError(
                f"metric {name!r}: {type(obj).__name__} has no attribute {attr!r}"
            )
        table[name] = (obj, attr)

    def register_counter(self, name: str, obj: Any, attr: str) -> None:
        """Expose ``getattr(obj, attr)`` as the monotonic counter ``name``."""
        self._register(self._counters, name, obj, attr)

    def register_gauge(self, name: str, obj: Any, attr: str) -> None:
        """Expose ``getattr(obj, attr)`` as the gauge ``name``."""
        self._register(self._gauges, name, obj, attr)

    def counter(self, name: str) -> ObsCounter | _NullCounter:
        """An owned, mutable counter (idempotent per name).

        Disabled registries return the shared :data:`NULL_COUNTER`, so
        hot call sites stay unconditional ``counter.add()`` calls.
        """
        if not self.enabled:
            return NULL_COUNTER
        owned = self._owned.get(name)
        if owned is None:
            owned = ObsCounter(name)
            self._register(self._counters, name, owned, "value")
            self._owned[name] = owned
        return owned

    # ------------------------------------------------------------------
    # sampling
    # ------------------------------------------------------------------
    @staticmethod
    def _sample(table: dict[str, tuple[Any, str]]) -> dict[str, int | float]:
        return {name: getattr(obj, attr) for name, (obj, attr) in table.items()}

    def counters(self) -> dict[str, int | float]:
        """Current value of every registered counter."""
        return self._sample(self._counters)

    def gauges(self) -> dict[str, int | float]:
        """Current value of every registered gauge."""
        return self._sample(self._gauges)

    def snapshot(self) -> dict[str, dict[str, int | float]]:
        """One JSON-able sample of everything registered."""
        return {"counters": self.counters(), "gauges": self.gauges()}

    def names(self) -> Iterator[str]:
        yield from self._counters
        yield from self._gauges

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges)

    def __contains__(self, name: str) -> bool:
        return name in self._counters or name in self._gauges
