"""Epoch metric streams: pluggable sinks fed by ``Stats.close_epoch``.

Every epoch boundary, :meth:`repro.sim.stats.Stats.close_epoch` builds
one :func:`epoch_record` — per-class bytes and bandwidth, saturation,
the governor multiplier — and hands it to each attached sink.  The fig
modules and external consumers read the stream instead of scraping the
``Stats.epochs`` list after the fact.

Two sinks ship here:

* :class:`MemorySink` — keeps the records in a list; the test/inspect
  sink.
* :class:`JsonlSink` — appends one JSON object per line to a file.
  The file handle opens lazily on first publish and is dropped on
  pickling, so a checkpointed :class:`~repro.sim.system.System` whose
  stats carry a JSONL sink restores cleanly and keeps appending to the
  same path — warm-started runs produce one seamless stream.

Records use ``None`` (JSON ``null``) where the simulator uses the
``-1`` sentinel for "no governor multiplier", so downstream tooling
never has to know about in-band sentinels.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.stats import EpochSample

__all__ = ["JsonlSink", "MemorySink", "epoch_record"]


def epoch_record(sample: "EpochSample") -> dict[str, Any]:
    """One JSON-able record for an epoch boundary.

    Bandwidth is bytes per cycle; a zero-length epoch (the run ended
    exactly on an epoch boundary) reports zero bandwidth rather than
    dividing by zero.  ``multiplier`` maps the simulator's ``-1``
    "no governor" sentinel to ``None``.
    """
    cycles = sample.cycles
    if cycles > 0:
        bandwidth = {
            qos_id: bytes_moved / cycles
            for qos_id, bytes_moved in sample.bytes_by_class.items()
        }
    else:
        bandwidth = {qos_id: 0.0 for qos_id in sample.bytes_by_class}
    return {
        "epoch": sample.epoch,
        "start_cycle": sample.start_cycle,
        "end_cycle": sample.end_cycle,
        "cycles": cycles,
        "saturated": sample.saturated,
        "multiplier": None if sample.multiplier < 0 else sample.multiplier,
        "bytes_by_class": dict(sample.bytes_by_class),
        "bandwidth_by_class": bandwidth,
    }


class MemorySink:
    """In-memory sink; records accumulate on :attr:`samples`."""

    def __init__(self) -> None:
        self.samples: list[dict[str, Any]] = []

    def publish(self, record: dict[str, Any]) -> None:
        self.samples.append(record)

    def close(self) -> None:
        pass

    def __len__(self) -> int:
        return len(self.samples)


class JsonlSink:
    """Appends one JSON line per epoch record to ``path``.

    Safe to pickle mid-stream: ``__getstate__`` drops the open handle
    and the next publish after restore reopens the same path in append
    mode, continuing the stream where the checkpoint left it.
    """

    def __init__(self, path: Path | str) -> None:
        self.path = Path(path)
        self.published = 0
        self._handle: IO[str] | None = None

    def publish(self, record: dict[str, Any]) -> None:
        if self._handle is None:
            self._handle = self.path.open("a", encoding="utf-8")
        json.dump(record, self._handle, separators=(",", ":"), sort_keys=True)
        self._handle.write("\n")
        self._handle.flush()
        self.published += 1

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __getstate__(self) -> dict[str, Any]:
        state = self.__dict__.copy()
        state["_handle"] = None
        return state

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
