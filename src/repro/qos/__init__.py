"""QoS framework: classes, shares/strides, and resource monitors."""

from repro.qos.classes import QoSClass, QoSRegistry
from repro.qos.monitor import BandwidthMonitor, OccupancyMonitor
from repro.qos.policy import BandwidthTargetPolicy
from repro.qos.shares import (
    DEFAULT_STRIDE_SCALE,
    proportional_share,
    proportional_shares,
    stride_for_weight,
    strides_for_weights,
)

__all__ = [
    "BandwidthMonitor", "BandwidthTargetPolicy", "DEFAULT_STRIDE_SCALE", "OccupancyMonitor",
    "QoSClass", "QoSRegistry", "proportional_share", "proportional_shares",
    "stride_for_weight", "strides_for_weights",
]
