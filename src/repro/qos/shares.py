"""Proportional shares and strides (paper Section II-C).

Software expresses allocations as *weights*; the PABST hardware consumes the
inverse, a *stride*, because every governor update then becomes a multiply by
a per-class constant (Eq. 2).  ``stride = round(scale / weight)`` with a
common fixed-point ``scale``; the relative error introduced by rounding is
bounded and checked by tests.
"""

from __future__ import annotations

from typing import Mapping

__all__ = [
    "DEFAULT_STRIDE_SCALE",
    "proportional_share",
    "proportional_shares",
    "stride_for_weight",
    "strides_for_weights",
]

DEFAULT_STRIDE_SCALE = 1 << 14


def proportional_share(weight: float, all_weights: Mapping[int, float] | list[float]) -> float:
    """Eq. 1: the fraction of the resource a weight entitles its owner to."""
    if weight <= 0:
        raise ValueError(f"weight must be positive, got {weight}")
    values = list(all_weights.values()) if isinstance(all_weights, Mapping) else list(all_weights)
    total = float(sum(values))
    if total <= 0:
        raise ValueError("total weight must be positive")
    return weight / total


def proportional_shares(weights: Mapping[int, float]) -> dict[int, float]:
    """Eq. 1 for every consumer: shares sum to 1."""
    total = float(sum(weights.values()))
    if total <= 0:
        raise ValueError("total weight must be positive")
    for key, weight in weights.items():
        if weight <= 0:
            raise ValueError(f"weight for {key!r} must be positive, got {weight}")
    return {key: weight / total for key, weight in weights.items()}


def stride_for_weight(weight: float, scale: int = DEFAULT_STRIDE_SCALE) -> int:
    """Eq. 2: stride is inversely proportional to weight.

    The result is a positive integer so virtual clocks and pacer periods can
    use exact integer arithmetic, as the paper's hardware does.
    """
    if weight <= 0:
        raise ValueError(f"weight must be positive, got {weight}")
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    return max(1, round(scale / weight))


def strides_for_weights(
    weights: Mapping[int, float], scale: int = DEFAULT_STRIDE_SCALE
) -> dict[int, int]:
    """Strides for a full weight table, sharing one fixed-point scale."""
    return {key: stride_for_weight(weight, scale) for key, weight in weights.items()}
