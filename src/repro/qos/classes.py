"""QoS classes and the QoSID registry (paper Section II-B).

A QoS class groups threads (here: cores) that share one resource allocation.
The registry stands in for the per-CPU QoSID registers plus the broadcast
mechanism the paper assumes for tracking active CPU counts per class
(Section V-B): assigning a core to a class immediately updates ``threads_c``
seen by every governor.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.qos.shares import DEFAULT_STRIDE_SCALE, stride_for_weight

__all__ = ["QoSClass", "QoSRegistry"]


@dataclass(slots=True)
class QoSClass:
    """One class of service.

    ``weight`` is the software-facing proportional share; ``stride`` is the
    hardware-facing inverse used by the governor and the arbiter.  ``l3_ways``
    optionally carves an exclusive L3 partition for the class (the paper
    isolates cache effects this way in every experiment).
    """

    qos_id: int
    name: str
    weight: float
    stride: int = field(default=0)
    l3_ways: int | None = None

    def __post_init__(self) -> None:
        if self.qos_id < 0:
            raise ValueError(f"qos_id must be non-negative, got {self.qos_id}")
        if self.weight <= 0:
            raise ValueError(f"weight must be positive, got {self.weight}")
        if self.stride == 0:
            self.stride = stride_for_weight(self.weight, DEFAULT_STRIDE_SCALE)
        if self.stride < 1:
            raise ValueError(f"stride must be >= 1, got {self.stride}")


class QoSRegistry:
    """Class table plus core-to-class assignment."""

    def __init__(self, stride_scale: int = DEFAULT_STRIDE_SCALE) -> None:
        if stride_scale <= 0:
            raise ValueError("stride_scale must be positive")
        self._stride_scale = stride_scale
        self._classes: dict[int, QoSClass] = {}
        self._core_class: dict[int, int] = {}
        self._threads: dict[int, int] = {}

    @property
    def stride_scale(self) -> int:
        """Fixed-point scale shared by every stride in this registry."""
        return self._stride_scale

    # ------------------------------------------------------------------
    # class management
    # ------------------------------------------------------------------
    def define_class(
        self,
        qos_id: int,
        name: str,
        weight: float,
        l3_ways: int | None = None,
    ) -> QoSClass:
        """Create (or redefine) a QoS class with the given weight."""
        qos_class = QoSClass(
            qos_id=qos_id,
            name=name,
            weight=weight,
            stride=stride_for_weight(weight, self._stride_scale),
            l3_ways=l3_ways,
        )
        self._classes[qos_id] = qos_class
        self._threads.setdefault(qos_id, 0)
        return qos_class

    def get(self, qos_id: int) -> QoSClass:
        try:
            return self._classes[qos_id]
        except KeyError:
            raise KeyError(f"QoS class {qos_id} is not defined") from None

    @property
    def classes(self) -> list[QoSClass]:
        return [self._classes[qos_id] for qos_id in sorted(self._classes)]

    @property
    def qos_ids(self) -> list[int]:
        return sorted(self._classes)

    def stride(self, qos_id: int) -> int:
        return self.get(qos_id).stride

    def weight(self, qos_id: int) -> float:
        return self.get(qos_id).weight

    def share(self, qos_id: int) -> float:
        """Eq. 1 share of this class among all defined classes."""
        total = sum(qos_class.weight for qos_class in self._classes.values())
        return self.get(qos_id).weight / total

    # ------------------------------------------------------------------
    # core assignment (QoSID registers)
    # ------------------------------------------------------------------
    def assign_core(self, core_id: int, qos_id: int) -> None:
        """Point a core's QoSID register at a class (broadcast semantics)."""
        self.get(qos_id)
        previous = self._core_class.get(core_id)
        if previous is not None:
            self._threads[previous] -= 1
        self._core_class[core_id] = qos_id
        self._threads[qos_id] = self._threads.get(qos_id, 0) + 1

    def class_of_core(self, core_id: int) -> int:
        try:
            return self._core_class[core_id]
        except KeyError:
            raise KeyError(f"core {core_id} has no QoSID assigned") from None

    def threads_in_class(self, qos_id: int) -> int:
        """Active CPU count for a class (``threads_c`` in Eq. 4)."""
        self.get(qos_id)
        return self._threads.get(qos_id, 0)

    def cores_in_class(self, qos_id: int) -> list[int]:
        return sorted(
            core for core, assigned in self._core_class.items() if assigned == qos_id
        )
