"""Per-class resource monitors (paper Section II-B).

Commercial QoS frameworks (e.g. Intel RDT) expose per-class memory bandwidth
and cache occupancy counters that schedulers use when placing workloads.
These monitors provide the same queries on top of the simulator's statistics,
and the experiments use them to build the paper's bandwidth timelines.
"""

from __future__ import annotations

from repro.sim.stats import Stats

__all__ = ["BandwidthMonitor", "OccupancyMonitor"]


class BandwidthMonitor:
    """Memory-bandwidth monitoring, analogous to Intel MBM.

    Bandwidth is reported in bytes per cycle, optionally normalized to a
    configured peak so results read as "% of peak" like the paper's figures.
    """

    def __init__(self, stats: Stats, peak_bytes_per_cycle: float | None = None) -> None:
        if peak_bytes_per_cycle is not None and peak_bytes_per_cycle <= 0:
            raise ValueError("peak_bytes_per_cycle must be positive")
        self._stats = stats
        self._peak = peak_bytes_per_cycle

    def bandwidth(self, qos_id: int, window_epochs: int | None = None) -> float:
        """Average bytes/cycle for a class over the last ``window_epochs``.

        ``None`` averages over the whole run so far.
        """
        epochs = self._stats.epochs
        if not epochs:
            return 0.0
        if window_epochs is not None:
            if window_epochs <= 0:
                raise ValueError("window_epochs must be positive")
            epochs = epochs[-window_epochs:]
        total_bytes = sum(sample.bytes_by_class.get(qos_id, 0) for sample in epochs)
        total_cycles = sum(sample.cycles for sample in epochs)
        if total_cycles <= 0:
            return 0.0
        return total_bytes / total_cycles

    def utilization(self, qos_id: int, window_epochs: int | None = None) -> float:
        """Bandwidth as a fraction of configured peak."""
        if self._peak is None:
            raise ValueError("monitor was created without a peak bandwidth")
        return self.bandwidth(qos_id, window_epochs) / self._peak

    def share(self, qos_id: int, window_epochs: int | None = None) -> float:  # repro: hot-kernel
        """Fraction of observed traffic belonging to ``qos_id``."""
        epochs = self._stats.epochs
        if window_epochs is not None:
            epochs = epochs[-window_epochs:]
        total = 0
        mine = 0
        for sample in epochs:
            for cls, nbytes in sample.bytes_by_class.items():
                total += nbytes
                if cls == qos_id:
                    mine += nbytes
        if total == 0:
            return 0.0
        return mine / total


class OccupancyMonitor:
    """Cache-occupancy monitoring, analogous to Intel CMT.

    Queries any cache object exposing ``occupancy_by_class()`` (the shared L3
    in this reproduction) for per-class resident line counts.
    """

    def __init__(self, caches: list) -> None:
        self._caches = list(caches)

    def occupancy_lines(self, qos_id: int) -> int:
        """Total lines the class currently holds across monitored caches."""
        total = 0
        for cache in self._caches:
            total += cache.occupancy_by_class().get(qos_id, 0)
        return total

    def occupancy_bytes(self, qos_id: int, line_bytes: int = 64) -> int:
        return self.occupancy_lines(qos_id) * line_bytes
