"""Software allocation policies on top of the PABST mechanism.

PABST deliberately provides *mechanism* (proportional shares) and leaves
*policy* to software (Section II-C).  This module supplies the simplest
useful policy: a feedback controller that adjusts one class's weight until
its observed bandwidth reaches a target fraction of peak — the kind of loop
a datacenter manager (Heracles-style) would run on top of the hardware
knobs.  Because the governor re-reads strides every epoch and the arbiter
per request, weight updates take effect at the next epoch boundary.
"""

from __future__ import annotations

from repro.qos.classes import QoSRegistry
from repro.qos.monitor import BandwidthMonitor

__all__ = ["BandwidthTargetPolicy"]


class BandwidthTargetPolicy:
    """Multiplicative-increase/decrease weight controller for one class.

    Parameters
    ----------
    registry, monitor:
        The QoS registry holding the class and a bandwidth monitor reading
        the same system's statistics.
    qos_id:
        The controlled class.
    target_utilization:
        Desired bandwidth as a fraction of system peak.
    gain:
        Maximum multiplicative step per update; 1.25 reacts within a few
        epochs without ringing.
    deadband:
        Relative error tolerated before adjusting, to avoid weight churn.
    max_step:
        Optional hard cap on the per-update multiplicative step, on top
        of the error-proportional slew limit below.

    The applied step is slew-limited: it scales with the relative error
    (``1 + |error| / target``) up to ``gain``, so a single noisy window
    just outside the deadband nudges the weight instead of swinging it
    by the full gain — the oscillation mode the unlimited controller
    exhibited.  ``adjustments`` counts applied weight changes and
    ``deadband_holds`` counts updates absorbed by the deadband, so the
    two together account for every call.
    """

    def __init__(
        self,
        registry: QoSRegistry,
        monitor: BandwidthMonitor,
        qos_id: int,
        target_utilization: float,
        gain: float = 1.25,
        deadband: float = 0.05,
        min_weight: float = 0.25,
        max_weight: float = 256.0,
        max_step: float | None = None,
    ) -> None:
        if not 0.0 < target_utilization <= 1.0:
            raise ValueError("target_utilization must be in (0, 1]")
        if gain <= 1.0:
            raise ValueError("gain must be > 1")
        if deadband < 0:
            raise ValueError("deadband must be non-negative")
        if not 0 < min_weight <= max_weight:
            raise ValueError("need 0 < min_weight <= max_weight")
        if max_step is not None and max_step <= 1.0:
            raise ValueError("max_step must be > 1")
        registry.get(qos_id)
        self._registry = registry
        self._monitor = monitor
        self.qos_id = qos_id
        self.target = target_utilization
        self._gain = gain
        self._deadband = deadband
        self._min_weight = min_weight
        self._max_weight = max_weight
        self._max_step = max_step
        self.adjustments = 0
        self.deadband_holds = 0

    @property
    def weight(self) -> float:
        return self._registry.weight(self.qos_id)

    def update(
        self, window_epochs: int = 5, observed: float | None = None
    ) -> float:
        """One control step; returns the (possibly new) weight.

        Call at epoch granularity, e.g. every few epochs from the
        experiment loop.  ``observed`` overrides the monitor reading —
        a predictive regulator (the LMS-AR mechanism) feeds its
        predicted utilization here instead of the measured one.
        """
        if observed is None:
            observed = self._monitor.utilization(self.qos_id, window_epochs)
        error = observed - self.target
        if abs(error) <= self._deadband * self.target:
            self.deadband_holds += 1
            return self.weight
        step = 1.0 + min(self._gain - 1.0, abs(error) / self.target)
        if self._max_step is not None and step > self._max_step:
            step = self._max_step
        current = self._registry.get(self.qos_id)
        if error < 0:
            new_weight = min(current.weight * step, self._max_weight)
        else:
            new_weight = max(current.weight / step, self._min_weight)
        if new_weight != current.weight:
            self._registry.define_class(
                self.qos_id, current.name, new_weight, l3_ways=current.l3_ways
            )
            self.adjustments += 1
        return new_weight
