"""Per-bank bandwidth regulation at the source (MemGuard-style windows).

A rival source-side mechanism in the spirit of per-bank memory bandwidth
regulation (see PAPERS.md): each (class, controller, bank) triple gets a
token budget per QoS epoch, sized from the class's weight share of the
bank's service capacity.  A demand miss that finds its triple out of
tokens is parked in a FIFO and released at the next epoch boundary when
budgets refill — a hard regulation window, unlike PABST's work-conserving
pacing.

The invariant the mechanism guarantees (and the arena checks): within any
single epoch, no (class, controller, bank) triple is granted more
releases than its budget.  ``budget_overruns`` counts violations of that
invariant and must stay zero.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable

from repro.sim.mechanism import QoSMechanism
from repro.sim.records import MemoryRequest

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.system import System

__all__ = ["PerBankRegulatorMechanism"]


class PerBankRegulatorMechanism(QoSMechanism):
    """Source-side per-(class, mc, bank) token budgets per QoS epoch."""

    name = "perbank"

    def __init__(self, accesses_per_bank: int | None = None) -> None:
        """``accesses_per_bank`` is the per-bank epoch budget split across
        classes by weight; ``None`` derives it from the bank's service
        capacity (``epoch_cycles // closed_page_service``)."""
        if accesses_per_bank is not None and accesses_per_bank < 1:
            raise ValueError("accesses_per_bank must be >= 1")
        self.accesses_per_bank = accesses_per_bank
        # (qos_id, mc_id, bank_id) -> budget / remaining tokens this epoch
        self.budgets: dict[tuple[int, int, int], int] = {}
        self._tokens: dict[tuple[int, int, int], int] = {}
        self._granted_this_epoch: dict[tuple[int, int, int], int] = {}
        self._queues: dict[
            tuple[int, int, int], deque[Callable[[], None]]
        ] = {}
        self.budget_overruns = 0
        self.max_epoch_grants = 0
        self._decode = None

    # ------------------------------------------------------------------
    # QoSMechanism interface
    # ------------------------------------------------------------------
    def attach(self, system: "System") -> None:
        config = system.config
        self._decode = system.address_map.decode
        per_bank = self.accesses_per_bank
        if per_bank is None:
            per_bank = max(
                1, config.epoch_cycles // config.dram.closed_page_service
            )
        classes = sorted(system.registry.classes, key=lambda c: c.qos_id)
        total_weight = sum(cls.weight for cls in classes)
        for cls in classes:
            share = cls.weight / total_weight
            budget = max(1, int(share * per_bank))
            for mc_id in range(config.num_mcs):
                for bank_id in range(config.banks_per_mc):
                    key = (cls.qos_id, mc_id, bank_id)
                    self.budgets[key] = budget
                    self._tokens[key] = budget
                    self._granted_this_epoch[key] = 0
                    self._queues[key] = deque()

    def request_release(
        self, core_id: int, req: MemoryRequest, release: Callable[[], None]
    ) -> None:
        assert self._decode is not None
        _, mc_id, bank_id, _ = self._decode(req.addr)
        key = (req.qos_id, mc_id, bank_id)
        tokens = self._tokens.get(key)
        if tokens is None:
            # class/bank outside the attach-time table: pass through
            self._obs_granted += 1
            release()
            return
        if tokens > 0 and not self._queues[key]:
            self._tokens[key] = tokens - 1
            self._grant(key, release)
            return
        self._obs_denied += 1
        self._queues[key].append(release)

    def on_epoch(
        self, saturated: bool, per_mc: tuple[bool, ...] | None = None
    ) -> None:
        super().on_epoch(saturated, per_mc)
        # close the window: record the high-water mark, refill, then
        # drain parked requests (deterministic key order) into the new
        # window's budgets
        for key, granted in self._granted_this_epoch.items():
            if granted > self.max_epoch_grants:
                self.max_epoch_grants = granted
            if granted > self.budgets[key]:
                self.budget_overruns += 1
            self._granted_this_epoch[key] = 0
        for key, budget in self.budgets.items():
            self._tokens[key] = budget
        for key in sorted(self._queues):
            queue = self._queues[key]
            while queue and self._tokens[key] > 0:
                self._tokens[key] -= 1
                self._grant(key, queue.popleft())

    def _grant(self, key: tuple[int, int, int], release: Callable[[], None]) -> None:
        self._granted_this_epoch[key] += 1
        self._obs_granted += 1
        release()

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    @property
    def parked(self) -> int:
        """Requests currently held until the next regulation window."""
        return sum(len(queue) for queue in self._queues.values())

    def bound_report(self) -> dict:
        return {
            "kind": "perbank-epoch-budget",
            "bound": max(self.budgets.values(), default=0),
            "max_observed": self.max_epoch_grants,
            "violations": self.budget_overruns,
            "ok": self.budget_overruns == 0,
        }

    def register_obs(self, registry) -> None:
        super().register_obs(registry)
        registry.register_counter(
            "perbank.budget_overruns", self, "budget_overruns"
        )
        registry.register_gauge("perbank.parked", self, "parked")
        registry.register_gauge(
            "perbank.max_epoch_grants", self, "max_epoch_grants"
        )
