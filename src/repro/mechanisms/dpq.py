"""Dynamic-Priority-Queue SDRAM arbiter with bounded access latencies.

A rival target-side mechanism in the spirit of the DPQ SDRAM controller
(see PAPERS.md): classes sit in a priority queue; serving a class rotates
it to the back, so every class with pending ready work is served within
one rotation of the others.  Because the front-end queues are bounded and
service of a single access is bounded by the closed-page cycle, each
class gets a *bounded access latency* — the WCET story PABST trades away
for proportionality.

The bound used here is the simulator-model analogue of the paper's
analysis, deliberately conservative: a queued read is issued after at
most ``num_classes x read_queue + write_queue`` accesses (rotation means
other classes overtake the class head at most once per own service;
oldest-first within a class means own-class requests never overtake; a
write drain serves at most the write queue), each access occupying the
bank/bus for at most one closed-page service.  The policy *measures*
every pick's front-end wait against the bound and counts violations, so
the guarantee is checked, not assumed.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.dram.schedulers import SchedulingPolicy, oldest_first
from repro.sim.mechanism import QoSMechanism

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.system import System

__all__ = ["DpqMechanism", "DpqPolicy"]


class DpqPolicy(SchedulingPolicy):
    """Rotating class-priority selection with per-class latency accounting.

    ``order`` is the live priority queue (front = highest priority); a
    pick moves the served class to the back.  Within a class requests are
    served oldest-first, and writes (served in batch drains where class
    priority buys nothing) fall back to plain oldest-first.
    """

    def __init__(self, qos_ids: list[int], bound_cycles: int) -> None:
        if not qos_ids:
            raise ValueError("need at least one QoS class")
        if bound_cycles <= 0:
            raise ValueError("bound_cycles must be positive")
        self.order: list[int] = list(qos_ids)
        self.bound_cycles = bound_cycles
        self.picks = 0
        self.rotations = 0
        self.bound_violations = 0
        self._max_wait: dict[int, int] = {qos_id: 0 for qos_id in qos_ids}

    @property
    def max_observed_wait(self) -> int:
        """Largest front-end wait (cycles) any class's pick has seen."""
        return max(self._max_wait.values())

    def max_wait(self, qos_id: int) -> int:
        return self._max_wait.get(qos_id, 0)

    def pick(self, candidates, banks, now):
        if not candidates[0].is_read:
            return oldest_first(candidates)
        # one pass: oldest ready candidate per class present
        heads: dict[int, object] = {}
        for req in candidates:
            head = heads.get(req.qos_id)
            if (
                head is None
                or req.arrived_mc_at < head.arrived_mc_at
                or (
                    req.arrived_mc_at == head.arrived_mc_at
                    and req.req_id < head.req_id
                )
            ):
                heads[req.qos_id] = req
        chosen = None
        for qos_id in self.order:
            chosen = heads.get(qos_id)
            if chosen is not None:
                break
        if chosen is None:
            # a class outside the attach-time table (should not happen)
            return oldest_first(candidates)
        if self.order[-1] != chosen.qos_id:
            self.order.remove(chosen.qos_id)
            self.order.append(chosen.qos_id)
            self.rotations += 1
        self.picks += 1
        wait = now - chosen.arrived_mc_at
        if wait > self._max_wait.get(chosen.qos_id, 0):
            self._max_wait[chosen.qos_id] = wait
        if wait > self.bound_cycles:
            self.bound_violations += 1
        return chosen


class DpqMechanism(QoSMechanism):
    """Target-only mechanism: a DPQ policy in every memory controller."""

    name = "dpq"

    def __init__(self) -> None:
        self.policies: dict[int, DpqPolicy] = {}
        self.bound_cycles = 0

    def attach(self, system: "System") -> None:
        config = system.config
        qos_ids = sorted(cls.qos_id for cls in system.registry.classes)
        accesses = (
            len(qos_ids) * config.frontend_read_queue
            + config.frontend_write_queue
        )
        self.bound_cycles = accesses * config.dram.closed_page_service
        for controller in system.controllers:
            self.policies[controller.mc_id] = DpqPolicy(
                qos_ids, self.bound_cycles
            )

    def mc_policy(self, mc_id: int):
        return self.policies.get(mc_id)

    def bound_report(self) -> dict:
        violations = sum(p.bound_violations for p in self.policies.values())
        observed = max(
            (p.max_observed_wait for p in self.policies.values()), default=0
        )
        return {
            "kind": "dpq-access-latency",
            "bound": self.bound_cycles,
            "max_observed": observed,
            "violations": violations,
            "ok": violations == 0,
        }

    def register_obs(self, registry) -> None:
        super().register_obs(registry)
        for mc_id, policy in sorted(self.policies.items()):
            registry.register_counter(f"dpq.mc{mc_id}.picks", policy, "picks")
            registry.register_counter(
                f"dpq.mc{mc_id}.rotations", policy, "rotations"
            )
            registry.register_counter(
                f"dpq.mc{mc_id}.bound_violations", policy, "bound_violations"
            )
            registry.register_gauge(
                f"dpq.mc{mc_id}.max_wait", policy, "max_observed_wait"
            )
