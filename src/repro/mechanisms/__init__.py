"""The QoS mechanism zoo: every mechanism the arena can run, by name.

PABST's claim — that source+target proportional allocation beats single-
point regulation — is only as strong as the rivals it is compared
against.  This package collects every :class:`~repro.sim.mechanism
.QoSMechanism` implementation behind one registry:

* the baselines the paper itself evaluates (``none``, ``source-only``,
  ``target-only``, ``static-partition``) promoted to first-class
  mechanism objects;
* ``pabst`` — the full mechanism;
* rivals reconstructed from the related work (see PAPERS.md):
  ``dpq`` (bounded-latency rotating arbiter), ``perbank`` (per-bank
  windowed bandwidth regulation), and ``lms-ar`` (prediction-driven
  adaptive regulation).

``repro arena`` runs the whole registry head-to-head; experiments keep
using :func:`make_mechanism` (re-exported through
``repro.experiments.common`` for backward compatibility).
"""

from __future__ import annotations

from typing import Callable

from repro.baselines.none import NoQosMechanism
from repro.baselines.source_only import SourceOnlyMechanism
from repro.baselines.static_partition import StaticPartitionMechanism
from repro.baselines.target_only import TargetOnlyMechanism
from repro.core.pabst import PabstMechanism
from repro.mechanisms.dpq import DpqMechanism, DpqPolicy
from repro.mechanisms.lmsar import LmsArMechanism, LmsPredictor
from repro.mechanisms.perbank import PerBankRegulatorMechanism
from repro.sim.mechanism import QoSMechanism

__all__ = [
    "ALL_MECHANISMS",
    "DpqMechanism",
    "DpqPolicy",
    "LmsArMechanism",
    "LmsPredictor",
    "MECHANISMS",
    "PerBankRegulatorMechanism",
    "StaticPartitionMechanism",
    "make_mechanism",
    "register_mechanism",
]

#: Name -> zero-argument factory.  Insertion order is the canonical
#: arena column order: baselines first, PABST, then the rivals.
MECHANISMS: dict[str, Callable[[], QoSMechanism]] = {
    "none": NoQosMechanism,
    "static-partition": StaticPartitionMechanism,
    "source-only": SourceOnlyMechanism,
    "target-only": TargetOnlyMechanism,
    "pabst": PabstMechanism,
    "dpq": DpqMechanism,
    "perbank": PerBankRegulatorMechanism,
    "lms-ar": LmsArMechanism,
}

ALL_MECHANISMS: tuple[str, ...] = tuple(MECHANISMS)


def make_mechanism(name: str) -> QoSMechanism:
    """Instantiate a registered mechanism by name."""
    try:
        factory = MECHANISMS[name]
    except KeyError:
        known = ", ".join(sorted(MECHANISMS))
        raise KeyError(f"unknown mechanism {name!r}; known: {known}") from None
    return factory()


def register_mechanism(
    name: str, factory: Callable[[], QoSMechanism]
) -> None:
    """Add a mechanism to the registry (e.g. from an out-of-tree study).

    Re-registering an existing name is an error: the registry's order
    and contents define the arena's default matrix, and silently
    shadowing a built-in would change published comparisons.
    """
    if name in MECHANISMS:
        raise ValueError(f"mechanism {name!r} is already registered")
    MECHANISMS[name] = factory
