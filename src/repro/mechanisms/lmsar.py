"""LMS-AR: a prediction-based adaptive bandwidth regulator.

A rival learning mechanism in the spirit of LMS-driven adaptive memory
regulators (see PAPERS.md): per class, a least-mean-squares filter over
the recent utilization history predicts the *next* window's utilization,
and that prediction — not the lagging measurement — feeds a
:class:`~repro.qos.policy.BandwidthTargetPolicy` that steers the class
weight toward its entitled share of a system utilization setpoint.

Mechanically this rides on the PABST source half (governor + pacer,
target arbiter disabled): the policy rewrites class weights, the
governors re-read strides every epoch, so weight changes take effect at
the next heartbeat.  The LMS filter itself is a plain normalized-LMS
autoregressive predictor — small, deterministic float arithmetic.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.config import PabstConfig
from repro.core.pabst import PabstMechanism
from repro.qos.policy import BandwidthTargetPolicy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.system import System

__all__ = ["LmsArMechanism", "LmsPredictor"]


class LmsPredictor:
    """Normalized-LMS autoregressive one-step predictor.

    Predicts the next sample from the last ``taps`` samples; ``observe``
    adapts the tap weights against the realized sample.  Weights start
    at ``1/taps`` (a moving average) so the cold-start prediction is
    sensible, and normalization keeps the adaptation stable for any
    input scale.
    """

    def __init__(self, taps: int = 4, mu: float = 0.5) -> None:
        if taps < 1:
            raise ValueError("taps must be >= 1")
        if not 0.0 < mu < 2.0:
            raise ValueError("mu must be in (0, 2) for NLMS stability")
        self.taps = taps
        self.mu = mu
        self.weights = [1.0 / taps] * taps
        self.history = [0.0] * taps  # newest first
        self.updates = 0

    def predict(self) -> float:
        total = 0.0
        for weight, sample in zip(self.weights, self.history):
            total += weight * sample
        return total

    def observe(self, actual: float) -> float:
        """Adapt against ``actual``, then absorb it; returns the error."""
        error = actual - self.predict()
        norm = 1e-9
        for sample in self.history:
            norm += sample * sample
        scale = self.mu * error / norm
        self.weights = [
            weight + scale * sample
            for weight, sample in zip(self.weights, self.history)
        ]
        self.history = [actual] + self.history[:-1]
        self.updates += 1
        return error


class LmsArMechanism(PabstMechanism):
    """Source regulation steered by per-class LMS utilization predictions."""

    def __init__(
        self,
        config: PabstConfig | None = None,
        taps: int = 4,
        mu: float = 0.5,
        update_every: int = 4,
        system_setpoint: float = 0.9,
        gain: float = 1.25,
        deadband: float = 0.05,
    ) -> None:
        super().__init__(
            config=config, enable_governor=True, enable_arbiter=False
        )
        if update_every < 1:
            raise ValueError("update_every must be >= 1")
        if not 0.0 < system_setpoint <= 1.0:
            raise ValueError("system_setpoint must be in (0, 1]")
        self.name = "lms-ar"
        self.taps = taps
        self.mu = mu
        self.update_every = update_every
        self.system_setpoint = system_setpoint
        self.policy_gain = gain
        self.policy_deadband = deadband
        self.predictors: dict[int, LmsPredictor] = {}
        self.policies: dict[int, BandwidthTargetPolicy] = {}
        self._monitor = None
        self._epochs_seen = 0

    def attach(self, system: "System") -> None:
        super().attach(system)
        self._monitor = system.bandwidth_monitor
        classes = sorted(system.registry.classes, key=lambda c: c.qos_id)
        total_weight = sum(cls.weight for cls in classes)
        for cls in classes:
            target = (cls.weight / total_weight) * self.system_setpoint
            self.predictors[cls.qos_id] = LmsPredictor(
                taps=self.taps, mu=self.mu
            )
            self.policies[cls.qos_id] = BandwidthTargetPolicy(
                system.registry,
                system.bandwidth_monitor,
                cls.qos_id,
                target_utilization=target,
                gain=self.policy_gain,
                deadband=self.policy_deadband,
            )

    def on_epoch(
        self, saturated: bool, per_mc: tuple[bool, ...] | None = None
    ) -> None:
        super().on_epoch(saturated, per_mc)
        if self._monitor is None:
            return
        self._epochs_seen += 1
        # The heartbeat fires before the stats window closes, so the
        # freshest sample the monitor sees is the previous epoch — a
        # one-epoch observation lag, identical every run.
        for qos_id in sorted(self.predictors):
            actual = self._monitor.utilization(qos_id, window_epochs=1)
            self.predictors[qos_id].observe(actual)
        if self._epochs_seen % self.update_every:
            return
        for qos_id in sorted(self.policies):
            prediction = self.predictors[qos_id].predict()
            self.policies[qos_id].update(observed=prediction)

    def register_obs(self, registry) -> None:
        super().register_obs(registry)
        for qos_id in sorted(self.policies):
            policy = self.policies[qos_id]
            registry.register_counter(
                f"lmsar.q{qos_id}.adjustments", policy, "adjustments"
            )
            registry.register_counter(
                f"lmsar.q{qos_id}.deadband_holds", policy, "deadband_holds"
            )
            registry.register_gauge(
                f"lmsar.q{qos_id}.weight", policy, "weight"
            )
            registry.register_counter(
                f"lmsar.q{qos_id}.filter_updates",
                self.predictors[qos_id],
                "updates",
            )
