"""Plain-text rendering of experiment results.

Every benchmark prints the rows/series the corresponding paper figure
shows; these helpers keep that output consistent and terminal-friendly.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_series", "format_table", "sparkline"]

_SPARK_LEVELS = " .:-=+*#%@"


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str | None = None
) -> str:
    """Render an aligned ASCII table."""
    if any(len(row) != len(headers) for row in rows):
        raise ValueError("every row must match the header width")
    cells = [[str(h) for h in headers]] + [[_fmt(v) for v in row] for row in rows]
    widths = [max(len(row[col]) for row in cells) for col in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def sparkline(values: Sequence[float], lo: float = 0.0, hi: float = 1.0) -> str:
    """One-character-per-sample trace for timeline figures."""
    if hi <= lo:
        raise ValueError("need hi > lo")
    chars = []
    span = hi - lo
    top = len(_SPARK_LEVELS) - 1
    for value in values:
        norm = (min(max(value, lo), hi) - lo) / span
        chars.append(_SPARK_LEVELS[round(norm * top)])
    return "".join(chars)


def format_series(
    label: str, values: Sequence[float], lo: float = 0.0, hi: float = 1.0
) -> str:
    """A labelled sparkline with its min/mean/max."""
    if len(values) == 0:
        return f"{label}: (no samples)"
    mean = sum(values) / len(values)
    return (
        f"{label:>14s} |{sparkline(values, lo, hi)}| "
        f"min={min(values):.2f} mean={mean:.2f} max={max(values):.2f}"
    )
