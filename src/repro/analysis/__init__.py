"""Analysis: metrics, bandwidth timelines, and text reports."""

from repro.analysis.attribution import (
    LatencyAttribution,
    attribute_latency,
    attribution_table,
)
from repro.analysis.metrics import (
    allocation_error,
    bandwidth_shares,
    percentile,
    share_error_per_class,
    weighted_slowdown,
)
from repro.analysis.report import format_series, format_table, sparkline
from repro.analysis.timeline import BandwidthTimeline, WindowSummary

__all__ = [
    "BandwidthTimeline", "LatencyAttribution", "WindowSummary", "allocation_error", "attribute_latency", "attribution_table",
    "bandwidth_shares", "format_series", "format_table", "percentile",
    "share_error_per_class", "sparkline", "weighted_slowdown",
]
