"""Latency attribution: where a class's DRAM-read latency comes from.

Decomposes mean read latency (measured from L2 miss to data leaving the
controller) into the four stages of the request path:

* **pacer** — time spent throttled at the source governor;
* **noc** — interconnect and L3-slice traversal to the controller,
  including any wait outside a full front-end queue;
* **queue** — front-end queueing at the controller until the bank access
  begins (what the priority arbiter reduces for favoured classes);
* **service** — bank prep plus the data burst.

This is the breakdown that explains every PABST result: source-only
regulation moves latency into *pacer*, target-only removes *queue* for
high-priority classes, and the combination shortens queues for everyone.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import format_table
from repro.sim.stats import Stats

__all__ = ["LatencyAttribution", "attribute_latency"]


@dataclass(frozen=True, slots=True)
class LatencyAttribution:
    """Mean per-stage read latency for one QoS class (cycles)."""

    qos_id: int
    reads: int
    pacer: float
    noc: float
    queue: float
    service: float

    @property
    def total(self) -> float:
        return self.pacer + self.noc + self.queue + self.service

    def fraction(self, stage: str) -> float:
        """Share of total latency spent in ``stage``."""
        value = getattr(self, stage)
        if self.total == 0:
            return 0.0
        return value / self.total


def attribute_latency(stats: Stats, qos_id: int) -> LatencyAttribution:
    """Per-stage mean latency for a class from its cumulative counters."""
    cls = stats.class_stats(qos_id)
    count = cls.reads_attributed
    if count == 0:
        return LatencyAttribution(
            qos_id=qos_id, reads=0, pacer=0.0, noc=0.0, queue=0.0, service=0.0
        )
    return LatencyAttribution(
        qos_id=qos_id,
        reads=count,
        pacer=cls.stage_pacer_sum / count,
        noc=cls.stage_noc_sum / count,
        queue=cls.stage_queue_sum / count,
        service=cls.stage_service_sum / count,
    )


def attribution_table(stats: Stats, title: str | None = None) -> str:
    """Formatted per-class latency breakdown for every class with reads."""
    rows = []
    for qos_id in sorted(stats.classes):
        attribution = attribute_latency(stats, qos_id)
        if attribution.reads == 0:
            continue
        rows.append(
            (
                qos_id,
                attribution.reads,
                attribution.pacer,
                attribution.noc,
                attribution.queue,
                attribution.service,
                attribution.total,
            )
        )
    return format_table(
        ["class", "reads", "pacer", "noc", "queue", "service", "total"],
        rows,
        title=title or "Mean DRAM-read latency by stage (cycles)",
    )
