"""Per-epoch bandwidth timelines (Figs. 5, 6, 8).

The paper's timeline figures plot each class's consumed bandwidth per epoch
as a fraction of peak.  :class:`BandwidthTimeline` wraps the epoch samples
collected by :class:`repro.sim.stats.Stats` with exactly those queries, plus
the steady-state window statistics EXPERIMENTS.md reports.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.stats import EpochSample

__all__ = ["BandwidthTimeline", "WindowSummary"]


@dataclass(frozen=True, slots=True)
class WindowSummary:
    """Share statistics for one class over a window of epochs."""

    qos_id: int
    mean_share: float
    min_share: float
    max_share: float
    mean_utilization: float


class BandwidthTimeline:
    """Query layer over a run's epoch samples."""

    def __init__(self, epochs: list[EpochSample], peak_bytes_per_cycle: float) -> None:
        if peak_bytes_per_cycle <= 0:
            raise ValueError("peak bandwidth must be positive")
        self._epochs = list(epochs)
        self._peak = peak_bytes_per_cycle

    def __len__(self) -> int:
        return len(self._epochs)

    @property
    def epochs(self) -> list[EpochSample]:
        return list(self._epochs)

    # ------------------------------------------------------------------
    # series
    # ------------------------------------------------------------------
    def utilization_series(self, qos_id: int) -> list[float]:
        """Per-epoch bandwidth of one class as a fraction of system peak."""
        return [sample.bandwidth(qos_id) / self._peak for sample in self._epochs]

    def share_series(self, qos_id: int) -> list[float]:
        """Per-epoch fraction of observed traffic belonging to the class."""
        series = []
        for sample in self._epochs:
            total = sum(sample.bytes_by_class.values())
            mine = sample.bytes_by_class.get(qos_id, 0)
            series.append(mine / total if total else 0.0)
        return series

    def total_utilization_series(self) -> list[float]:
        """Per-epoch total bandwidth as a fraction of peak."""
        return [
            sum(sample.bytes_by_class.values()) / sample.cycles / self._peak
            if sample.cycles
            else 0.0
            for sample in self._epochs
        ]

    def saturation_series(self) -> list[bool]:
        return [sample.saturated for sample in self._epochs]

    def multiplier_series(self) -> list[int]:
        """Governor M per epoch (-1 where no governor ran)."""
        return [sample.multiplier for sample in self._epochs]

    # ------------------------------------------------------------------
    # windows
    # ------------------------------------------------------------------
    def window(self, qos_id: int, start: int, end: int | None = None) -> WindowSummary:
        """Summary of one class over epochs [start, end)."""
        epochs = self._epochs[start:end]
        if not epochs:
            raise ValueError(f"empty epoch window [{start}, {end})")
        shares = []
        utils = []
        for sample in epochs:
            total = sum(sample.bytes_by_class.values())
            mine = sample.bytes_by_class.get(qos_id, 0)
            shares.append(mine / total if total else 0.0)
            utils.append(sample.bandwidth(qos_id) / self._peak)
        return WindowSummary(
            qos_id=qos_id,
            mean_share=sum(shares) / len(shares),
            min_share=min(shares),
            max_share=max(shares),
            mean_utilization=sum(utils) / len(utils),
        )

    def steady_share(self, qos_id: int, warmup_epochs: int) -> float:
        """Aggregate share over everything after the warm-up window."""
        epochs = self._epochs[warmup_epochs:]
        total = 0
        mine = 0
        for sample in epochs:
            for cls, count in sample.bytes_by_class.items():
                total += count
                if cls == qos_id:
                    mine += count
        return mine / total if total else 0.0

    def steady_bytes(self, warmup_epochs: int) -> dict[int, int]:
        """Per-class byte totals after the warm-up window."""
        totals: dict[int, int] = {}
        for sample in self._epochs[warmup_epochs:]:
            for cls, count in sample.bytes_by_class.items():
                totals[cls] = totals.get(cls, 0) + count
        return totals
