"""Metrics the paper reports.

* allocation error — how far observed bandwidth shares are from the
  configured proportional shares (Figs. 1, 5, 7, 8);
* weighted slowdown — Eq. 6, the inverse of weighted speedup (Fig. 10);
* percentile helpers for service-time distributions (Fig. 9);
* memory efficiency lives on :class:`repro.sim.stats.Stats` (Fig. 12).
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = [
    "allocation_error",
    "bandwidth_shares",
    "percentile",
    "share_error_per_class",
    "weighted_slowdown",
]


def bandwidth_shares(bytes_by_class: Mapping[int, int]) -> dict[int, float]:
    """Normalize per-class byte counts into shares summing to 1."""
    total = sum(bytes_by_class.values())
    if total <= 0:
        return {qos_id: 0.0 for qos_id in bytes_by_class}
    return {qos_id: count / total for qos_id, count in bytes_by_class.items()}


def allocation_error(
    observed_bytes: Mapping[int, int], weights: Mapping[int, float]
) -> float:
    """Worst-case relative deviation of observed shares from entitled shares.

    This is the "allocation error" shown in Fig. 1: 0 means the observed
    split matches the weights exactly; 1 means some class observed nothing
    of its entitlement.
    """
    if set(observed_bytes) != set(weights):
        raise ValueError("observed classes and weights must match")
    total_weight = float(sum(weights.values()))
    if total_weight <= 0:
        raise ValueError("total weight must be positive")
    observed = bandwidth_shares(observed_bytes)
    worst = 0.0
    for qos_id, weight in weights.items():
        entitled = weight / total_weight
        worst = max(worst, abs(observed[qos_id] - entitled) / entitled)
    return worst


def share_error_per_class(
    observed_bytes: Mapping[int, int], weights: Mapping[int, float]
) -> dict[int, float]:
    """Signed relative error per class (positive = above entitlement)."""
    total_weight = float(sum(weights.values()))
    observed = bandwidth_shares(observed_bytes)
    return {
        qos_id: (observed.get(qos_id, 0.0) - weight / total_weight)
        / (weight / total_weight)
        for qos_id, weight in weights.items()
    }


def weighted_slowdown(
    isolated_ipc: Sequence[float], shared_ipc: Sequence[float]
) -> float:
    """Eq. 6: inverse of weighted speedup over N co-running copies.

        WeightedSlowdown = N / sum_i (IPC_i^MP / IPC_i^SP)

    1.0 means no interference; 2.0 means each copy effectively ran at half
    its isolated speed.
    """
    if len(isolated_ipc) != len(shared_ipc) or not isolated_ipc:
        raise ValueError("need matching, non-empty IPC vectors")
    speedup = 0.0
    for iso, shared in zip(isolated_ipc, shared_ipc):
        if iso <= 0:
            raise ValueError("isolated IPC must be positive")
        speedup += shared / iso
    if speedup <= 0:
        raise ValueError("shared IPC must not be all zero")
    return len(isolated_ipc) / speedup


def percentile(samples: Sequence[float], q: float) -> float:
    """Percentile of a sample list (q in [0, 100]); 0.0 for empty input.

    Linear interpolation between closest ranks (the ``method="linear"``
    definition shared by ``numpy.percentile`` and inclusive
    ``statistics.quantiles``): the rank of ``q`` is ``q/100 * (n - 1)``
    and the result interpolates between the floor and ceiling order
    statistics.  Spelled out in exact index arithmetic rather than
    delegated, so the endpoint cases are inspectable: q=0 is the
    minimum, q=100 the maximum (no ``rank+1`` read past the end), and a
    single sample is returned as-is for every q.
    """
    if not 0 <= q <= 100:
        raise ValueError("q must be in [0, 100]")
    n = len(samples)
    if n == 0:
        return 0.0
    ordered = sorted(float(value) for value in samples)
    if n == 1:
        return ordered[0]
    rank = (q / 100.0) * (n - 1)
    lower = int(rank)
    if lower >= n - 1:
        # q == 100 exactly (or float rounding drove rank to n-1):
        # interpolating would index ordered[n], so return the maximum
        return ordered[-1]
    fraction = rank - lower
    return ordered[lower] + (ordered[lower + 1] - ordered[lower]) * fraction
