"""PABST priority arbiter (Section III-C2).

One arbiter lives in each memory controller.  It keeps a virtual clock per
QoS class that advances by the class stride for every accepted read; a
request's virtual deadline is the clock value at acceptance, and both the
front-end dispatch and the back-end bank issue serve the earliest deadline
first.  Classes that have consumed less than their share therefore have
earlier deadlines and see lower queueing latency — the target half of PABST.

Differences from Nesbit et al.'s FQM that the paper calls out are honored
here: true virtual time (stride per request, not scaled access time), a
single flat charge per access, and no per-bank virtual clocks.  The
controller model unifies the paper's two EDF stages into one selection
point over the whole front-end queue (see ``repro/dram/schedulers.py``).

Idle classes must not bank unlimited priority: a new deadline is capped at
no more than ``slack`` ticks behind the last deadline the arbiter picked,
and a capped value is written back into the class clock.

Writes are never prioritized (they are off the critical path); the arbiter
falls back to arrival order for them.
"""

from __future__ import annotations

from typing import Sequence

from repro.dram.bank import Bank
from repro.dram.schedulers import SchedulingPolicy, oldest_first
from repro.qos.classes import QoSRegistry
from repro.sim.records import MemoryRequest

__all__ = ["PriorityArbiter"]


def _earliest_deadline(candidates: Sequence[MemoryRequest]) -> MemoryRequest:
    """Min by ``(virtual_deadline, arrived_mc_at, req_id)`` without the
    per-candidate key-tuple allocation of ``min(..., key=...)``."""
    best = candidates[0]
    best_deadline = best.virtual_deadline
    best_arrived = best.arrived_mc_at
    best_id = best.req_id
    for req in candidates:
        deadline = req.virtual_deadline
        if deadline > best_deadline:
            continue
        if deadline == best_deadline:
            arrived = req.arrived_mc_at
            if arrived > best_arrived:
                continue
            if arrived == best_arrived and req.req_id >= best_id:
                continue
        best = req
        best_deadline = best.virtual_deadline
        best_arrived = best.arrived_mc_at
        best_id = best.req_id
    return best


class PriorityArbiter(SchedulingPolicy):
    """Earliest-virtual-deadline-first scheduling with bounded slack."""

    def __init__(
        self,
        registry: QoSRegistry,
        slack: int,
        row_hits_first: bool = True,
    ) -> None:
        if slack <= 0:
            raise ValueError("slack must be positive")
        self._registry = registry
        self._slack = slack
        self._row_hits_first = row_hits_first
        self._clocks: dict[int, int] = {}
        self._last_picked_deadline = 0
        self.capped_deadlines = 0
        # times the row-hit preference served a request past a pending
        # earlier deadline (the open-page fairness/efficiency trade)
        self.deadline_inversions = 0

    # ------------------------------------------------------------------
    # SchedulingPolicy interface
    # ------------------------------------------------------------------
    def on_accept(self, req: MemoryRequest, now: int) -> None:  # repro: native-kernel
        if not req.is_read:
            return
        stride = self._registry.stride(req.qos_id)
        clock = self._clocks.get(req.qos_id, 0) + stride
        floor = self._last_picked_deadline - self._slack
        if clock < floor:
            clock = floor
            self.capped_deadlines += 1
        self._clocks[req.qos_id] = clock
        req.virtual_deadline = clock

    def pick(  # repro: native-kernel
        self, candidates: Sequence[MemoryRequest], banks: Sequence[Bank], now: int
    ) -> MemoryRequest:
        if not candidates[0].is_read:
            # writes are off the critical path: arrival order, unprioritized
            return oldest_first(candidates)
        pool: Sequence[MemoryRequest] = candidates
        # under the closed-page policy no row is ever latched, so the
        # row-hit scan cannot find anything — skip it entirely
        if self._row_hits_first and banks[0].open_page:
            row_hits = [
                req
                for req in candidates
                if banks[req.bank_id].is_row_hit(req.row_id)
            ]
            if row_hits:
                pool = row_hits
        req = _earliest_deadline(pool) if len(pool) > 1 else pool[0]
        if pool is not candidates:
            # row-hit filtering may have hidden an earlier deadline; count
            # it so the efficiency-vs-priority trade is observable (this
            # branch never runs under the default closed-page policy)
            overall = _earliest_deadline(candidates)
            if overall.virtual_deadline < req.virtual_deadline:
                self.deadline_inversions += 1
        if req.virtual_deadline > self._last_picked_deadline:
            self._last_picked_deadline = req.virtual_deadline
        return req

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def virtual_clock(self, qos_id: int) -> int:
        return self._clocks.get(qos_id, 0)

    @property
    def last_picked_deadline(self) -> int:
        return self._last_picked_deadline
