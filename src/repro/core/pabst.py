"""PABST: the integrated mechanism (Section III).

``PabstMechanism`` plugs the two halves into a simulated system:

* a :class:`~repro.core.governor.Governor` + :class:`~repro.core.pacer.Pacer`
  pair behind every L2 cache (the source), and
* a :class:`~repro.core.arbiter.PriorityArbiter` in every memory controller
  (the target).

The system delivers the epoch heartbeat and the wired-OR SAT signal
(Section III-D assumes dedicated wires; simulator wiring is exactly that
behaviour), and routes release/response hooks to the right pacer.

The ablations the paper evaluates are the same object with one half
disabled — see :mod:`repro.baselines`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.core.arbiter import PriorityArbiter
from repro.core.config import PabstConfig
from repro.core.governor import Governor
from repro.core.pacer import Pacer
from repro.dram.schedulers import SchedulingPolicy
from repro.sim.mechanism import QoSMechanism
from repro.sim.records import MemoryRequest

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.system import System

__all__ = ["PabstMechanism"]


class PabstMechanism(QoSMechanism):
    """Source governor + target arbiter, individually switchable."""

    def __init__(
        self,
        config: PabstConfig | None = None,
        enable_governor: bool = True,
        enable_arbiter: bool = True,
    ) -> None:
        self.config = config if config is not None else PabstConfig()
        self.enable_governor = enable_governor
        self.enable_arbiter = enable_arbiter
        if enable_governor and enable_arbiter:
            self.name = "pabst"
        elif enable_governor:
            self.name = "source-only"
        elif enable_arbiter:
            self.name = "target-only"
        else:
            self.name = "none"
        self.governors: dict[int, Governor] = {}
        self.pacers: dict[int, Pacer] = {}
        # per-controller mode (Section III-C1 alternative): keyed (core, mc)
        self.mc_governors: dict[tuple[int, int], Governor] = {}
        self.mc_pacers: dict[tuple[int, int], Pacer] = {}
        self.arbiters: dict[int, PriorityArbiter] = {}
        self._registry = None
        self._address_map = None
        self._wb_rr: dict[int, int] = {}

    # ------------------------------------------------------------------
    # QoSMechanism interface
    # ------------------------------------------------------------------
    def attach(self, system: "System") -> None:
        registry = system.registry
        self._registry = registry
        self._address_map = system.address_map
        f_scale = (
            self.config.f_scale
            if self.config.f_scale is not None
            else registry.stride_scale
        )
        if self.enable_governor and self.config.per_controller_governors:
            for core_id, core in system.cores.items():
                for mc_id in range(system.config.num_mcs):
                    pacer = Pacer(
                        system.engine,
                        f_scale,
                        burst_requests=self.config.burst_requests,
                    )
                    governor = Governor(
                        core_id=core_id,
                        qos_id=core.qos_id,
                        registry=registry,
                        config=self.config,
                        pacer=pacer,
                    )
                    pacer.set_period(governor.source_period_numerator())
                    self.mc_pacers[(core_id, mc_id)] = pacer
                    self.mc_governors[(core_id, mc_id)] = governor
        elif self.enable_governor:
            for core_id, core in system.cores.items():
                pacer = Pacer(
                    system.engine, f_scale, burst_requests=self.config.burst_requests
                )
                governor = Governor(
                    core_id=core_id,
                    qos_id=core.qos_id,
                    registry=registry,
                    config=self.config,
                    pacer=pacer,
                )
                pacer.set_period(governor.source_period_numerator())
                self.pacers[core_id] = pacer
                self.governors[core_id] = governor
        if self.enable_arbiter:
            slack = self.config.arbiter_slack_strides * registry.stride_scale
            for controller in system.controllers:
                self.arbiters[controller.mc_id] = PriorityArbiter(
                    registry,
                    slack=slack,
                    row_hits_first=self.config.row_hits_first,
                )

    def mc_policy(self, mc_id: int) -> SchedulingPolicy | None:
        return self.arbiters.get(mc_id)

    def _pacer_for(self, core_id: int, addr: int) -> Pacer | None:
        if self.mc_pacers:
            assert self._address_map is not None
            return self.mc_pacers.get((core_id, self._address_map.mc_of(addr)))
        return self.pacers.get(core_id)

    def request_release(
        self, core_id: int, req: MemoryRequest, release: Callable[[], None]
    ) -> None:
        # inlined _pacer_for: this runs once per L2 miss
        if self.mc_pacers:
            pacer = self.mc_pacers.get(
                (core_id, self._address_map.mc_of(req.addr))
            )
        else:
            pacer = self.pacers.get(core_id)
        if pacer is None:
            self._obs_granted += 1
            release()
        else:
            pacer.request(req, release)

    def on_response(self, core_id: int, req: MemoryRequest) -> None:
        # inlined _pacer_for (once per L2-miss response)
        if self.mc_pacers:
            pacer = self.mc_pacers.get(
                (core_id, self._address_map.mc_of(req.addr))
            )
        else:
            pacer = self.pacers.get(core_id)
        if pacer is None:
            return
        if req.l3_hit:
            pacer.uncharge()
        elif req.caused_writeback:
            pacer.charge_writeback()

    def charge_class_writeback(self, qos_id: int) -> None:
        """Owner accounting: charge one of the owning class's pacers.

        Charges rotate round-robin across the class's cores so no single
        thread absorbs all of the class's writeback budget.
        """
        if not self.enable_governor or self._registry is None:
            return
        cores = self._registry.cores_in_class(qos_id)
        if self.mc_pacers:
            candidates = [
                key for key in sorted(self.mc_pacers) if key[0] in cores
            ]
            if not candidates:
                return
            index = self._wb_rr.get(qos_id, 0) % len(candidates)
            self._wb_rr[qos_id] = index + 1
            self.mc_pacers[candidates[index]].charge_writeback()
            return
        candidates = [c for c in cores if c in self.pacers]
        if not candidates:
            return
        index = self._wb_rr.get(qos_id, 0) % len(candidates)
        self._wb_rr[qos_id] = index + 1
        self.pacers[candidates[index]].charge_writeback()

    def on_epoch(
        self, saturated: bool, per_mc: tuple[bool, ...] | None = None
    ) -> None:
        super().on_epoch(saturated, per_mc)
        if self.mc_governors:
            for (core_id, mc_id), governor in self.mc_governors.items():
                signal = (
                    per_mc[mc_id] if per_mc is not None and mc_id < len(per_mc)
                    else saturated
                )
                governor.on_epoch(signal)
            return
        for governor in self.governors.values():
            governor.on_epoch(saturated)
        if self.governors and self.config.thread_scaling == "demand":
            self._rescale_periods_by_demand()

    def _rescale_periods_by_demand(self) -> None:
        """Section V-B extension: weight Eq. 4 by per-thread demand.

        The paper's mechanism splits a class's allocation evenly across its
        active threads; a class with one busy and one quiet thread then
        strands half its share at the busy thread's pacer.  This variant
        replaces the even split with last-epoch demand weights while
        preserving the class's total rate:

            period_i = class_period x (total_demand / demand_i)

        A thread's period never exceeds ``IDLE_PERIOD_FACTOR`` times its
        even-split value, so an idle thread can always restart.
        """
        assert self._registry is not None
        IDLE_PERIOD_FACTOR = 16
        by_class: dict[int, list[Governor]] = {}
        for governor in self.governors.values():
            by_class.setdefault(governor.qos_id, []).append(governor)
        for qos_id, governors in by_class.items():
            demands = {
                g.core_id: g.pacer.take_epoch_demand() for g in governors
            }
            total = sum(demands.values())
            threads = len(governors)
            if total == 0:
                continue  # keep the even split this epoch
            stride = self._registry.stride(qos_id)
            for governor in governors:
                m = governor.multiplier
                even_num = m * stride * threads
                demand = demands[governor.core_id]
                if demand == 0:
                    num = even_num * IDLE_PERIOD_FACTOR
                else:
                    num = min(
                        (m * stride * total) // demand,
                        even_num * IDLE_PERIOD_FACTOR,
                    )
                governor.pacer.set_period(num)

    def multiplier(self) -> int:
        for governor in self.governors.values():
            return governor.multiplier
        for governor in self.mc_governors.values():
            return governor.multiplier
        return -1

    # ------------------------------------------------------------------
    # uniform observability (mechanism.* namespace)
    # ------------------------------------------------------------------
    @property
    def obs_releases_granted(self) -> int:
        """NoC releases: pacer releases plus direct (unpaced) grants."""
        total = self._obs_granted
        for pacer in self.pacers.values():
            total += pacer.released
        for pacer in self.mc_pacers.values():
            total += pacer.released
        return total

    @property
    def obs_releases_denied(self) -> int:
        """Requests the pacers deferred at least once (token stalls)."""
        total = self._obs_denied
        for pacer in self.pacers.values():
            total += pacer.throttled
        for pacer in self.mc_pacers.values():
            total += pacer.throttled
        return total

    @property
    def obs_writeback_charges(self) -> int:
        """Writeback charges, whichever accounting mode levied them."""
        total = self._obs_writebacks
        for pacer in self.pacers.values():
            total += pacer.writeback_charges
        for pacer in self.mc_pacers.values():
            total += pacer.writeback_charges
        return total

    def register_obs(self, registry) -> None:
        """Expose pacer/governor/arbiter state on the obs registry.

        All providers read counters the components already maintain; the
        only naming subtlety is the per-controller mode, where pacers
        and governors are keyed ``(core, mc)`` and the metric paths gain
        an ``mc`` segment.
        """
        super().register_obs(registry)

        def pacer_obs(name: str, pacer: Pacer) -> None:
            registry.register_counter(f"{name}.released", pacer, "released")
            registry.register_counter(f"{name}.tokens_stalled", pacer, "throttled")
            registry.register_counter(f"{name}.uncharges", pacer, "uncharges")
            registry.register_counter(
                f"{name}.writeback_charges", pacer, "writeback_charges"
            )
            registry.register_gauge(f"{name}.blocked", pacer, "blocked_count")

        def governor_obs(name: str, governor: Governor) -> None:
            registry.register_gauge(f"{name}.multiplier", governor, "multiplier")
            registry.register_counter(f"{name}.epochs", governor.monitor, "epochs")
            registry.register_counter(
                f"{name}.direction_flips", governor.monitor, "direction_flips"
            )

        for core_id, pacer in sorted(self.pacers.items()):
            pacer_obs(f"pacer.c{core_id}", pacer)
        for (core_id, mc_id), pacer in sorted(self.mc_pacers.items()):
            pacer_obs(f"pacer.c{core_id}.mc{mc_id}", pacer)
        for core_id, governor in sorted(self.governors.items()):
            governor_obs(f"governor.c{core_id}", governor)
        for (core_id, mc_id), governor in sorted(self.mc_governors.items()):
            governor_obs(f"governor.c{core_id}.mc{mc_id}", governor)
        for mc_id, arbiter in sorted(self.arbiters.items()):
            registry.register_counter(
                f"arbiter.mc{mc_id}.capped_deadlines", arbiter, "capped_deadlines"
            )
            registry.register_counter(
                f"arbiter.mc{mc_id}.deadline_inversions",
                arbiter,
                "deadline_inversions",
            )
            registry.register_gauge(
                f"arbiter.mc{mc_id}.last_picked_deadline",
                arbiter,
                "last_picked_deadline",
            )

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def multipliers_agree(self) -> bool:
        """The lockstep invariant: same inputs give the same M everywhere.

        In the global-OR design every governor agrees; in the
        per-controller design governors agree *within* each controller's
        group (each group sees its own SAT stream).
        """
        if self.mc_governors:
            by_mc: dict[int, set[int]] = {}
            for (core_id, mc_id), governor in self.mc_governors.items():
                by_mc.setdefault(mc_id, set()).add(governor.multiplier)
            return all(len(values) <= 1 for values in by_mc.values())
        values = {governor.multiplier for governor in self.governors.values()}
        return len(values) <= 1
