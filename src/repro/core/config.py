"""PABST mechanism parameters.

Defaults follow Section III where the paper gives numbers: the rate scale
factor F enabling fractional period changes, the governor's delta-M inertia
of 3 epochs, 16-request pacer bursts, and the arbiter slack cap.  Two
quantities the paper leaves relative to its (unstated) stride magnitudes —
the pacer credit bound and the arbiter slack — are expressed here in
request/stride units; DESIGN.md §3 records the reasoning.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PabstConfig"]


@dataclass(frozen=True, slots=True)
class PabstConfig:
    """Knobs for the governor, pacer, and priority arbiter.

    Attributes
    ----------
    f_scale:
        The constant F of Eq. 3.  ``None`` uses the QoS registry's stride
        scale so ``class_period = M / weight`` cycles, which keeps period
        granularity independent of the stride fixed-point choice.
    inertia:
        Consecutive same-direction epochs before delta-M starts growing.
        The paper quotes 3 for 10 us epochs; with this reproduction's
        shorter epochs (higher SAT lag relative to the epoch) 6 damps the
        M limit-cycle while still re-allocating bandwidth within a few
        epochs (the stability/responsiveness trade-off of Section III-B1).
    dm_max, m_max:
        Caps keeping governor state in small (12-bit-ish) integers.
    burst_requests:
        Pacer credit bound, in requests ("bursts of up to 16 requests").
    arbiter_slack_strides:
        Arbiter deadline cap, in units of the stride scale: an idle class
        can bank at most this many weight-1-request-equivalents of priority.
    row_hits_first:
        Back-end arbiter prefers row hits before deadline order (paper's
        fair FR-FCFS variant; moot under the closed-page default).
    thread_scaling:
        How a class's allocation divides among its threads (Eq. 4).
        ``"equal"`` is the paper's mechanism (stride x active threads);
        ``"demand"`` implements the Section V-B future-work extension,
        weighting each thread by its recent request demand so a class
        with asymmetric threads can still consume its full share.
    per_controller_governors:
        Section III-C1 alternative: instead of one global wired-OR SAT
        driving one governor per source, each source runs one governor per
        memory controller, fed that controller's own SAT signal.  With a
        skewed address interleave this stops a single hot controller from
        throttling traffic bound for idle ones.
    """

    f_scale: int | None = None
    inertia: int = 6
    dm_init: int = 1
    dm_max: int = 512
    m_init: int = 0
    m_max: int = 1 << 13
    burst_requests: int = 16
    arbiter_slack_strides: int = 8
    row_hits_first: bool = True
    thread_scaling: str = "equal"
    per_controller_governors: bool = False

    def __post_init__(self) -> None:
        if self.f_scale is not None and self.f_scale <= 0:
            raise ValueError("f_scale must be positive")
        if self.inertia < 1:
            raise ValueError("inertia must be >= 1")
        if self.dm_init < 1 or self.dm_max < self.dm_init:
            raise ValueError("need 1 <= dm_init <= dm_max")
        if self.m_init < 0 or self.m_max < self.m_init:
            raise ValueError("need 0 <= m_init <= m_max")
        if self.burst_requests < 1:
            raise ValueError("burst_requests must be >= 1")
        if self.arbiter_slack_strides < 1:
            raise ValueError("arbiter_slack_strides must be >= 1")
        if self.thread_scaling not in ("equal", "demand"):
            raise ValueError(
                f"unknown thread_scaling {self.thread_scaling!r}"
            )
        if self.per_controller_governors and self.thread_scaling != "equal":
            raise ValueError(
                "per-controller governors support only equal thread scaling"
            )
