"""PABST mechanism: governor, rate generation, pacer, arbiter, saturation."""

from repro.core.arbiter import PriorityArbiter
from repro.core.config import PabstConfig
from repro.core.governor import Governor, SystemMonitor
from repro.core.pabst import PabstMechanism
from repro.core.pacer import Pacer
from repro.core.saturation import SaturationMonitor

__all__ = [
    "Governor", "PabstConfig", "PabstMechanism", "Pacer",
    "PriorityArbiter", "SaturationMonitor", "SystemMonitor",
]
