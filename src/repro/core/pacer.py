"""PABST pacer (Section III-B3).

The pacer enforces the governor's target period at the source.  It tracks
the next cycle a request may issue (``C_next``) against the current time;
idleness builds bounded credit so bursts proceed unthrottled.

Implementation notes:

* Times are kept scaled by the fixed-point constant F: ``C_next`` advances
  by the exact period numerator (``M x stride x threads``), so fractional
  periods accumulate without drift — this is what Eq. 3's F is for.
* Credit is clamped so ``C_next`` never falls more than
  ``burst_requests x period`` behind now, i.e. at most a 16-request burst
  (DESIGN.md §3 explains the unit choice).
* Cache filtering: an L3 hit *undoes* its charge (:meth:`uncharge`), and a
  response flagged as having caused an L3 writeback is charged one extra
  period (:meth:`charge_writeback`), exactly the paper's approximation of
  scaling the rate by the L2-to-L3 miss ratio.
* The paper's "throttled whenever C_next < C_now" is inverted relative to
  its own credit discussion; requests here are throttled when
  ``C_next > C_now``.

Blocked requests release in FIFO order; a period change (new epoch) or an
uncharge immediately reschedules the head of the queue.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from repro.sim.engine import Engine
from repro.sim.records import MemoryRequest

__all__ = ["Pacer"]


class Pacer:
    """Credit-based rate enforcement for one source (L2 cache)."""

    def __init__(self, engine: Engine, f_scale: int, burst_requests: int = 16) -> None:
        if f_scale <= 0:
            raise ValueError("f_scale must be positive")
        if burst_requests < 1:
            raise ValueError("burst_requests must be >= 1")
        self._engine = engine
        self._den = f_scale
        self._burst = burst_requests
        self._period_num = 0  # numerator of the current source period
        self._cnext_scaled = 0  # C_next x F
        self._blocked: deque[tuple[MemoryRequest, Callable[[], None]]] = deque()
        # identifies the newest armed release event; superseded events
        # dispatch, see a stale token, and return (no Event allocation)
        self._release_token = 0
        self.released = 0
        self.throttled = 0
        self.uncharges = 0
        self.writeback_charges = 0
        self._demand_since_epoch = 0

    # ------------------------------------------------------------------
    # configuration
    # ------------------------------------------------------------------
    @property
    def f_scale(self) -> int:
        return self._den

    @property
    def period_cycles(self) -> float:
        """Current source period in cycles (Eq. 4 evaluated)."""
        return self._period_num / self._den

    @property
    def blocked_count(self) -> int:
        return len(self._blocked)

    def set_period(self, period_numerator: int) -> None:
        """New target period from the governor (numerator over F)."""
        if period_numerator < 0:
            raise ValueError("period numerator must be non-negative")
        self._period_num = period_numerator
        self._reschedule()

    # ------------------------------------------------------------------
    # request path
    # ------------------------------------------------------------------
    def take_epoch_demand(self) -> int:
        """Requests that arrived since the last call (demand estimator).

        Feeds the heterogeneous thread-scaling extension (Section V-B):
        the mechanism reads each source's demand once per epoch to weight
        the class allocation across its threads.
        """
        demand = self._demand_since_epoch
        self._demand_since_epoch = 0
        return demand

    def request(self, req: MemoryRequest, release: Callable[[], None]) -> None:
        """Ask to issue ``req``; ``release`` fires when the pacer allows it."""
        self._demand_since_epoch += 1
        # inlined _allowed_now() + _charge(): this runs once per L2 miss
        # across every core, where the three helper frames are measurable
        now_scaled = self._engine._now * self._den
        if not self._blocked and self._cnext_scaled <= now_scaled:
            floor = now_scaled - self._burst * self._period_num
            if self._cnext_scaled < floor:
                self._cnext_scaled = floor
            self._cnext_scaled += self._period_num
            self.released += 1
            release()
            return
        self.throttled += 1
        self._blocked.append((req, release))
        self._reschedule()

    def uncharge(self) -> None:
        """Undo one charge: the request was filtered by the shared cache."""
        self.uncharges += 1
        self._cnext_scaled -= self._period_num
        self._clamp_credit()
        self._reschedule()

    def charge_writeback(self) -> None:
        """Charge one extra period for an L3 writeback this class caused."""
        self.writeback_charges += 1
        self._charge()
        self._reschedule()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _now_scaled(self) -> int:
        return self._engine._now * self._den

    def _allowed_now(self) -> bool:
        return self._cnext_scaled <= self._now_scaled()

    def _clamp_credit(self) -> None:
        floor = self._now_scaled() - self._burst * self._period_num
        if self._cnext_scaled < floor:
            self._cnext_scaled = floor

    def _charge(self) -> None:
        self._clamp_credit()
        self._cnext_scaled += self._period_num

    def _release_time(self) -> int:
        """Earliest cycle the head of the blocked queue may issue."""
        num = self._cnext_scaled
        den = self._den
        return max(self._engine._now, -(-num // den))

    def _reschedule(self) -> None:
        self._release_token += 1  # invalidate any armed release event
        if not self._blocked:
            return
        when = self._release_time()
        if when <= self._engine._now:
            self._release_now()
        else:
            self._engine.post_at(when, self._release_head, self._release_token)

    def _release_head(self, token: int) -> None:  # repro: native-kernel
        if token != self._release_token:
            return  # superseded by a reschedule since this event was armed
        self._release_now()

    def _release_now(self) -> None:  # repro: hot-kernel
        # inlined _allowed_now()/_charge(): the drain loop runs once per
        # throttled request, where the helper frames are measurable.  The
        # clamped C_next is written back before each release() so any
        # re-entrant charge/uncharge sees consistent state, and re-read
        # after for the same reason.
        blocked = self._blocked
        den = self._den
        period = self._period_num
        burst_span = self._burst * period
        now_scaled = self._engine._now * den
        while blocked and self._cnext_scaled <= now_scaled:
            _, release = blocked.popleft()
            cnext = self._cnext_scaled
            floor = now_scaled - burst_span
            if cnext < floor:
                cnext = floor
            self._cnext_scaled = cnext + period
            self.released += 1
            release()
        if blocked:
            self._release_token += 1
            self._engine.post_at(
                self._release_time(), self._release_head, self._release_token
            )
