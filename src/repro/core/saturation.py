"""Saturation monitor (paper Section III-C1).

Each memory controller integrates its front-end read-queue occupancy over
the epoch; if the average exceeds half the queue capacity the controller
raises SAT.  The per-controller signals are combined with a wired-OR and
broadcast to every governor at the epoch boundary.  The paper notes this
global OR assumes a uniform address hash (which our
:class:`~repro.sim.topology.AddressMap` provides); per-controller governors
are the alternative it sketches.
"""

from __future__ import annotations

from typing import Sequence

from repro.dram.controller import MemoryController

__all__ = ["SaturationMonitor"]


class SaturationMonitor:
    """Wired-OR of per-controller queue-occupancy threshold checks."""

    def __init__(
        self,
        controllers: Sequence[MemoryController],
        threshold_fraction: float = 0.5,
    ) -> None:
        if not controllers:
            raise ValueError("need at least one memory controller")
        if not 0.0 < threshold_fraction <= 1.0:
            raise ValueError("threshold_fraction must be in (0, 1]")
        self._controllers = list(controllers)
        self._threshold_fraction = threshold_fraction
        self.last_occupancies: list[float] = [0.0] * len(self._controllers)
        self.last_signals: list[bool] = [False] * len(self._controllers)
        self.last_signal = False

    def sample(self) -> bool:
        """Close the epoch window on every controller and OR the signals.

        The per-controller signals are kept in :attr:`last_signals` for the
        per-controller-governor alternative (Section III-C1); the wired-OR
        value is what the paper's baseline design broadcasts.
        """
        return self.apply(
            [
                controller.sample_read_occupancy()
                for controller in self._controllers
            ]
        )

    def apply(self, occupancies: Sequence[float]) -> bool:
        """Threshold + wired-OR over externally sampled occupancies.

        Split out from :meth:`sample` so a sharded run can feed the
        occupancies its target shards shipped at the epoch barrier
        through the *identical* threshold arithmetic the single-process
        monitor uses.
        """
        saturated = False
        for index, controller in enumerate(self._controllers):
            occupancy = occupancies[index]
            self.last_occupancies[index] = occupancy
            threshold = self._threshold_fraction * controller.read_queue_capacity
            signal = occupancy > threshold
            self.last_signals[index] = signal
            saturated = saturated or signal
        self.last_signal = saturated
        return saturated
