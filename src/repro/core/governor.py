"""PABST governor: system monitor state machine (Fig. 4, Tables I-II).

Every L2 cache has a governor.  All governors run this algorithm in
lockstep from the same two inputs — the epoch heartbeat and the wired-OR
SAT signal — so, without any communication, they compute identical
multipliers ``M`` and therefore request rates in exactly the configured
proportions (Eq. 5; ``tests/core/test_governor.py`` asserts the lockstep
property directly).

State (Table I):

* ``M``   — throttling multiplier; scales every class's request period, so
            raising M lowers every rate while preserving the ratios.
* ``dM``  — magnitude of the next change in M.
* ``E``   — consecutive epochs without a direction flip.
* phase   — the current direction of the goal rate and of ``dM``.

Transitions (reconstructed from the Section III-B1 prose; the paper's
Table II is corrupt in the available text — see DESIGN.md §3):

* SAT high -> M rises (less traffic); SAT low -> M falls (more traffic).
* A direction flip shrinks ``dM`` exponentially (``dM >>= 2``, floor 1)
  and resets ``E`` — noisy SAT means the system hovers near the ideal
  rate, so steps should be small.
* After ``inertia`` consecutive same-direction epochs ``dM`` doubles each
  epoch (cap ``dm_max``) — steady SAT means demand moved, so converge fast.

Everything is shifts and adds on small integers, as required.
"""

from __future__ import annotations

from repro.core.config import PabstConfig
from repro.core.pacer import Pacer
from repro.qos.classes import QoSRegistry

__all__ = ["Governor", "SystemMonitor"]


class SystemMonitor:
    """The M / delta-M / E state machine shared (by construction) by all governors."""

    def __init__(self, config: PabstConfig) -> None:
        self._config = config
        self.m = config.m_init
        self.dm = config.dm_init
        self.e = 0
        self.rate_direction_up = True  # "up" = driving more traffic (M falling)
        self.epochs = 0  # heartbeats observed (obs counter)
        self.direction_flips = 0  # SAT direction reversals (obs counter)

    @property
    def phase(self) -> str:
        """Human-readable phase label in the spirit of Table II."""
        rate = "rate-up" if self.rate_direction_up else "rate-down"
        dm = "dm-up" if self.e >= self._config.inertia else "dm-down"
        return f"{rate}/{dm}"

    def on_epoch(self, saturated: bool) -> int:
        """Advance one epoch; returns the new multiplier M."""
        config = self._config
        self.epochs += 1
        direction_up = not saturated
        if direction_up == self.rate_direction_up:
            self.e += 1
            if self.e >= config.inertia:
                self.dm = min(self.dm << 1, config.dm_max)
        else:
            self.e = 0
            self.dm = max(1, self.dm >> 2)
            self.rate_direction_up = direction_up
            self.direction_flips += 1
        if saturated:
            self.m = min(self.m + self.dm, config.m_max)
        else:
            self.m = max(self.m - self.dm, 0)
        return self.m


class Governor:
    """Per-source governor: system monitor plus rate generator (Eqs. 3-4).

    The rate generator turns the global multiplier into a class- and
    thread-scaled request period for this source's pacer:

        class_period_c  = (M x stride_c) / F                       (Eq. 3)
        source_period_c = class_period_c x threads_c               (Eq. 4)

    Periods are kept as exact rationals (numerator over F) so the pacer
    never accumulates rounding drift; F is the fractional-rate constant.
    """

    def __init__(
        self,
        core_id: int,
        qos_id: int,
        registry: QoSRegistry,
        config: PabstConfig,
        pacer: Pacer,
    ) -> None:
        self.core_id = core_id
        self.qos_id = qos_id
        self._registry = registry
        self._config = config
        self.monitor = SystemMonitor(config)
        self.pacer = pacer

    @property
    def multiplier(self) -> int:
        return self.monitor.m

    def source_period_numerator(self) -> int:
        """Numerator of Eq. 4 (denominator is the pacer's F)."""
        stride = self._registry.stride(self.qos_id)
        threads = max(1, self._registry.threads_in_class(self.qos_id))
        return self.monitor.m * stride * threads

    def on_epoch(self, saturated: bool) -> None:
        """Heartbeat: update M and push the new period to the pacer."""
        self.monitor.on_epoch(saturated)
        self.pacer.set_period(self.source_period_numerator())
