"""Command-line interface: run the paper's experiments from a shell.

Usage::

    python -m repro list
    python -m repro run fig05 [--quick] [--seed N] [--sanitize]
    python -m repro run-all [--quick]
    python -m repro sweep fig07 [--quick] [--workers N] [--no-cache]
                          [--warm-start] [--backend {pure,c,auto}]
    python -m repro arena [--quick] [--mechanisms a,b] [--scenarios x,y]
                          [--workers N] [--output PATH] [--shards N]
                          [--backend {pure,c,auto}]
    python -m repro checkpoint fig05 [--quick] [--seed N] | --stats | --clear
    python -m repro cache [--stats] [--clear]
    python -m repro trace fig05 [--quick] [--seed N] [--output PATH]
                          [--buffer N] [--metrics PATH] [--sanitize]
                          [--backend {pure,c,auto}]
    python -m repro bench [figs ...] [--quick] [--check BASELINE]
                          [--repeat N] [--update] [--no-history]
                          [--backend {pure,c,auto}]
    python -m repro profile fig05 [--quick] [--top N] [--output PATH]
                          [--backend {pure,c,auto}]
    python -m repro accel [info|build]
    python -m repro info
    python -m repro lint [paths ...] [--format {text,json,sarif}] [--fix]
                         [--list-rules] [--timings] [--no-cache]

``--sanitize`` attaches the runtime invariant checker
(:mod:`repro.sim.sanitizer`) to every system the experiment builds;
``lint`` runs the determinism linter — per-file rules plus the
whole-program analysis pass (:mod:`repro.devtools.lint`,
:mod:`repro.devtools.analysis`); all flags after ``lint`` are forwarded
to the linter.
``sweep --warm-start`` simulates each warm-up prefix once and forks the
remaining cells from its checkpoint (:mod:`repro.runner.checkpoint`);
``checkpoint`` pre-populates those snapshots, and ``cache`` reports or
clears everything under ``.repro-cache/`` (plus any tolerated cache I/O
warnings counted by :mod:`repro.obs.warnings`).  ``trace`` re-runs one
experiment with the request tracer attached (:mod:`repro.obs.trace`) and
writes Chrome trace-event JSON viewable in Perfetto or chrome://tracing.
``--backend`` selects the engine implementation (:mod:`repro.accel`):
``pure`` is the always-available reference, ``c`` compiles and loads the
extension (an error when no toolchain is present), and ``auto`` uses a
prebuilt extension when one exists and degrades to ``pure`` otherwise;
``accel`` builds the extension or reports its status.

Each experiment prints the same report table/series its benchmark asserts
against; see EXPERIMENTS.md for the paper-vs-measured record.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable

from repro.experiments import (
    arena,
    fig01_motivation,
    fig05_proportional,
    fig06_work_conserving,
    fig07_source_and_target,
    fig08_excess,
    fig09_memcached,
    fig10_isolation,
    fig11_iaas,
    fig12_efficiency,
    soc256,
)

__all__ = ["EXPERIMENTS", "main"]

EXPERIMENTS: dict[str, tuple[Callable, str]] = {
    "fig01": (fig01_motivation.run,
              "source- vs target-only regulation on both mixes"),
    "fig05": (fig05_proportional.run,
              "proportional allocation: two stream classes at 7:3"),
    "fig06": (fig06_work_conserving.run,
              "work conservation with a phase-alternating streamer"),
    "fig07": (fig07_source_and_target.run,
              "PABST vs its source-only and target-only halves"),
    "fig08": (fig08_excess.run,
              "proportional redistribution of unused bandwidth"),
    "fig09": (fig09_memcached.run,
              "memcached service-time distribution under co-location"),
    "fig10": (fig10_isolation.run,
              "SPEC weighted slowdown vs a streaming aggressor"),
    "fig11": (fig11_iaas.run,
              "IaaS consolidation vs a static bandwidth partition"),
    "fig12": (fig12_efficiency.run,
              "memory-efficiency cost of bandwidth QoS"),
    "soc256": (soc256.run,
               "256-core/32-MC scale-out run (sharded-runner workload)"),
    "arena": (arena.run,
              "every QoS mechanism head-to-head over the scenario matrix"),
}


def _cmd_list(_args: argparse.Namespace) -> int:
    width = max(len(name) for name in EXPERIMENTS)
    for name, (_, description) in EXPERIMENTS.items():
        print(f"{name:<{width}}  {description}")
    return 0


def _run_experiment(name: str, quick: bool, seed: int, sanitize: bool = False) -> None:
    from repro.experiments.common import sanitized

    runner, description = EXPERIMENTS[name]
    mode = "quick" if quick else "full"
    suffix = ", sanitized" if sanitize else ""
    print(f"== {name} ({mode}{suffix}): {description}")
    started = time.perf_counter()
    with sanitized(sanitize):
        result = runner(quick=quick, seed=seed)
    elapsed = time.perf_counter() - started
    print(result.report())
    print(f"[{elapsed:.1f}s]")


def _cmd_run(args: argparse.Namespace) -> int:
    if args.experiment not in EXPERIMENTS:
        known = ", ".join(EXPERIMENTS)
        print(f"unknown experiment {args.experiment!r}; known: {known}",
              file=sys.stderr)
        return 2
    _run_experiment(args.experiment, args.quick, args.seed, args.sanitize)
    return 0


def _cmd_run_all(args: argparse.Namespace) -> int:
    for index, name in enumerate(EXPERIMENTS):
        if index:
            print()
        _run_experiment(name, args.quick, args.seed, args.sanitize)
    return 0


def _checkpoint_dir(cache_dir: str) -> str:
    from pathlib import Path

    return str(Path(cache_dir) / "checkpoints")


def _resolve_backend(name: str) -> str | None:
    """Resolve ``--backend`` at the CLI boundary; None (+stderr) on failure.

    Specs carry the *resolved* name, so cache entries and bench records
    never say "auto" — they say which backend actually ran.
    """
    from repro import accel

    try:
        return accel.resolve_backend(name)
    except accel.AccelUnavailable as exc:
        print(f"--backend={name} unavailable: {exc}", file=sys.stderr)
        return None


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.runner import ResultCache, run_specs, specs_for_figure

    if args.experiment not in EXPERIMENTS:
        known = ", ".join(EXPERIMENTS)
        print(f"unknown experiment {args.experiment!r}; known: {known}",
              file=sys.stderr)
        return 2
    if args.shards > 1 and args.warm_start:
        print("--shards and --warm-start are incompatible: a checkpoint "
              "captures one engine, not a shard ensemble", file=sys.stderr)
        return 2
    backend = _resolve_backend(args.backend)
    if backend is None:
        return 2
    specs = specs_for_figure(
        args.experiment, quick=args.quick, seed=args.seed, shards=args.shards,
        backend=backend,
    )
    cache = ResultCache(args.cache_dir)
    started = time.perf_counter()
    outcomes = run_specs(
        specs,
        workers=args.workers,
        timeout=args.timeout,
        cache=cache,
        use_cache=not args.no_cache,
        progress=print,
        warm_start_dir=(
            _checkpoint_dir(args.cache_dir) if args.warm_start else None
        ),
    )
    elapsed = time.perf_counter() - started

    failures = 0
    for outcome in outcomes:
        print()
        origin = "cached" if outcome.cached else "fresh"
        if outcome.ok:
            rate = outcome.result.get("events_per_sec", 0.0)
            print(f"== {outcome.spec.label()} ({origin}, "
                  f"{rate:,.0f} events/s)")
            print(outcome.result["report"])
        else:
            failures += 1
            print(f"== {outcome.spec.label()} FAILED: {outcome.error}")
    hits = sum(1 for o in outcomes if o.cached)
    print()
    print(f"[{len(outcomes)} cell(s), {hits} cached, {failures} failed, "
          f"{elapsed:.1f}s, workers={args.workers}, backend={backend}]")
    return 1 if failures else 0


def _split_csv(value: str | None, default: tuple[str, ...]) -> tuple[str, ...]:
    if value is None:
        return default
    return tuple(name.strip() for name in value.split(",") if name.strip())


def _cmd_arena(args: argparse.Namespace) -> int:
    import json

    from repro.mechanisms import ALL_MECHANISMS
    from repro.runner import ResultCache, run_specs
    from repro.runner.spec import RunSpec

    mechanisms = _split_csv(args.mechanisms, ALL_MECHANISMS)
    scenarios = _split_csv(args.scenarios, arena.SCENARIOS)
    unknown = [name for name in mechanisms if name not in ALL_MECHANISMS]
    if unknown:
        known = ", ".join(ALL_MECHANISMS)
        print(f"unknown mechanism(s) {unknown}; known: {known}",
              file=sys.stderr)
        return 2
    unknown = [name for name in scenarios if name not in arena.SCENARIOS]
    if unknown:
        known = ", ".join(arena.SCENARIOS)
        print(f"unknown scenario(s) {unknown}; known: {known}",
              file=sys.stderr)
        return 2
    backend = _resolve_backend(args.backend)
    if backend is None:
        return 2
    # One (scenario, mechanism) cell per spec so the pool parallelizes the
    # matrix and the cache re-serves individual head-to-heads.
    specs = [
        RunSpec(
            figure="arena",
            cell={"scenarios": (scenario,), "mechanisms": (mechanism,)},
            seed=args.seed,
            quick=args.quick,
            shards=args.shards,
            backend=backend,
        )
        for scenario in scenarios
        for mechanism in mechanisms
    ]
    cache = ResultCache(args.cache_dir)
    started = time.perf_counter()
    outcomes = run_specs(
        specs,
        workers=args.workers,
        timeout=args.timeout,
        cache=cache,
        use_cache=not args.no_cache,
        progress=print,
    )
    elapsed = time.perf_counter() - started
    failures = 0
    documents = []
    for outcome in outcomes:
        if not outcome.ok:
            failures += 1
            print(f"== {outcome.spec.label()} FAILED: {outcome.error}",
                  file=sys.stderr)
            continue
        document = outcome.result.get("metrics")
        if document is None:
            failures += 1
            print(f"== {outcome.spec.label()} returned no metrics document",
                  file=sys.stderr)
            continue
        documents.append(document)
    if not documents:
        print("no arena cells completed", file=sys.stderr)
        return 1
    merged = arena.merge_documents(documents)
    cells = arena.validate_report(merged)
    print(arena.comparative_report(merged))
    hits = sum(1 for o in outcomes if o.cached)
    print()
    print(f"[{cells} cell(s): {len(merged['mechanisms'])} mechanism(s) x "
          f"{len(merged['scenarios'])} scenario(s), {hits} cached, "
          f"{failures} failed, {elapsed:.1f}s, workers={args.workers}, "
          f"backend={backend}]")
    if args.output is not None:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(merged, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"[wrote {args.output}]")
    return 1 if failures else 0


def _cmd_checkpoint(args: argparse.Namespace) -> int:
    from repro.runner import specs_for_figure
    from repro.runner.checkpoint import CheckpointStore
    from repro.runner.worker import execute_spec

    store = CheckpointStore(_checkpoint_dir(args.cache_dir))
    if args.stats or args.clear:
        if args.clear:
            print(f"[removed {store.clear()} checkpoint(s)]")
        if args.stats:
            stats = store.stats()
            print(f"{stats['directory']}: {stats['entries']} checkpoint(s), "
                  f"{stats['bytes']:,} bytes (cap {stats['max_entries']})")
        return 0
    if args.experiment is None:
        print("checkpoint needs an experiment name (or --stats/--clear)",
              file=sys.stderr)
        return 2
    if args.experiment not in EXPERIMENTS:
        known = ", ".join(EXPERIMENTS)
        print(f"unknown experiment {args.experiment!r}; known: {known}",
              file=sys.stderr)
        return 2
    specs = specs_for_figure(args.experiment, quick=args.quick, seed=args.seed)
    leaders = {spec.warmup_group_key(): spec for spec in specs}
    started = time.perf_counter()
    failures = 0
    for spec in leaders.values():
        result = execute_spec(spec, warm_start_dir=str(store.directory))
        if result.get("ok"):
            print(f"ok   {spec.label()}")
        else:
            failures += 1
            print(f"FAIL {spec.label()}: {result.get('error')}")
    elapsed = time.perf_counter() - started
    print(f"[{len(leaders)} warm-up prefix(es) for {len(specs)} cell(s), "
          f"{len(store)} stored, {failures} failed, {elapsed:.1f}s]")
    return 1 if failures else 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.obs.warnings import warning_counts
    from repro.runner import ResultCache
    from repro.runner.checkpoint import CheckpointStore

    cache = ResultCache(args.cache_dir)
    store = CheckpointStore(_checkpoint_dir(args.cache_dir))
    if args.clear:
        print(f"[removed {cache.clear()} result(s), "
              f"{store.clear()} checkpoint(s)]")
    # default (and --stats): report both stores' footprints
    for stats, kind in ((cache.stats(), "result(s)"),
                        (store.stats(), "checkpoint(s)")):
        print(f"{stats['directory']}: {stats['entries']} {kind}, "
              f"{stats['bytes']:,} bytes (cap {stats['max_entries']})")
    warnings = warning_counts()
    if warnings:
        print("warnings (tolerated I/O failures this process):")
        for name in sorted(warnings):
            print(f"  {name}: {warnings[name]}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.obs import JsonlSink, RequestTracer, write_chrome_trace
    from repro.experiments.common import sanitized, traced

    if args.experiment not in EXPERIMENTS:
        known = ", ".join(EXPERIMENTS)
        print(f"unknown experiment {args.experiment!r}; known: {known}",
              file=sys.stderr)
        return 2
    from repro import accel

    backend = _resolve_backend(args.backend)
    if backend is None:
        return 2
    runner, description = EXPERIMENTS[args.experiment]
    mode = "quick" if args.quick else "full"
    print(f"== {args.experiment} ({mode}, traced, backend={backend}): "
          f"{description}")
    tracer = RequestTracer(capacity=args.buffer)
    sinks = []
    metrics_sink = None
    if args.metrics is not None:
        metrics_sink = JsonlSink(args.metrics)
        sinks.append(metrics_sink)
    started = time.perf_counter()
    try:
        with accel.backend(backend), sanitized(args.sanitize), \
                traced(tracer, sinks):
            result = runner(quick=args.quick, seed=args.seed)
    finally:
        if metrics_sink is not None:
            metrics_sink.close()
    elapsed = time.perf_counter() - started
    print(result.report())
    output = (
        Path(args.output)
        if args.output is not None
        else Path(f"trace_{args.experiment}.json")
    )
    document = tracer.to_chrome_trace()
    write_chrome_trace(output, document)
    print(f"[{elapsed:.1f}s]")
    print(f"[{tracer.recorded:,} transitions recorded, "
          f"{tracer.dropped:,} dropped by the ring, "
          f"{len(document['traceEvents']):,} trace events]")
    print(f"[wrote {output} — open in Perfetto or chrome://tracing]")
    if metrics_sink is not None:
        print(f"[wrote {metrics_sink.published} epoch record(s) "
              f"to {args.metrics}]")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    import json

    from repro.runner.bench import (
        BASELINE_PATH,
        append_history,
        check_against_baseline,
        default_bench_path,
        run_bench,
        run_warm_start_bench,
        write_bench,
    )

    figures = args.figures or list(EXPERIMENTS)
    unknown = [name for name in figures if name not in EXPERIMENTS]
    if unknown:
        known = ", ".join(EXPERIMENTS)
        print(f"unknown experiment(s) {unknown}; known: {known}",
              file=sys.stderr)
        return 2
    backend = _resolve_backend(args.backend)
    if backend is None:
        return 2
    document = run_bench(
        figures, quick=args.quick, seed=args.seed, repeat=args.repeat,
        shards=args.shards, backend=backend,
    )
    fingerprint = document.get("accel_fingerprint")
    tag = f", build {fingerprint}" if fingerprint else ""
    print(f"[backend: {document['backend']}{tag}]")
    failures = 0
    for figure, entry in document["figures"].items():
        if entry.get("ok"):
            print(f"{figure:<8} {entry['wall_seconds']:>8.2f}s  "
                  f"{entry['events']:>12,} events  "
                  f"{entry['events_per_sec']:>12,.0f} events/s")
            sharding = entry.get("sharding")
            if sharding is not None:
                if sharding.get("ok"):
                    print(f"{'':<8} sharded x{sharding['shards']}: "
                          f"{sharding['wall_seconds']:.2f}s  "
                          f"({sharding['speedup']:.2f}x, "
                          f"{sharding['cpu_count']} cpu(s), byte-identical)")
                else:
                    failures += 1
                    print(f"{'':<8} sharded x{sharding.get('shards')} FAILED: "
                          f"{sharding.get('error')}")
            compiled = entry.get("compiled")
            if compiled is not None:
                if compiled.get("ok"):
                    rate = compiled.get("fastpath_hit_rate")
                    coverage = (
                        f", fast-path {rate:.2%}" if rate is not None else ""
                    )
                    print(f"{'':<8} vs pure: "
                          f"{compiled['pure_wall_seconds']:.2f}s pure  "
                          f"({compiled['speedup_vs_pure']:.2f}x compiled, "
                          f"byte-identical{coverage})")
                else:
                    failures += 1
                    print(f"{'':<8} vs pure FAILED: {compiled.get('error')}")
        else:
            print(f"{figure:<8} FAILED: {entry.get('error')}")

    if not args.no_warm_start:
        warm = run_warm_start_bench(
            "fig05", quick=True, seed=args.seed, repeat=args.repeat
        )
        document["warm_start"] = warm
        if warm.get("ok"):
            print(f"warm-start fig05 sweep: cold {warm['cold_seconds']:.2f}s"
                  f" -> warm {warm['warm_seconds']:.2f}s"
                  f"  ({warm['speedup']:.2f}x, {warm['cells']} cells)")
        else:
            print(f"warm-start fig05 sweep FAILED: {warm.get('error')}")

    if args.check is not None:
        with open(args.check, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
        problems = check_against_baseline(
            document, baseline, tolerance=args.tolerance
        )
        for problem in problems:
            print(f"REGRESSION {problem}", file=sys.stderr)
        if problems:
            return 1
        print(f"[within {args.tolerance:.0%} of {args.check}]")

    if args.update:
        output = BASELINE_PATH
    elif args.output is not None:
        output = args.output
    else:
        output = default_bench_path()
    path = write_bench(document, output)
    print(f"[wrote {path}]")
    if not args.no_history:
        history = append_history(document)
        print(f"[appended to {history}]")
    return 1 if failures else 0


def _cmd_profile(args: argparse.Namespace) -> int:
    import json

    from repro.runner.bench import run_profile, write_bench

    if args.experiment not in EXPERIMENTS:
        known = ", ".join(EXPERIMENTS)
        print(f"unknown experiment {args.experiment!r}; known: {known}",
              file=sys.stderr)
        return 2
    backend = _resolve_backend(args.backend)
    if backend is None:
        return 2
    report = run_profile(
        args.experiment, quick=args.quick, seed=args.seed, top=args.top,
        backend=backend,
    )
    if not report["ok"]:
        print(f"{args.experiment} FAILED: {report.get('error')}", file=sys.stderr)
        return 1
    fingerprint = report.get("accel_fingerprint")
    tag = f", build {fingerprint}" if fingerprint else ""
    print(f"[backend: {report['backend']}{tag}]")
    print(f"{args.experiment:<8} {report['wall_seconds']:>8.2f}s (profiled)  "
          f"{report['events']:>12,} events  "
          f"{report['events_per_sec']:>12,.0f} events/s")
    fastpath = report.get("fastpath")
    if fastpath is not None:
        print(f"  fast-path: {fastpath['hits']:,} hits / "
              f"{fastpath['misses']:,} misses "
              f"({fastpath['hit_rate']:.2%} native dispatch)")
        kinds = sorted(
            fastpath.get("kinds", {}).items(), key=lambda kv: -kv[1]
        )
        for tag, count in kinds:
            print(f"    {tag:<24} {count:>12,}")
    for spot in report["hotspots"][:10]:
        location = f"{spot['file']}:{spot['line']}"
        print(f"  {spot['tottime']:>8.3f}s  {spot['function']:<28} {location}")
    if args.output is not None:
        path = write_bench(report, args.output)
        print(f"[wrote {path}]")
    else:
        print(json.dumps(report, indent=2, sort_keys=True))
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.devtools import lint

    # An explicit argv list: passing None would make lint.main re-parse
    # sys.argv and mistake the "lint" verb for a path.  Everything after
    # the verb (paths and lint flags alike) forwards verbatim, so
    # ``repro lint --format=sarif src`` works without mirroring the
    # linter's option surface here.
    return lint.main(args.lint_args or ["src", "tests"])


def _cmd_accel(args: argparse.Namespace) -> int:
    from repro import accel
    from repro.accel import build as build_mod

    if args.action == "build":
        try:
            path = build_mod.build()
        except accel.AccelUnavailable as exc:
            print(f"accel build failed: {exc}", file=sys.stderr)
            return 1
        print(f"[built {path}]")
        return 0
    # info (the default): status without side effects — never compiles
    path = build_mod.artifact_path()
    cc = build_mod.compiler()
    print(f"source:      {build_mod.SOURCE_PATH}")
    print(f"fingerprint: {build_mod.source_fingerprint()}")
    print(f"compiler:    {cc if cc else 'none found (tried gcc, cc, clang)'}")
    print(f"artifact:    {path} "
          f"({'present' if path.exists() else 'not built'})")
    print(f"auto resolves to: {accel.resolve_backend('auto')}")
    from repro.accel import native

    kinds = native.native_kinds()
    print(f"native kinds ({len(kinds)}, manifest "
          f"{native.manifest_digest()}):")
    for qualname, tag in sorted(kinds.items(), key=lambda kv: kv[1]):
        print(f"  {tag:<24} {qualname}")
    stats = accel.fastpath_stats()
    total = stats["hits"] + stats["misses"]
    if total:
        print(f"fast-path this process: {stats['hits']:,} hits / "
              f"{stats['misses']:,} misses "
              f"({stats['hits'] / total:.2%})")
    return 0


def _cmd_info(_args: argparse.Namespace) -> int:
    from repro import SPEC_PROFILES, SystemConfig, __version__

    config = SystemConfig.default_experiment()
    paper = SystemConfig.paper_32core()
    print(f"repro {__version__} - PABST (HPCA 2017) reproduction")
    print()
    print("default experiment machine:")
    print(f"  cores={config.cores}  mcs={config.num_mcs}  "
          f"peak={config.peak_bandwidth:.0f} B/cycle  "
          f"epoch={config.epoch_cycles} cycles")
    print("paper Table III machine:")
    print(f"  cores={paper.cores}  mcs={paper.num_mcs}  "
          f"peak={paper.peak_bandwidth:.0f} B/cycle  "
          f"epoch={paper.epoch_cycles} cycles")
    print()
    print("SPEC CPU2006 proxies:", ", ".join(sorted(SPEC_PROFILES)))
    return 0


def _add_backend_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--backend", choices=("pure", "c", "auto"), default="pure",
        help="engine implementation: the pure-Python reference, the "
             "compiled C extension (built on demand; errors without a "
             "toolchain), or auto (a prebuilt extension when present, "
             "else pure)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the PABST (HPCA 2017) evaluation figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments").set_defaults(
        func=_cmd_list
    )

    run = sub.add_parser("run", help="run one experiment")
    run.add_argument("experiment", help="experiment name, e.g. fig05")
    run.add_argument("--quick", action="store_true",
                     help="reduced scale (seconds instead of minutes)")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--sanitize", action="store_true",
                     help="enable the runtime invariant sanitizer")
    run.set_defaults(func=_cmd_run)

    run_all = sub.add_parser("run-all", help="run every experiment")
    run_all.add_argument("--quick", action="store_true")
    run_all.add_argument("--seed", type=int, default=0)
    run_all.add_argument("--sanitize", action="store_true",
                         help="enable the runtime invariant sanitizer")
    run_all.set_defaults(func=_cmd_run_all)

    sweep = sub.add_parser(
        "sweep", help="run one experiment's grid cells in parallel"
    )
    sweep.add_argument("experiment", help="experiment name, e.g. fig07")
    sweep.add_argument("--quick", action="store_true",
                       help="reduced scale (seconds instead of minutes)")
    sweep.add_argument("--seed", type=int, default=0)
    sweep.add_argument("--workers", type=int, default=1,
                       help="worker processes (1 = run in-process)")
    sweep.add_argument("--timeout", type=float, default=None,
                       help="per-cell timeout in seconds")
    sweep.add_argument("--no-cache", action="store_true",
                       help="ignore cached results (still refreshes them)")
    sweep.add_argument("--cache-dir", default=".repro-cache",
                       help="result cache directory (default: .repro-cache)")
    sweep.add_argument("--warm-start", action="store_true",
                       help="simulate each warm-up prefix once and fork the "
                            "remaining cells from its checkpoint")
    sweep.add_argument("--shards", type=int, default=1,
                       help="partition each cell's machine across N engines "
                            "synchronized in conservative windows "
                            "(byte-identical reports; incompatible with "
                            "--warm-start)")
    _add_backend_argument(sweep)
    sweep.set_defaults(func=_cmd_sweep)

    arena_cmd = sub.add_parser(
        "arena",
        help="run every QoS mechanism head-to-head over the scenario "
             "matrix and print a comparative report",
    )
    arena_cmd.add_argument("--quick", action="store_true",
                           help="reduced scale (seconds instead of minutes)")
    arena_cmd.add_argument("--seed", type=int, default=0)
    arena_cmd.add_argument("--mechanisms", default=None,
                           help="comma-separated mechanism subset "
                                "(default: every registered mechanism)")
    arena_cmd.add_argument("--scenarios", default=None,
                           help="comma-separated scenario subset "
                                "(default: the full matrix)")
    arena_cmd.add_argument("--workers", type=int, default=1,
                           help="worker processes (1 = run in-process)")
    arena_cmd.add_argument("--timeout", type=float, default=None,
                           help="per-cell timeout in seconds")
    arena_cmd.add_argument("--no-cache", action="store_true",
                           help="ignore cached results (still refreshes them)")
    arena_cmd.add_argument("--cache-dir", default=".repro-cache",
                           help="result cache directory "
                                "(default: .repro-cache)")
    arena_cmd.add_argument("--shards", type=int, default=1,
                           help="partition each cell's machine across N "
                                "engines (byte-identical reports)")
    arena_cmd.add_argument("--output", default=None,
                           help="also write the merged repro.arena/v1 JSON "
                                "document to this path")
    _add_backend_argument(arena_cmd)
    arena_cmd.set_defaults(func=_cmd_arena)

    checkpoint = sub.add_parser(
        "checkpoint",
        help="pre-populate warm-up checkpoints for a figure's sweep grid",
    )
    checkpoint.add_argument("experiment", nargs="?", default=None,
                            help="experiment name, e.g. fig05")
    checkpoint.add_argument("--quick", action="store_true",
                            help="reduced scale (seconds instead of minutes)")
    checkpoint.add_argument("--seed", type=int, default=0)
    checkpoint.add_argument("--cache-dir", default=".repro-cache",
                            help="cache directory holding checkpoints/ "
                                 "(default: .repro-cache)")
    checkpoint.add_argument("--stats", action="store_true",
                            help="report the checkpoint store's footprint")
    checkpoint.add_argument("--clear", action="store_true",
                            help="delete every stored checkpoint")
    checkpoint.set_defaults(func=_cmd_checkpoint)

    cache = sub.add_parser(
        "cache", help="report or clear the result + checkpoint caches"
    )
    cache.add_argument("--cache-dir", default=".repro-cache",
                       help="cache directory (default: .repro-cache)")
    cache.add_argument("--stats", action="store_true",
                       help="report cache footprints (the default action)")
    cache.add_argument("--clear", action="store_true",
                       help="delete every cached result and checkpoint")
    cache.set_defaults(func=_cmd_cache)

    trace = sub.add_parser(
        "trace",
        help="run one experiment with the request tracer attached and "
             "export Chrome trace-event JSON",
    )
    trace.add_argument("experiment", help="experiment name, e.g. fig05")
    trace.add_argument("--quick", action="store_true",
                       help="reduced scale (seconds instead of minutes)")
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument("--output", default=None,
                       help="trace JSON path (default: trace_<fig>.json)")
    trace.add_argument("--buffer", type=int, default=65536,
                       help="ring-buffer capacity in transitions; the trace "
                            "keeps the last N (default 65536)")
    trace.add_argument("--metrics", default=None,
                       help="also stream per-epoch metric records to this "
                            "JSONL file")
    trace.add_argument("--sanitize", action="store_true",
                       help="enable the runtime invariant sanitizer")
    _add_backend_argument(trace)
    trace.set_defaults(func=_cmd_trace)

    bench = sub.add_parser(
        "bench", help="measure wall-clock and events/sec per figure"
    )
    bench.add_argument("figures", nargs="*",
                       help="figures to benchmark (default: all)")
    bench.add_argument("--quick", action="store_true",
                       help="reduced scale (seconds instead of minutes)")
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument("--output", default=None,
                       help="output JSON path (default: BENCH_<timestamp>.json)")
    bench.add_argument("--check", default=None,
                       help="baseline JSON to compare events/sec against")
    bench.add_argument("--tolerance", type=float, default=0.30,
                       help="allowed events/sec drop vs baseline (default 0.30)")
    bench.add_argument("--repeat", type=int, default=3,
                       help="runs per figure; median wall time is reported "
                            "(default 3)")
    bench.add_argument("--update", action="store_true",
                       help="rewrite BENCH_baseline.json in place")
    bench.add_argument("--no-warm-start", action="store_true",
                       help="skip the cold-vs-warm-started sweep comparison")
    bench.add_argument("--shards", type=int, default=1,
                       help="additionally run each figure once through the "
                            "sharded runner at this shard count and record "
                            "wall/speedup (byte-checked vs single-process)")
    bench.add_argument("--no-history", action="store_true",
                       help="skip appending this run to BENCH_history.jsonl")
    _add_backend_argument(bench)
    bench.set_defaults(func=_cmd_bench)

    profile = sub.add_parser(
        "profile", help="run one figure under cProfile, emit a JSON hotspot report"
    )
    profile.add_argument("experiment", help="experiment name, e.g. fig05")
    profile.add_argument("--quick", action="store_true",
                         help="reduced scale (seconds instead of minutes)")
    profile.add_argument("--seed", type=int, default=0)
    profile.add_argument("--top", type=int, default=25,
                         help="hotspots to keep, ranked by tottime (default 25)")
    profile.add_argument("--output", default=None,
                         help="write the JSON report here (default: stdout)")
    _add_backend_argument(profile)
    profile.set_defaults(func=_cmd_profile)

    accel = sub.add_parser(
        "accel",
        help="build the compiled backend or report its status",
    )
    accel.add_argument("action", nargs="?", choices=("info", "build"),
                       default="info",
                       help="info: report toolchain/artifact status "
                            "(default); build: compile the extension now")
    accel.set_defaults(func=_cmd_accel)

    lint = sub.add_parser(
        "lint",
        help="run the determinism linter and whole-program analyzer",
    )
    lint.add_argument(
        "lint_args", nargs=argparse.REMAINDER, metavar="args",
        help="paths and linter flags, forwarded to repro.devtools.lint "
             "(default: src tests; see 'repro lint --help' there)",
    )
    lint.set_defaults(func=_cmd_lint)

    sub.add_parser("info", help="show machine presets and workloads").set_defaults(
        func=_cmd_info
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    # argparse's REMAINDER refuses a leading option token, so flag-first
    # invocations like ``repro lint --list-rules`` forward directly.
    if argv and argv[0] == "lint":
        from repro.devtools import lint

        return lint.main(argv[1:] or ["src", "tests"])
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
