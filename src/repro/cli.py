"""Command-line interface: run the paper's experiments from a shell.

Usage::

    python -m repro list
    python -m repro run fig05 [--quick] [--seed N] [--sanitize]
    python -m repro run-all [--quick]
    python -m repro info
    python -m repro lint [paths ...]

``--sanitize`` attaches the runtime invariant checker
(:mod:`repro.sim.sanitizer`) to every system the experiment builds;
``lint`` runs the determinism linter (:mod:`repro.devtools.lint`).

Each experiment prints the same report table/series its benchmark asserts
against; see EXPERIMENTS.md for the paper-vs-measured record.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable

from repro.experiments import (
    fig01_motivation,
    fig05_proportional,
    fig06_work_conserving,
    fig07_source_and_target,
    fig08_excess,
    fig09_memcached,
    fig10_isolation,
    fig11_iaas,
    fig12_efficiency,
)

__all__ = ["EXPERIMENTS", "main"]

EXPERIMENTS: dict[str, tuple[Callable, str]] = {
    "fig01": (fig01_motivation.run,
              "source- vs target-only regulation on both mixes"),
    "fig05": (fig05_proportional.run,
              "proportional allocation: two stream classes at 7:3"),
    "fig06": (fig06_work_conserving.run,
              "work conservation with a phase-alternating streamer"),
    "fig07": (fig07_source_and_target.run,
              "PABST vs its source-only and target-only halves"),
    "fig08": (fig08_excess.run,
              "proportional redistribution of unused bandwidth"),
    "fig09": (fig09_memcached.run,
              "memcached service-time distribution under co-location"),
    "fig10": (fig10_isolation.run,
              "SPEC weighted slowdown vs a streaming aggressor"),
    "fig11": (fig11_iaas.run,
              "IaaS consolidation vs a static bandwidth partition"),
    "fig12": (fig12_efficiency.run,
              "memory-efficiency cost of bandwidth QoS"),
}


def _cmd_list(_args: argparse.Namespace) -> int:
    width = max(len(name) for name in EXPERIMENTS)
    for name, (_, description) in EXPERIMENTS.items():
        print(f"{name:<{width}}  {description}")
    return 0


def _run_experiment(name: str, quick: bool, seed: int, sanitize: bool = False) -> None:
    from repro.experiments.common import sanitized

    runner, description = EXPERIMENTS[name]
    mode = "quick" if quick else "full"
    suffix = ", sanitized" if sanitize else ""
    print(f"== {name} ({mode}{suffix}): {description}")
    started = time.perf_counter()
    with sanitized(sanitize):
        result = runner(quick=quick, seed=seed)
    elapsed = time.perf_counter() - started
    print(result.report())
    print(f"[{elapsed:.1f}s]")


def _cmd_run(args: argparse.Namespace) -> int:
    if args.experiment not in EXPERIMENTS:
        known = ", ".join(EXPERIMENTS)
        print(f"unknown experiment {args.experiment!r}; known: {known}",
              file=sys.stderr)
        return 2
    _run_experiment(args.experiment, args.quick, args.seed, args.sanitize)
    return 0


def _cmd_run_all(args: argparse.Namespace) -> int:
    for index, name in enumerate(EXPERIMENTS):
        if index:
            print()
        _run_experiment(name, args.quick, args.seed, args.sanitize)
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.devtools import lint

    return lint.main(args.paths or None)


def _cmd_info(_args: argparse.Namespace) -> int:
    from repro import SPEC_PROFILES, SystemConfig, __version__

    config = SystemConfig.default_experiment()
    paper = SystemConfig.paper_32core()
    print(f"repro {__version__} - PABST (HPCA 2017) reproduction")
    print()
    print("default experiment machine:")
    print(f"  cores={config.cores}  mcs={config.num_mcs}  "
          f"peak={config.peak_bandwidth:.0f} B/cycle  "
          f"epoch={config.epoch_cycles} cycles")
    print("paper Table III machine:")
    print(f"  cores={paper.cores}  mcs={paper.num_mcs}  "
          f"peak={paper.peak_bandwidth:.0f} B/cycle  "
          f"epoch={paper.epoch_cycles} cycles")
    print()
    print("SPEC CPU2006 proxies:", ", ".join(sorted(SPEC_PROFILES)))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the PABST (HPCA 2017) evaluation figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments").set_defaults(
        func=_cmd_list
    )

    run = sub.add_parser("run", help="run one experiment")
    run.add_argument("experiment", help="experiment name, e.g. fig05")
    run.add_argument("--quick", action="store_true",
                     help="reduced scale (seconds instead of minutes)")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--sanitize", action="store_true",
                     help="enable the runtime invariant sanitizer")
    run.set_defaults(func=_cmd_run)

    run_all = sub.add_parser("run-all", help="run every experiment")
    run_all.add_argument("--quick", action="store_true")
    run_all.add_argument("--seed", type=int, default=0)
    run_all.add_argument("--sanitize", action="store_true",
                         help="enable the runtime invariant sanitizer")
    run_all.set_defaults(func=_cmd_run_all)

    lint = sub.add_parser("lint", help="run the determinism linter")
    lint.add_argument("paths", nargs="*",
                      help="files or directories (default: src tests)")
    lint.set_defaults(func=_cmd_lint)

    sub.add_parser("info", help="show machine presets and workloads").set_defaults(
        func=_cmd_info
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
