"""Way-based cache capacity partitioning (Intel CAT-like).

The paper assumes the baseline already partitions the shared L3 by ways and
uses exclusive partitions in every experiment to isolate cache effects from
bandwidth effects.  A :class:`WayPartition` maps each QoS class to the set of
ways it may *allocate* into; hits are unrestricted, matching CAT semantics.
"""

from __future__ import annotations

from typing import Iterable, Mapping

__all__ = ["WayPartition"]


class WayPartition:
    """Per-class way masks over a cache with ``assoc`` ways."""

    def __init__(self, assoc: int) -> None:
        if assoc <= 0:
            raise ValueError(f"assoc must be positive, got {assoc}")
        self._assoc = assoc
        self._full_mask = (1 << assoc) - 1
        self._masks: dict[int, int] = {}
        self._allowed_cache: dict[int, tuple[int, ...]] = {}

    @property
    def assoc(self) -> int:
        return self._assoc

    # ------------------------------------------------------------------
    # configuration
    # ------------------------------------------------------------------
    def set_mask(self, qos_id: int, mask: int) -> None:
        """Assign a raw way bitmask to a class."""
        if mask <= 0 or mask & ~self._full_mask:
            raise ValueError(
                f"mask {mask:#x} invalid for {self._assoc}-way cache"
            )
        self._masks[qos_id] = mask
        self._allowed_cache[qos_id] = tuple(
            way for way in range(self._assoc) if mask >> way & 1
        )

    def set_ways(self, qos_id: int, ways: Iterable[int]) -> None:
        """Assign an explicit collection of way indices to a class."""
        mask = 0
        for way in ways:
            if not 0 <= way < self._assoc:
                raise ValueError(f"way {way} out of range for assoc {self._assoc}")
            mask |= 1 << way
        self.set_mask(qos_id, mask)

    @classmethod
    def exclusive(cls, assoc: int, way_counts: Mapping[int, int]) -> "WayPartition":
        """Carve contiguous, non-overlapping partitions.

        ``way_counts`` maps qos_id -> number of ways; the total must fit.
        This is how every experiment in the paper isolates classes in the L3.
        """
        total = sum(way_counts.values())
        if total > assoc:
            raise ValueError(f"requested {total} ways, cache has {assoc}")
        for qos_id, count in way_counts.items():
            if count <= 0:
                raise ValueError(f"class {qos_id} needs a positive way count")
        partition = cls(assoc)
        next_way = 0
        for qos_id in sorted(way_counts):
            count = way_counts[qos_id]
            partition.set_ways(qos_id, range(next_way, next_way + count))
            next_way += count
        return partition

    @classmethod
    def equal_split(cls, assoc: int, qos_ids: Iterable[int]) -> "WayPartition":
        """Evenly divide all ways among the given classes."""
        ids = sorted(qos_ids)
        if not ids:
            raise ValueError("need at least one QoS class")
        base = assoc // len(ids)
        if base == 0:
            raise ValueError(f"{assoc} ways cannot cover {len(ids)} classes")
        counts = {qos_id: base for qos_id in ids}
        for index in range(assoc - base * len(ids)):
            counts[ids[index]] += 1
        return cls.exclusive(assoc, counts)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def mask(self, qos_id: int) -> int:
        """Way bitmask for a class; unconfigured classes may use every way."""
        return self._masks.get(qos_id, self._full_mask)

    def allowed_ways(self, qos_id: int) -> tuple[int, ...]:
        """Way indices a class may allocate into."""
        allowed = self._allowed_cache.get(qos_id)
        if allowed is None:
            return tuple(range(self._assoc))
        return allowed

    def is_exclusive(self) -> bool:
        """True when no two configured classes share a way."""
        seen = 0
        for mask in self._masks.values():
            if seen & mask:
                return False
            seen |= mask
        return True
