"""Set-associative cache with write-back, write-allocate semantics.

The model tracks, per line, the owning QoS class (for occupancy monitoring
and writeback attribution) and a dirty bit.  It is purely functional with
respect to time: latency is applied by the system layer, which lets the same
class model the private L2 and the shared, partitioned L3 slices.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.partition import WayPartition
from repro.cache.replacement import LruPolicy, make_policy

__all__ = ["CacheLine", "LookupResult", "SetAssociativeCache"]


@dataclass(slots=True)
class CacheLine:
    """One resident line.  ``line_addr`` is the full line-aligned address."""

    line_addr: int
    qos_id: int
    dirty: bool = False
    valid: bool = True


@dataclass(slots=True)
class LookupResult:
    """Outcome of one cache access."""

    hit: bool
    victim: CacheLine | None = None

    @property
    def dirty_eviction(self) -> bool:
        return self.victim is not None and self.victim.dirty


# Shared victimless results: callers treat LookupResult as read-only, so
# the two victimless outcomes need no per-access allocation.
_HIT = LookupResult(hit=True)
_MISS = LookupResult(hit=False)


class SetAssociativeCache:
    """A write-back, write-allocate set-associative cache.

    Parameters
    ----------
    num_sets, assoc, line_bytes:
        Geometry.  ``num_sets`` must be a power of two (index by masking).
    partition:
        Optional :class:`WayPartition` restricting which ways each QoS class
        may allocate into.  Hits in any way still count (CAT semantics).
    replacement:
        Policy name understood by :func:`repro.cache.replacement.make_policy`.
    """

    def __init__(
        self,
        name: str,
        num_sets: int,
        assoc: int,
        line_bytes: int = 64,
        partition: WayPartition | None = None,
        replacement: str = "lru",
        seed: int = 0,
    ) -> None:
        if num_sets <= 0 or num_sets & (num_sets - 1):
            raise ValueError(f"num_sets must be a power of two, got {num_sets}")
        if assoc <= 0:
            raise ValueError(f"assoc must be positive, got {assoc}")
        if partition is not None and partition.assoc != assoc:
            raise ValueError("partition assoc does not match cache assoc")
        self.name = name
        self.num_sets = num_sets
        self.assoc = assoc
        self.line_bytes = line_bytes
        self._line_shift = line_bytes.bit_length() - 1
        self._set_mask = num_sets - 1
        self.partition = partition
        self._policy = make_policy(replacement, num_sets, assoc, seed)
        # hot-path shortcuts: LRU victim selection is fused into _fill
        self._lru = self._policy if isinstance(self._policy, LruPolicy) else None
        self._all_ways = tuple(range(assoc))
        self._ways: list[list[CacheLine | None]] = [
            [None] * assoc for _ in range(num_sets)
        ]
        # Tag store: line number (addr >> line_shift) -> resident way.  The
        # line number embeds the set bits, so one flat dict replaces the
        # per-set associative scan on every probe.
        self._where: dict[int, int] = {}
        # statistics
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.dirty_evictions = 0

    # ------------------------------------------------------------------
    # address helpers
    # ------------------------------------------------------------------
    def line_addr(self, addr: int) -> int:
        return (addr >> self._line_shift) << self._line_shift

    def set_index(self, addr: int) -> int:
        return (addr >> self._line_shift) & self._set_mask

    @property
    def capacity_bytes(self) -> int:
        return self.num_sets * self.assoc * self.line_bytes

    # ------------------------------------------------------------------
    # access paths
    # ------------------------------------------------------------------
    def probe(self, addr: int) -> bool:
        """Non-destructive presence check (no recency update)."""
        return self._find(addr)[1] is not None

    def access(self, addr: int, is_write: bool, qos_id: int, allocate: bool = True) -> LookupResult:
        """Perform a demand access.

        On a miss with ``allocate=True`` the line is filled and a victim may
        be returned; a dirty victim means the caller must emit a writeback.
        """
        # inlined _find()/line_addr(): this is the hottest entry point of
        # the cache model (once per level per demand access)
        line_number = addr >> self._line_shift
        set_index = line_number & self._set_mask
        way = self._where.get(line_number)
        if way is not None:
            line = self._ways[set_index][way]
            assert line is not None
            if is_write:
                line.dirty = True
            lru = self._lru
            if lru is not None:
                # inlined LruPolicy.on_access
                lru._clock += 1
                lru._stamps[set_index][way] = lru._clock
            else:
                self._policy.on_access(set_index, way)
            self.hits += 1
            return _HIT
        self.misses += 1
        if not allocate:
            return _MISS
        victim = self._fill(set_index, line_number << self._line_shift, qos_id, is_write)
        if victim is None:
            return _MISS
        return LookupResult(hit=False, victim=victim)

    def fill(self, addr: int, qos_id: int, dirty: bool = False) -> CacheLine | None:
        """Install a line without counting a demand access (e.g. writeback)."""
        set_index, way = self._find(addr)
        if way is not None:
            line = self._ways[set_index][way]
            assert line is not None
            line.dirty = line.dirty or dirty
            self._policy.on_access(set_index, way)
            return None
        return self._fill(set_index, self.line_addr(addr), qos_id, dirty)

    def invalidate(self, addr: int) -> CacheLine | None:
        """Remove a line; returns it (so dirty data can be written back)."""
        set_index, way = self._find(addr)
        if way is None:
            return None
        line = self._ways[set_index][way]
        self._ways[set_index][way] = None
        if line is not None:
            del self._where[line.line_addr >> self._line_shift]
        return line

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _find(self, addr: int) -> tuple[int, int | None]:
        # one dict probe instead of an associative way scan; this runs once
        # per cache level per demand access and dominates the model's cost
        line = addr >> self._line_shift
        return line & self._set_mask, self._where.get(line)

    def _fill(self, set_index: int, line_addr: int, qos_id: int, dirty: bool) -> CacheLine | None:
        ways = self._ways[set_index]
        partition = self.partition
        # direct probe of the partition's allowed-ways cache; configured
        # masks are never empty, and a missing entry means "all ways"
        allowed = (
            partition._allowed_cache.get(qos_id) or self._all_ways
            if partition is not None
            else self._all_ways
        )
        victim_line: CacheLine | None = None
        target_way: int | None = None
        lru = self._lru
        if lru is not None:
            # fused scan: first empty way wins, otherwise the LRU way
            # (first-minimal stamp, matching LruPolicy.victim) — one pass
            # instead of empty-way scan + candidate list + victim scan
            stamps = lru._stamps[set_index]
            lru_way = -1
            lru_stamp = 0
            for way in allowed:
                if ways[way] is None:
                    target_way = way
                    break
                stamp = stamps[way]
                if lru_way < 0 or stamp < lru_stamp:
                    lru_way = way
                    lru_stamp = stamp
            if target_way is None:
                if lru_way < 0:
                    raise ValueError(f"QoS class {qos_id} has no ways in {self.name}")
                target_way = lru_way
            if ways[target_way] is not None:
                victim_line = ways[target_way]
                self.evictions += 1
                del self._where[victim_line.line_addr >> self._line_shift]
                if victim_line.dirty:
                    self.dirty_evictions += 1
            ways[target_way] = CacheLine(line_addr=line_addr, qos_id=qos_id, dirty=dirty)
            self._where[line_addr >> self._line_shift] = target_way
            # inlined LruPolicy.on_access (method call saved on every fill)
            lru._clock += 1
            stamps[target_way] = lru._clock
            return victim_line
        else:
            for way in allowed:
                if ways[way] is None:
                    target_way = way
                    break
            if target_way is None:
                candidates = list(allowed)
                if not candidates:
                    raise ValueError(f"QoS class {qos_id} has no ways in {self.name}")
                target_way = self._policy.victim(set_index, candidates)
        if victim_line is None and ways[target_way] is not None:
            victim_line = ways[target_way]
            self.evictions += 1
            del self._where[victim_line.line_addr >> self._line_shift]
            if victim_line.dirty:
                self.dirty_evictions += 1
        ways[target_way] = CacheLine(line_addr=line_addr, qos_id=qos_id, dirty=dirty)
        self._where[line_addr >> self._line_shift] = target_way
        self._policy.on_access(set_index, target_way)
        return victim_line

    # ------------------------------------------------------------------
    # monitoring
    # ------------------------------------------------------------------
    def occupancy_by_class(self) -> dict[int, int]:
        """Resident line count per QoS class (for CMT-style monitoring)."""
        counts: dict[int, int] = {}
        for ways in self._ways:
            for line in ways:
                if line is not None:
                    counts[line.qos_id] = counts.get(line.qos_id, 0) + 1
        return counts

    @property
    def miss_rate(self) -> float:
        total = self.hits + self.misses
        if total == 0:
            return 0.0
        return self.misses / total
