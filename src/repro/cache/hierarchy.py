"""Two-level cache hierarchy: private L2s over a shared, sliced L3.

This is the functional (hit/miss and writeback) half of the memory system;
latencies are applied by :mod:`repro.sim.system`.  It implements the exact
traffic semantics PABST depends on:

* the L2 miss stream is what the source governor paces;
* an L3 hit must be reported back so the pacer can undo its charge
  (Section III-B3, "Accounting for Cache Filtering");
* a demand miss whose L3 fill evicts a dirty line generates a memory
  writeback charged to the demand request's class, and the response carries
  a flag so the pacer charges one extra period for it.

All demand requests to DRAM are reads (write-allocate); DRAM writes happen
only through dirty evictions, so a "write stream" naturally costs twice the
bandwidth of a read stream, as on real write-back hierarchies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.cache.cache import SetAssociativeCache
from repro.cache.partition import WayPartition
from repro.sim.config import SystemConfig
from repro.sim.topology import AddressMap, _mix_bits

__all__ = ["CacheHierarchy", "HierarchyOutcome", "HitLevel", "WritebackInfo"]


@dataclass(frozen=True, slots=True)
class WritebackInfo:
    """A dirty line pushed out to memory, with its owning QoS class.

    The owner is carried so the system can implement either of the
    accounting policies Section V-C discusses: charge the class whose
    demand caused the eviction (the paper's choice) or charge the class
    that owns the dirty data.
    """

    addr: int
    owner_qos_id: int


class HitLevel(str, Enum):
    """Deepest level a demand access had to reach."""

    L2 = "l2"
    L3 = "l3"
    MEMORY = "memory"


@dataclass(slots=True)
class HierarchyOutcome:
    """Functional result of one demand access."""

    level: HitLevel
    l3_slice: int = -1
    mem_writebacks: list[WritebackInfo] = field(default_factory=list)

    @property
    def goes_to_memory(self) -> bool:
        return self.level is HitLevel.MEMORY

    @property
    def l2_miss(self) -> bool:
        return self.level is not HitLevel.L2


# Shared L2-hit outcome: callers never mutate outcomes and the L2-hit path
# carries no slice or writebacks, so one instance serves every hit.
_L2_HIT = HierarchyOutcome(level=HitLevel.L2)


class CacheHierarchy:
    """Private per-core L2 caches plus address-hashed shared L3 slices."""

    def __init__(
        self,
        config: SystemConfig,
        address_map: AddressMap,
        l3_partition: WayPartition | None = None,
        seed: int = 0,
    ) -> None:
        self._config = config
        self._address_map = address_map
        self.l3_partition = l3_partition
        self.l2s = [
            SetAssociativeCache(
                name=f"l2.{core}",
                num_sets=config.l2_sets,
                assoc=config.l2_assoc,
                line_bytes=config.line_bytes,
                seed=seed + core,
            )
            for core in range(config.cores)
        ]
        self.l3_slices = [
            SetAssociativeCache(
                name=f"l3.{tile}",
                num_sets=config.l3_slice_sets,
                assoc=config.l3_assoc,
                line_bytes=config.line_bytes,
                partition=l3_partition,
                seed=seed + 1000 + tile,
            )
            for tile in range(config.cores)
        ]
        # access() fast-path bindings.  Slice selection recomputes the hash
        # directly instead of going through AddressMap.decode: streaming
        # working sets are large enough that the decode memo rarely hits,
        # and the slice needs only one bit-mix, not the full
        # (slice, mc, bank, row) tuple.
        self._num_slices = len(self.l3_slices)
        self._line_shift = config.line_bytes.bit_length() - 1

    # ------------------------------------------------------------------
    # demand path
    # ------------------------------------------------------------------
    def access(self, core_id: int, addr: int, is_write: bool, qos_id: int) -> HierarchyOutcome:
        """Run one demand access through L2 then (on miss) the L3 slice."""
        l2 = self.l2s[core_id]
        l2_result = l2.access(addr, is_write, qos_id)
        if l2_result.hit:
            return _L2_HIT

        writebacks: list[WritebackInfo] = []
        l3_slices = self.l3_slices
        num_slices = self._num_slices
        line_shift = self._line_shift
        # slice_of() without the decode wrapper or the (useless here) full
        # line decode — see the binding comment in __init__
        slice_id = _mix_bits(addr >> line_shift) % num_slices
        l3 = l3_slices[slice_id]

        # A dirty L2 victim is written into the L3 (it may itself push a
        # dirty L3 line out to memory).
        victim = l2_result.victim
        if victim is not None and victim.dirty:
            victim_slice = l3_slices[
                _mix_bits(victim.line_addr >> line_shift) % num_slices
            ]
            l3_victim = victim_slice.fill(victim.line_addr, victim.qos_id, dirty=True)
            if l3_victim is not None and l3_victim.dirty:
                writebacks.append(
                    WritebackInfo(l3_victim.line_addr, l3_victim.qos_id)
                )

        l3_result = l3.access(addr, is_write=False, qos_id=qos_id)
        if l3_result.hit:
            return HierarchyOutcome(
                level=HitLevel.L3, l3_slice=slice_id, mem_writebacks=writebacks
            )
        if l3_result.dirty_eviction:
            assert l3_result.victim is not None
            writebacks.append(
                WritebackInfo(
                    l3_result.victim.line_addr, l3_result.victim.qos_id
                )
            )
        return HierarchyOutcome(
            level=HitLevel.MEMORY, l3_slice=slice_id, mem_writebacks=writebacks
        )

    # ------------------------------------------------------------------
    # monitoring
    # ------------------------------------------------------------------
    def l3_occupancy_by_class(self) -> dict[int, int]:
        """Aggregate per-class L3 occupancy across slices."""
        totals: dict[int, int] = {}
        for cache in self.l3_slices:
            for qos_id, count in cache.occupancy_by_class().items():
                totals[qos_id] = totals.get(qos_id, 0) + count
        return totals

    def l2_miss_rate(self, core_id: int) -> float:
        return self.l2s[core_id].miss_rate

    @property
    def l3_capacity_bytes(self) -> int:
        return sum(cache.capacity_bytes for cache in self.l3_slices)
