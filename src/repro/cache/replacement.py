"""Replacement policies for the set-associative cache model.

Victim selection always receives the subset of ways the requesting QoS class
may allocate into (way-based partitioning, Section II-B), so policies never
need to know about partitions.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np

__all__ = ["LruPolicy", "RandomPolicy", "ReplacementPolicy", "make_policy"]


class ReplacementPolicy(ABC):
    """Chooses a victim way and tracks recency metadata."""

    @abstractmethod
    def on_access(self, set_index: int, way: int) -> None:
        """Record a hit or fill touching ``way`` of ``set_index``."""

    @abstractmethod
    def victim(self, set_index: int, candidate_ways: Sequence[int]) -> int:
        """Pick the way to evict among ``candidate_ways`` (all valid)."""


class LruPolicy(ReplacementPolicy):
    """True LRU via per-line last-access stamps.

    Stamps live in plain nested lists: ``on_access`` runs once per cache
    hit and fill, where a numpy scalar store costs an order of magnitude
    more than a list item assignment.
    """

    def __init__(self, num_sets: int, assoc: int) -> None:
        self._stamps: list[list[int]] = [[0] * assoc for _ in range(num_sets)]
        self._clock = 0

    def on_access(self, set_index: int, way: int) -> None:
        self._clock += 1
        self._stamps[set_index][way] = self._clock

    def victim(self, set_index: int, candidate_ways: Sequence[int]) -> int:
        stamps = self._stamps[set_index]
        best = candidate_ways[0]
        best_stamp = stamps[best]
        for way in candidate_ways:
            stamp = stamps[way]
            if stamp < best_stamp:
                best = way
                best_stamp = stamp
        return best


class RandomPolicy(ReplacementPolicy):
    """Uniform random victim; useful as a property-test foil for LRU."""

    def __init__(self, num_sets: int, assoc: int, seed: int = 0) -> None:
        self._rng = np.random.Generator(np.random.PCG64(seed))

    def on_access(self, set_index: int, way: int) -> None:  # noqa: ARG002
        return None

    def victim(self, set_index: int, candidate_ways: Sequence[int]) -> int:
        return candidate_ways[int(self._rng.integers(len(candidate_ways)))]


def make_policy(name: str, num_sets: int, assoc: int, seed: int = 0) -> ReplacementPolicy:
    """Factory used by :class:`repro.cache.cache.SetAssociativeCache`."""
    if name == "lru":
        return LruPolicy(num_sets, assoc)
    if name == "random":
        return RandomPolicy(num_sets, assoc, seed)
    raise ValueError(f"unknown replacement policy {name!r}")
