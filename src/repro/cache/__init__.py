"""Cache models: set-associative caches, partitioning, and the hierarchy."""

from repro.cache.cache import CacheLine, LookupResult, SetAssociativeCache
from repro.cache.hierarchy import CacheHierarchy, HierarchyOutcome, HitLevel
from repro.cache.partition import WayPartition

__all__ = [
    "CacheHierarchy", "CacheLine", "HierarchyOutcome", "HitLevel",
    "LookupResult", "SetAssociativeCache", "WayPartition",
]
