"""Target-only regulation: priority arbitration without source throttling.

This is the representative target-based scheme of Fig. 1 (columns b/d) —
an FQM-style [26] fair scheduler — and the "arbiter only" ablation of
Figs. 10 and 12.  It can only reorder the requests that fit in the MC
front-end queues; once the system floods them, excess requests wait outside
where priorities do not apply (Fig. 1b).
"""

from __future__ import annotations

from repro.core.config import PabstConfig
from repro.core.pabst import PabstMechanism

__all__ = ["TargetOnlyMechanism"]


class TargetOnlyMechanism(PabstMechanism):
    """Virtual-deadline arbiter at every MC; sources run unthrottled."""

    def __init__(self, config: PabstConfig | None = None) -> None:
        super().__init__(config=config, enable_governor=False, enable_arbiter=True)
