"""Unregulated baseline: FR-FCFS scheduling, no source throttling.

This is the "no QoS support" configuration of Figs. 9, 10, and 12.
"""

from __future__ import annotations

from repro.sim.mechanism import QoSMechanism

__all__ = ["NoQosMechanism"]


class NoQosMechanism(QoSMechanism):
    """Explicit alias of the do-nothing mechanism, for experiment tables."""

    name = "none"
