"""Baseline mechanisms the paper compares PABST against."""

from repro.baselines.none import NoQosMechanism
from repro.baselines.source_only import SourceOnlyMechanism
from repro.baselines.static_partition import (
    StaticPartitionMechanism,
    static_partition_config,
)
from repro.baselines.target_only import TargetOnlyMechanism

__all__ = [
    "NoQosMechanism", "SourceOnlyMechanism", "StaticPartitionMechanism",
    "TargetOnlyMechanism", "static_partition_config",
]
