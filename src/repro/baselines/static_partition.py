"""Static bandwidth partition baseline (Fig. 11).

The paper approximates a hard 1/N bandwidth reservation by running the
workload in isolation with DRAM frequency scaled down N times.  This module
builds that configuration so the IaaS experiment can compare PABST's
work-conserving equal shares against a static split, and wraps it as a
first-class :class:`~repro.sim.mechanism.QoSMechanism` so the arena can
run the baseline through the same interface as every other mechanism.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.sim.config import SystemConfig
from repro.sim.mechanism import QoSMechanism

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.qos.classes import QoSRegistry

__all__ = ["StaticPartitionMechanism", "static_partition_config"]


def static_partition_config(config: SystemConfig, share_divisor: int) -> SystemConfig:
    """Config emulating a static ``1/share_divisor`` bandwidth allocation.

    All DRAM timings stretch by the divisor, which scales peak bandwidth
    down while leaving core-side behaviour untouched — the paper's recipe
    for the Fig. 11 baseline.
    """
    if share_divisor < 1:
        raise ValueError("share_divisor must be >= 1")
    return config.with_dram(config.dram.frequency_scaled(share_divisor))


class StaticPartitionMechanism(QoSMechanism):
    """The Fig. 11 baseline as a mechanism object.

    Exercises the :meth:`~repro.sim.mechanism.QoSMechanism.prepare_config`
    hook: the "mechanism" is a machine-level config rewrite (DRAM slowed
    ``share_divisor`` times, emulating a hard 1/N reservation) with no
    runtime behaviour of its own.  ``share_divisor=None`` defaults to the
    number of QoS classes, the paper's equal-split setting.
    """

    name = "static-partition"

    def __init__(self, share_divisor: int | None = None) -> None:
        if share_divisor is not None and share_divisor < 1:
            raise ValueError("share_divisor must be >= 1")
        self.share_divisor = share_divisor

    def prepare_config(
        self, config: SystemConfig, registry: "QoSRegistry"
    ) -> SystemConfig:
        divisor = self.share_divisor
        if divisor is None:
            divisor = max(1, len(registry.classes))
        return static_partition_config(config, divisor)
