"""Static bandwidth partition baseline (Fig. 11).

The paper approximates a hard 1/N bandwidth reservation by running the
workload in isolation with DRAM frequency scaled down N times.  This module
builds that configuration so the IaaS experiment can compare PABST's
work-conserving equal shares against a static split.
"""

from __future__ import annotations

from repro.sim.config import SystemConfig

__all__ = ["static_partition_config"]


def static_partition_config(config: SystemConfig, share_divisor: int) -> SystemConfig:
    """Config emulating a static ``1/share_divisor`` bandwidth allocation.

    All DRAM timings stretch by the divisor, which scales peak bandwidth
    down while leaving core-side behaviour untouched — the paper's recipe
    for the Fig. 11 baseline.
    """
    if share_divisor < 1:
        raise ValueError("share_divisor must be >= 1")
    return config.with_dram(config.dram.frequency_scaled(share_divisor))
