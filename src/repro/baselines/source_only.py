"""Source-only regulation: the PABST governor without the target arbiter.

This is the representative source-based throttler of Fig. 1 (columns a/c)
and the "governor only" ablation of Figs. 10 and 12.  It controls request
*rates* but cannot lower queueing latency at the controller, so it fails on
latency-sensitive workloads (Fig. 1c).
"""

from __future__ import annotations

from repro.core.config import PabstConfig
from repro.core.pabst import PabstMechanism

__all__ = ["SourceOnlyMechanism"]


class SourceOnlyMechanism(PabstMechanism):
    """Governor + pacer at every source; baseline FR-FCFS at the target."""

    def __init__(self, config: PabstConfig | None = None) -> None:
        super().__init__(config=config, enable_governor=True, enable_arbiter=False)
