"""Execution backends for sharded simulation (DESIGN.md §11).

:mod:`repro.sim.shard` defines the partition, the conservative window
schedule, and the per-shard runner; this module supplies the transport
and the barrier loop:

* ``inline`` — every shard's engine in this process, stepped in
  lockstep.  Zero parallelism, identical schedule: the reference
  backend the determinism tests diff against, and the debugging mode
  (one process to step through).
* ``process`` — one worker process per target shard over
  ``multiprocessing`` pipes, the source shard in the parent.  Workers
  are created with the ``fork`` start method when the platform offers
  it (the built system transfers by address-space copy); otherwise the
  default method pickles the system to the worker, which is equally
  deterministic because target shards never mint request ids.

Both backends drive the identical per-barrier sequence — inject due
boundary messages, dispatch the window, exchange batches, fold epoch
deltas on the source — so their reports are byte-identical to each
other and to a single-process run.

The pipe protocol is deadlock-free by construction: at every barrier
each target *sends* its batch before *receiving* the source's, while
the source receives from all targets before sending to any, so no
send ever waits on a peer that is itself blocked sending.
"""

from __future__ import annotations

import multiprocessing
import traceback
from typing import TYPE_CHECKING

from repro.sim.engine import SimulationError
from repro.sim.shard import ShardPlan, ShardRunner, window_schedule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.system import System

__all__ = ["run_sharded"]


def run_sharded(
    system: "System",
    epochs: int,
    shards: int,
    backend: str = "process",
) -> "System":
    """Run ``epochs`` QoS epochs of ``system`` across ``shards`` engines.

    Returns the (finalized) source-shard system, whose stats,
    controllers, and queue structures are byte-equivalent to a
    finalized single-process run of the same system.  The caller must
    not call :meth:`System.finalize` again.
    """
    if epochs <= 0:
        raise SimulationError("epochs must be positive")
    if shards < 2:
        raise SimulationError(
            "run_sharded needs at least 2 shards; run the system directly "
            "for a single-process simulation"
        )
    if system._epochs_started:
        raise SimulationError("sharded runs need a freshly built system")
    if system.engine.tracer is not None:
        raise SimulationError(
            "request tracing is not supported in sharded runs"
        )
    plan = ShardPlan.from_system(system, shards)
    barriers = list(window_schedule(plan.lookahead, plan.epoch_cycles, epochs))
    if backend == "inline":
        return _run_inline(system, plan, barriers)
    if backend == "process":
        return _run_process(system, plan, barriers)
    raise SimulationError(f"unknown shard backend {backend!r}")


# ----------------------------------------------------------------------
# inline backend (lockstep reference)
# ----------------------------------------------------------------------
def _run_inline(system: "System", plan: ShardPlan, barriers: list) -> "System":
    from repro.runner.checkpoint import clone_system

    runners = [ShardRunner(system, plan, 0)]
    runners.extend(
        ShardRunner(clone_system(system), plan, shard_id)
        for shard_id in range(1, plan.num_shards)
    )
    for runner in runners:
        runner.start()
    source = runners[0]
    for end, is_epoch in barriers:
        for runner in runners:
            runner.inject_due(end)
        for runner in runners:
            runner.run_window(end)
        deltas = None
        if is_epoch:
            deltas = [
                (runner.shard_id, runner.epoch_delta())
                for runner in runners[1:]
            ]
        _exchange_inline(runners)
        if is_epoch:
            source.apply_epoch(deltas)
    end = barriers[-1][0]
    for runner in runners:
        runner.inject_due(end + 1)
    for runner in runners:
        runner.run_tail(end)
    # tail dispatch can still emit boundary messages (due past the run's
    # end, so never injected) — ship them so the conservation counters
    # on both sides agree
    _exchange_inline(runners)
    payloads = [
        (runner.shard_id, runner.finalize_target()) for runner in runners[1:]
    ]
    source.finalize_source(payloads)
    return system


def _exchange_inline(runners: list[ShardRunner]) -> None:
    moves = []
    for runner in runners:
        for dst in range(len(runners)):
            if dst == runner.shard_id:
                continue
            batch = runner.take_outbox(dst)
            if batch:
                moves.append((runner.shard_id, dst, batch))
    for src, dst, batch in moves:
        runners[dst].receive(src, batch)


# ----------------------------------------------------------------------
# process backend
# ----------------------------------------------------------------------
def _context() -> multiprocessing.context.BaseContext:
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def _send(conn, payload) -> None:
    conn.send(("msg", payload))


def _recv(conn, shard_id: int):
    try:
        kind, payload = conn.recv()
    except EOFError:
        raise SimulationError(
            f"shard {shard_id} worker exited without a final message"
        ) from None
    if kind == "err":
        raise SimulationError(f"shard {shard_id} worker failed:\n{payload}")
    return payload


def _target_main(conn, system: "System", plan: ShardPlan, shard_id: int, barriers: list) -> None:
    """Worker entry point: run one target shard to completion."""
    try:
        runner = ShardRunner(system, plan, shard_id)
        runner.start()
        for end, is_epoch in barriers:
            runner.inject_due(end)
            runner.run_window(end)
            delta = runner.epoch_delta() if is_epoch else None
            _send(conn, (runner.take_outbox(0), delta))
            runner.receive(0, _recv(conn, 0))
        end = barriers[-1][0]
        runner.inject_due(end + 1)
        runner.run_tail(end)
        _send(conn, runner.take_outbox(0))
        runner.receive(0, _recv(conn, 0))
        _send(conn, runner.finalize_target())
    except BaseException:
        try:
            conn.send(("err", traceback.format_exc()))
        except Exception:
            pass
        raise
    finally:
        conn.close()


def _run_process(system: "System", plan: ShardPlan, barriers: list) -> "System":
    ctx = _context()
    conns: dict[int, object] = {}
    workers: dict[int, object] = {}
    target_ids = list(range(1, plan.num_shards))
    try:
        for shard_id in target_ids:
            parent_conn, child_conn = ctx.Pipe()
            worker = ctx.Process(
                target=_target_main,
                args=(child_conn, system, plan, shard_id, barriers),
                name=f"repro-shard-{shard_id}",
                daemon=True,
            )
            worker.start()
            child_conn.close()
            conns[shard_id] = parent_conn
            workers[shard_id] = worker
        # the parent's system becomes the source shard only *after* the
        # workers hold their pristine copies
        source = ShardRunner(system, plan, 0)
        source.start()
        for end, is_epoch in barriers:
            source.inject_due(end)
            source.run_window(end)
            deltas = []
            for shard_id in target_ids:
                batch, delta = _recv(conns[shard_id], shard_id)
                source.receive(shard_id, batch)
                if is_epoch:
                    deltas.append((shard_id, delta))
            for shard_id in target_ids:
                _send(conns[shard_id], source.take_outbox(shard_id))
            if is_epoch:
                source.apply_epoch(deltas)
        end = barriers[-1][0]
        source.inject_due(end + 1)
        source.run_tail(end)
        for shard_id in target_ids:
            source.receive(shard_id, _recv(conns[shard_id], shard_id))
        for shard_id in target_ids:
            _send(conns[shard_id], source.take_outbox(shard_id))
        payloads = [
            (shard_id, _recv(conns[shard_id], shard_id))
            for shard_id in target_ids
        ]
        source.finalize_source(payloads)
        for shard_id in target_ids:
            workers[shard_id].join(timeout=30)
        return system
    finally:
        for conn in conns.values():
            try:
                conn.close()
            except Exception:
                pass
        for worker in workers.values():
            if worker.is_alive():
                worker.terminate()
                worker.join(timeout=5)
