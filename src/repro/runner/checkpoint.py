"""Deterministic simulation checkpoints with warm-start forking.

Every figure experiment runs a warm-up window before its measurement
window, and sweep cells that differ only in measurement-phase knobs
re-simulate the *identical* warm-up prefix from scratch.  This module
removes that redundancy the way cycle-level simulators do (gem5-style
SimPoint checkpointing): snapshot the full simulator state at the
warm-up/measurement boundary once, then fork every measurement run from
the snapshot.

The snapshot is a versioned pickle of the entire :class:`~repro.sim.system.System`
object graph — timing-wheel buckets + overflow heap + sequence counter,
derived RNG streams, cache tag stores, MSHR files, governor/arbiter/pacer
virtual clocks, in-flight :class:`~repro.sim.records.MemoryRequest`s, and
stats accumulators.  Because the simulator is pure Python with integer
time and named RNG streams, unpickling reproduces the machine *exactly*;
the one piece of process-global state — the request-id counter that
scheduler tie-breaks read — is carried as a watermark and re-established
on restore (see :func:`restore_system`).  A restored run is therefore
byte-identical to a cold run that simulated the warm-up itself; the
golden tests in ``tests/experiments/test_warm_start.py`` pin that.

Checkpoints are content-addressed by a **warm-up prefix hash** over
everything that determines the warm-up trajectory: the full
:class:`~repro.sim.config.SystemConfig`, QoS classes and core
assignments, per-core workload parameters, mechanism parameters, master
seed, warm-up epoch count, and the source fingerprint.  Two sweep cells
whose prefixes hash equal share one checkpoint; any source change
invalidates every checkpoint, exactly like the result cache.

This is the **only** module in the package allowed to import ``pickle``
(lint rule PERF003): serialization of simulator state is a versioned,
validated format, and confining it here keeps every producer and
consumer on that format.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import pickle
from dataclasses import asdict, dataclass, is_dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.obs.warnings import obs_warn
from repro.runner.fingerprint import source_fingerprint
from repro.sim.records import advance_request_ids, request_id_watermark

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.system import System

__all__ = [
    "CHECKPOINT_VERSION",
    "Checkpoint",
    "CheckpointStore",
    "DEFAULT_CHECKPOINT_DIR",
    "clone_system",
    "describe_component",
    "restore_system",
    "snapshot_system",
    "warmup_prefix_hash",
    "warmup_prefix_key",
]

#: Bump when the envelope layout or the semantics of restored state
#: change; old checkpoints then read as misses instead of garbage.
#: v2: System grew the obs registry (``system.obs``) and the tracer
#: engine slot — v1 snapshots unpickle without them, so they must miss.
CHECKPOINT_VERSION = 2

DEFAULT_CHECKPOINT_DIR = ".repro-cache/checkpoints"

#: Checkpoints are far larger than result-cache entries (a full system
#: snapshot is ~1 MB), so the store's LRU cap defaults much lower.
DEFAULT_MAX_CHECKPOINTS = 64


# ----------------------------------------------------------------------
# warm-up prefix identity
# ----------------------------------------------------------------------
def _scalar(value: Any) -> bool:
    return isinstance(value, (bool, int, float, str, type(None)))


def describe_component(obj: Any) -> dict[str, Any]:
    """JSON-able description of one component's *configuration* state.

    Captures the class qualname plus every scalar instance attribute
    (and scalar-only tuples/lists, and nested dataclasses).  Non-scalar
    attributes — engine references, derived caches, bound cores — are
    build products of the described parameters, so omitting them loses
    no identity.  Called on workloads and mechanisms *before* any cycle
    runs, so the description is the constructor-equivalent state.
    """
    fields: dict[str, Any] = {}
    for name in sorted(vars(obj)):
        value = vars(obj)[name]
        if _scalar(value):
            fields[name] = value
        elif isinstance(value, (tuple, list)) and all(_scalar(v) for v in value):
            fields[name] = list(value)
        elif is_dataclass(value) and not isinstance(value, type):
            fields[name] = asdict(value)
    return {
        "type": f"{type(obj).__module__}.{type(obj).__qualname__}",
        "fields": fields,
    }


def warmup_prefix_key(system: "System", warmup_epochs: int) -> dict[str, Any]:
    """Everything that determines the warm-up trajectory, as a JSON doc.

    Must be computed on a built-but-unrun system: the workload and
    mechanism descriptions double as their initial state.
    """
    registry = system.registry
    return {
        "version": CHECKPOINT_VERSION,
        "fingerprint": source_fingerprint(),
        "warmup_epochs": warmup_epochs,
        "seed": system.engine._seed,
        "config": asdict(system.config),
        "classes": [
            {
                "qos_id": qos_class.qos_id,
                "name": qos_class.name,
                "weight": qos_class.weight,
                "stride": qos_class.stride,
                "l3_ways": qos_class.l3_ways,
            }
            for qos_class in registry.classes
        ],
        "cores": {
            str(core_id): registry.class_of_core(core_id)
            for core_id in sorted(system.cores)
        },
        "workloads": {
            str(core_id): describe_component(core.workload)
            for core_id, core in sorted(system.cores.items())
        },
        "mechanism": describe_component(system.mechanism),
        "sample_latencies": system.stats.sample_latencies,
        "sanitize": system.engine.sanitizer is not None,
        # a tracer records during warm-up, so traced and untraced warm-ups
        # are different prefixes even though the simulated state matches
        "traced": system.engine.tracer is not None,
    }


def warmup_prefix_hash(system: "System", warmup_epochs: int) -> str:
    """Content hash (16 hex chars) of :func:`warmup_prefix_key`."""
    payload = json.dumps(
        warmup_prefix_key(system, warmup_epochs),
        sort_keys=True,
        separators=(",", ":"),
        default=str,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def clone_system(system: "System") -> "System":
    """Deep, reference-preserving copy of a built system.

    A pickle round-trip of the whole object graph — the same mechanism
    checkpoints use, which is why this lives here (PERF003 confines
    pickle to this module).  The in-process shard backend
    (:mod:`repro.runner.shardpool`) clones the built system once per
    shard so each shard mutates its own replica; no watermark handling
    is needed because target shards never mint request ids.
    """
    return pickle.loads(pickle.dumps(system, protocol=pickle.HIGHEST_PROTOCOL))


# ----------------------------------------------------------------------
# snapshot / restore
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Checkpoint:
    """One warm-up snapshot: metadata plus the pickled system graph.

    ``payload`` holds only the pickled :class:`System` graph; the
    metadata (version, prefix hash, request-id watermark, boundary
    cycle) lives in the dataclass fields, and on disk in a small
    separate pickle stream *ahead of* the payload.  Keeping them apart
    means a store lookup decodes a few dozen bytes of metadata, not the
    ~1 MB object graph — restoring is the only full decode, and every
    :func:`restore_system` call unpickles the payload afresh, so a
    single checkpoint forks any number of independent measurement runs.
    """

    prefix_hash: str
    payload: bytes
    version: int
    fingerprint: str
    warmup_epochs: int
    boundary_cycle: int
    request_id_watermark: int

    def meta(self) -> dict[str, Any]:
        """The on-disk metadata header, as a plain dict."""
        return {
            "version": self.version,
            "prefix_hash": self.prefix_hash,
            "fingerprint": self.fingerprint,
            "warmup_epochs": self.warmup_epochs,
            "boundary_cycle": self.boundary_cycle,
            "request_id_watermark": self.request_id_watermark,
        }


def snapshot_system(
    system: "System", warmup_epochs: int, prefix_hash: str | None = None
) -> Checkpoint:
    """Snapshot a system standing at its warm-up/measurement boundary.

    Pickling captures the complete object graph (pickle's memo preserves
    the shared references — the same Core object reachable from the
    system dict and a controller's fusion table stays one object on
    restore).  The request-id watermark is recorded so the restoring
    process can re-establish the global id order scheduler tie-breaks
    depend on.
    """
    if prefix_hash is None:
        raise ValueError(
            "snapshot_system needs the prefix hash computed on the "
            "built-but-unrun system (warmup_prefix_hash before run_epochs)"
        )
    watermark = request_id_watermark()
    payload = pickle.dumps(system, protocol=pickle.HIGHEST_PROTOCOL)
    return Checkpoint(
        prefix_hash=prefix_hash,
        payload=payload,
        version=CHECKPOINT_VERSION,
        fingerprint=source_fingerprint(),
        warmup_epochs=warmup_epochs,
        boundary_cycle=system.engine.now,
        request_id_watermark=watermark,
    )


def restore_system(checkpoint: Checkpoint) -> "System":
    """Resurrect an independent :class:`System` from a checkpoint.

    Three steps make fork-equals-cold hold:

    * unpickle the payload (a fresh object graph per call — restores
      never alias each other or the snapshotted original);
    * advance the process-global request-id counter past the snapshot's
      watermark, so ids minted by the measurement phase sort after every
      warm-up id exactly as they would have in a cold run (FR-FCFS and
      the PABST arbiter break ties by ``req_id``);
    * run the sanitizer's restore-validation pass over the resurrected
      state (clock/window consistency, live-event conservation, request
      deadline sanity) so a corrupt or version-skewed snapshot fails
      loudly here instead of producing a silently wrong figure.
    """
    from repro.sim.engine import SimulationError
    from repro.sim.sanitizer import SimSanitizer

    if checkpoint.version != CHECKPOINT_VERSION:
        raise SimulationError(
            f"checkpoint version {checkpoint.version!r} does not match "
            f"this build's {CHECKPOINT_VERSION}"
        )
    try:
        system = pickle.loads(checkpoint.payload)
    except Exception as exc:
        raise SimulationError(f"checkpoint payload does not unpickle: {exc}") from exc
    advance_request_ids(checkpoint.request_id_watermark)
    if system.engine.now != checkpoint.boundary_cycle:
        raise SimulationError(
            f"restored clock {system.engine.now} does not match the "
            f"checkpoint's boundary cycle {checkpoint.boundary_cycle}"
        )
    sanitizer = system.engine.sanitizer
    if sanitizer is None:
        # one-shot validation pass; not attached, so the dispatch loop
        # stays on its unsanitized fast path afterwards
        sanitizer = SimSanitizer()
    sanitizer.on_restore(system)
    return system


# ----------------------------------------------------------------------
# on-disk store
# ----------------------------------------------------------------------
class CheckpointStore:
    """Prefix-hash addressed store of warm-up checkpoints with LRU caps.

    Layout mirrors :class:`~repro.runner.cache.ResultCache`: one file
    per entry, atomic rename on save, corruption reads as a miss.  The
    source fingerprint lives *inside* the prefix hash, so stale
    checkpoints simply never match and are eventually evicted.
    """

    def __init__(
        self,
        directory: Path | str = DEFAULT_CHECKPOINT_DIR,
        max_entries: int | None = DEFAULT_MAX_CHECKPOINTS,
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be positive (or None)")
        self.directory = Path(directory)
        self.max_entries = max_entries

    def _path(self, prefix_hash: str) -> Path:
        return self.directory / f"{prefix_hash}.ckpt"

    def load(self, prefix_hash: str) -> Checkpoint | None:
        """The stored checkpoint, or None on miss/corruption/version skew.

        Only the small metadata header is decoded here (the system
        payload stays opaque bytes until :func:`restore_system`), so a
        validating lookup costs microseconds, not a full graph decode.
        """
        path = self._path(prefix_hash)
        try:
            raw = path.read_bytes()
        except OSError:
            return None
        try:
            stream = io.BytesIO(raw)
            meta = pickle.load(stream)
            payload = raw[stream.tell() :]
            version = meta["version"]
            fingerprint = meta["fingerprint"]
            warmup_epochs = meta["warmup_epochs"]
            boundary_cycle = meta["boundary_cycle"]
            watermark = meta["request_id_watermark"]
            stored_hash = meta["prefix_hash"]
        except Exception:
            return None
        if version != CHECKPOINT_VERSION or stored_hash != prefix_hash:
            return None
        if fingerprint != source_fingerprint():
            return None
        if not payload:
            return None
        try:
            os.utime(path)  # refresh LRU recency
        except OSError as exc:
            obs_warn(
                "checkpoint.utime_failed",
                "checkpoint store could not refresh recency of %s: %s",
                path,
                exc,
            )
        return Checkpoint(
            prefix_hash=prefix_hash,
            payload=payload,
            version=version,
            fingerprint=fingerprint,
            warmup_epochs=warmup_epochs,
            boundary_cycle=boundary_cycle,
            request_id_watermark=watermark,
        )

    def save(self, checkpoint: Checkpoint) -> Path:
        """Persist one checkpoint; atomic via rename; evicts LRU extras.

        File layout: a pickled metadata dict immediately followed by
        the pickled system graph (two concatenated pickle streams).
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self._path(checkpoint.prefix_hash)
        tmp = path.with_suffix(f".tmp-{os.getpid()}")
        with tmp.open("wb") as handle:
            handle.write(
                pickle.dumps(checkpoint.meta(), protocol=pickle.HIGHEST_PROTOCOL)
            )
            handle.write(checkpoint.payload)
        tmp.replace(path)
        self._evict()
        return path

    def _evict(self) -> int:
        """Drop least-recently-used entries beyond ``max_entries``."""
        if self.max_entries is None:
            return 0
        entries = self._entries()
        removed = 0
        if len(entries) <= self.max_entries:
            return 0
        by_age = sorted(entries, key=lambda p: (p.stat().st_mtime, p.name))
        for path in by_age[: len(entries) - self.max_entries]:
            try:
                path.unlink()
                removed += 1
            except OSError as exc:
                obs_warn(
                    "checkpoint.evict_unlink_failed",
                    "checkpoint store could not evict %s: %s",
                    path,
                    exc,
                )
        return removed

    def _entries(self) -> list[Path]:
        if not self.directory.is_dir():
            return []
        return sorted(self.directory.glob("*.ckpt"))

    def clear(self) -> int:
        """Delete every checkpoint; returns the number removed."""
        removed = 0
        for path in self._entries():
            path.unlink()
            removed += 1
        return removed

    def stats(self) -> dict[str, Any]:
        """Entry count and on-disk footprint for ``repro cache --stats``."""
        entries = self._entries()
        return {
            "directory": str(self.directory),
            "entries": len(entries),
            "bytes": sum(path.stat().st_size for path in entries),
            "max_entries": self.max_entries,
        }

    def __len__(self) -> int:
        return len(self._entries())
