"""Wall-clock, events/sec, and profiling of the experiment figures.

``repro bench`` times each figure's full ``run()`` in-process (single
process, no cache — the point is to measure the simulator, not the
runner) and writes a ``BENCH_<timestamp>.json``.  Each figure runs
``repeat`` times (default 3) and the **median** wall time is reported,
so one noisy run cannot flake the CI perf-smoke job.  With ``--check``
fresh numbers are compared against a committed baseline and the command
fails when events/sec regresses beyond the tolerance; ``--update``
rewrites ``BENCH_baseline.json`` in place.  The document records the
Python version, platform string, and git revision so baselines from
different machines are never compared blindly.

``repro profile`` runs one figure under :mod:`cProfile` and emits a JSON
hotspot report (top functions by total time), so perf PRs are measured
rather than guessed.
"""

from __future__ import annotations

import json
import platform
import statistics
import subprocess
import time
from pathlib import Path
from typing import Any, Iterable, Mapping

from repro.runner.spec import RunSpec
from repro.runner.worker import execute_spec

__all__ = [
    "BASELINE_PATH",
    "HISTORY_PATH",
    "append_history",
    "check_against_baseline",
    "default_bench_path",
    "git_revision",
    "run_bench",
    "run_profile",
    "run_warm_start_bench",
    "write_bench",
]

#: The committed baseline the CI perf-smoke job checks against.
BASELINE_PATH = Path("BENCH_baseline.json")

#: Append-only perf trajectory: one JSON line per ``repro bench`` run,
#: timestamped and git-rev-tagged, tracked in-repo next to the baseline.
HISTORY_PATH = Path("BENCH_history.jsonl")


def git_revision() -> str | None:
    """Current git commit hash, or None outside a repo / without git."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if proc.returncode != 0:
        return None
    return proc.stdout.strip() or None


def run_bench(
    figures: Iterable[str],
    quick: bool = True,
    seed: int = 0,
    repeat: int = 3,
    shards: int = 1,
    backend: str = "pure",
) -> dict[str, Any]:
    """Time each figure ``repeat`` times; returns the bench document.

    The reported wall time is the median across repeats (events/sec is
    derived from it); the event count is deterministic, so any repeat's
    count is the count.

    With ``shards > 1`` each figure additionally runs once through the
    sharded runner; the entry grows a ``"sharding"`` sub-document with
    the sharded wall time, the speedup vs the single-process median,
    and the host's CPU count (the honest context for that speedup — on
    a single-CPU host the workers time-slice one core and the barrier
    overhead makes the "speedup" a slowdown).  The sharded report is
    byte-compared against the single-process one, so a determinism
    break fails the bench instead of flattering it.

    ``backend`` selects the engine implementation the timed runs execute
    under (:mod:`repro.accel`; already resolved — "pure" or "c", never
    "auto").  Under ``"c"`` each figure additionally runs once pure and
    the entry grows a ``"compiled"`` sub-document with the measured
    speedup vs that pure run and a byte-identity check of the two
    reports — the bench publishes the determinism contract alongside
    the number, so a divergent compiled core fails loudly here too.
    """
    if repeat < 1:
        raise ValueError("repeat must be >= 1")
    if backend == "c":
        # Force the extension build up front so no timed (or warm-up)
        # window pays the compiler.  A failed build is not raised here:
        # the warm-up run surfaces it as the figure's error entry.
        from repro import accel

        try:
            accel.resolve_backend("c")
        except accel.AccelUnavailable:
            pass
    results: dict[str, Any] = {}
    for figure in figures:
        walls: list[float] = []
        entry: dict[str, Any] | None = None
        report: str | None = None
        fastpath: dict[str, Any] | None = None
        # One untimed warm-up run per figure: first-run costs (imports,
        # code caches, allocator growth) never land in the median.
        warmup = execute_spec(
            RunSpec(figure=figure, quick=quick, seed=seed, backend=backend)
        )
        if not warmup.get("ok"):
            results[figure] = {"ok": False, "error": warmup.get("error")}
            continue
        for _ in range(repeat):
            outcome = execute_spec(
                RunSpec(figure=figure, quick=quick, seed=seed, backend=backend)
            )
            if not outcome.get("ok"):
                entry = {"ok": False, "error": outcome.get("error")}
                break
            walls.append(outcome["wall_seconds"])
            report = outcome.get("report")
            fastpath = outcome.get("fastpath")
            entry = {"ok": True, "events": outcome["events"]}
        if entry.get("ok"):
            wall = statistics.median(walls)
            entry["wall_seconds"] = round(wall, 4)
            entry["events_per_sec"] = round(entry["events"] / wall, 1) if wall > 0 else 0.0
            entry["repeats"] = len(walls)
            if shards > 1:
                entry["sharding"] = _bench_sharded(
                    figure, quick, seed, shards, wall, report, backend
                )
            if backend == "c":
                entry["compiled"] = _bench_vs_pure(
                    figure, quick, seed, wall, report, fastpath
                )
        results[figure] = entry
    document = {
        "schema": 2,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "quick": quick,
        "seed": seed,
        "repeat": repeat,
        "backend": backend,
        "accel_fingerprint": _accel_fingerprint(backend),
        "python": platform.python_version(),
        "python_version": platform.python_version(),
        "platform": platform.platform(),
        "git_revision": git_revision(),
        "figures": results,
    }
    if shards > 1:
        document["shards"] = shards
    return document


def _accel_fingerprint(backend: str) -> str | None:
    """Build fingerprint of the compiled extension, None under pure."""
    if backend != "c":
        return None
    from repro import accel

    return accel.build_fingerprint()


def _bench_vs_pure(
    figure: str,
    quick: bool,
    seed: int,
    c_wall: float,
    c_report: str | None,
    fastpath: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """One pure-backend run of a figure, byte-checked against the C run."""
    outcome = execute_spec(
        RunSpec(figure=figure, quick=quick, seed=seed, backend="pure")
    )
    if not outcome.get("ok"):
        return {"ok": False, "error": outcome.get("error")}
    if c_report is not None and outcome.get("report") != c_report:
        return {
            "ok": False,
            "error": "compiled report diverged from pure-backend run",
        }
    pure_wall = outcome["wall_seconds"]
    entry = {
        "ok": True,
        "pure_wall_seconds": round(pure_wall, 4),
        "speedup_vs_pure": round(pure_wall / c_wall, 3) if c_wall > 0 else 0.0,
        "byte_identical": c_report is not None,
    }
    if fastpath is not None:
        # From the last timed C repeat: dispatch-loop coverage of the
        # native kind handlers (see repro.accel.fastpath_stats).
        entry["fastpath_hits"] = fastpath.get("hits")
        entry["fastpath_misses"] = fastpath.get("misses")
        entry["fastpath_hit_rate"] = fastpath.get("hit_rate")
    return entry


def _bench_sharded(
    figure: str,
    quick: bool,
    seed: int,
    shards: int,
    baseline_wall: float,
    baseline_report: str | None,
    backend: str = "pure",
) -> dict[str, Any]:
    """One sharded run of a figure, byte-checked against the 1-shard report."""
    import os

    outcome = execute_spec(
        RunSpec(figure=figure, quick=quick, seed=seed, shards=shards,
                backend=backend)
    )
    cpu_count = os.cpu_count()
    if not outcome.get("ok"):
        return {"ok": False, "shards": shards, "error": outcome.get("error")}
    if baseline_report is not None and outcome.get("report") != baseline_report:
        return {
            "ok": False,
            "shards": shards,
            "error": "sharded report diverged from single-process run",
        }
    wall = outcome["wall_seconds"]
    return {
        "ok": True,
        "shards": shards,
        "wall_seconds": round(wall, 4),
        "speedup": round(baseline_wall / wall, 3) if wall > 0 else 0.0,
        "cpu_count": cpu_count,
        "byte_identical": baseline_report is not None,
    }


def run_warm_start_bench(
    figure: str = "fig05", quick: bool = True, seed: int = 0, repeat: int = 3
) -> dict[str, Any]:
    """Cold vs warm-started sweep wall-clock over one figure's grid.

    Times the figure's full sweep twice — cold (every cell simulates its
    own warm-up) and warm-started (cells fork from a shared checkpoint;
    the store is populated outside the timed window).  Sequential
    workers keep the comparison about simulation work, not pool
    scheduling.  Reports the median of ``repeat`` runs each way and the
    resulting speedup; warm reports are cross-checked byte-identical to
    cold ones, so a determinism break fails the bench instead of
    flattering it.
    """
    import tempfile

    from repro.runner.pool import run_specs
    from repro.runner.spec import specs_for_figure

    if repeat < 1:
        raise ValueError("repeat must be >= 1")
    specs = specs_for_figure(figure, quick=quick, seed=seed)
    entry: dict[str, Any] = {
        "figure": figure,
        "quick": quick,
        "cells": len(specs),
        "repeats": repeat,
    }

    def timed_sweep(warm_start_dir: str | None) -> tuple[float, list[str] | None]:
        start = time.perf_counter()
        outcomes = run_specs(specs, workers=1, warm_start_dir=warm_start_dir)
        wall = time.perf_counter() - start
        if not all(outcome.ok for outcome in outcomes):
            return wall, None
        return wall, [outcome.result["report"] for outcome in outcomes]

    with tempfile.TemporaryDirectory(prefix="repro-warm-bench-") as tmp:
        cold_walls: list[float] = []
        cold_reports: list[str] | None = None
        for _ in range(repeat):
            wall, reports = timed_sweep(None)
            if reports is None:
                entry.update(ok=False, error="cold sweep cell failed")
                return entry
            cold_walls.append(wall)
            cold_reports = reports
        timed_sweep(tmp)  # populate the checkpoint store, untimed
        warm_walls: list[float] = []
        for _ in range(repeat):
            wall, reports = timed_sweep(tmp)
            if reports is None:
                entry.update(ok=False, error="warm-started sweep cell failed")
                return entry
            if reports != cold_reports:
                entry.update(
                    ok=False, error="warm-started reports diverged from cold"
                )
                return entry
            warm_walls.append(wall)

    cold = statistics.median(cold_walls)
    warm = statistics.median(warm_walls)
    entry.update(
        ok=True,
        cold_seconds=round(cold, 4),
        warm_seconds=round(warm, 4),
        speedup=round(cold / warm, 3) if warm > 0 else 0.0,
    )
    return entry


def run_profile(
    figure: str, quick: bool = True, seed: int = 0, top: int = 25,
    backend: str = "pure",
) -> dict[str, Any]:
    """Run one figure under cProfile; returns a JSON-ready hotspot report.

    Hotspots are ranked by ``tottime`` (time in the function itself,
    excluding callees) — the number that tells a perf PR where the
    cycles actually go.  Under ``backend="c"`` the wheel loop runs
    inside the extension, so its cost shows up as one opaque
    ``run_until``/``run`` builtin frame and the Python hotspots are the
    component callbacks it dispatches into.
    """
    import cProfile

    profiler = cProfile.Profile()
    outcome = profiler.runcall(
        execute_spec,
        RunSpec(figure=figure, quick=quick, seed=seed, backend=backend),
    )
    profiler.create_stats()
    hotspots = []
    for (filename, line, name), (cc, nc, tt, ct, _callers) in profiler.stats.items():
        hotspots.append(
            {
                "file": filename,
                "line": line,
                "function": name,
                "ncalls": nc,
                "primitive_calls": cc,
                "tottime": round(tt, 6),
                "cumtime": round(ct, 6),
            }
        )
    hotspots.sort(key=lambda h: h["tottime"], reverse=True)
    report: dict[str, Any] = {
        "schema": 1,
        "figure": figure,
        "quick": quick,
        "seed": seed,
        "backend": backend,
        "accel_fingerprint": _accel_fingerprint(backend),
        "ok": bool(outcome.get("ok")),
        "python_version": platform.python_version(),
        "platform": platform.platform(),
        "git_revision": git_revision(),
        "hotspots": hotspots[:top],
    }
    if outcome.get("ok"):
        report["wall_seconds"] = round(outcome["wall_seconds"], 4)
        report["events"] = outcome["events"]
        report["events_per_sec"] = round(outcome["events_per_sec"], 1)
        fastpath = outcome.get("fastpath")
        if fastpath is not None:
            # Native fast-path coverage for this run: hit/miss totals and
            # per-kind native dispatch counts, so a profile of the C
            # backend shows *what* the opaque run_until frame executed.
            report["fastpath"] = dict(fastpath)
    else:
        report["error"] = outcome.get("error")
    return report


def default_bench_path() -> Path:
    """``BENCH_<timestamp>.json`` in the current directory."""
    return Path(time.strftime("BENCH_%Y%m%d_%H%M%S.json"))


def write_bench(document: Mapping[str, Any], path: Path | str) -> Path:
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def append_history(
    document: Mapping[str, Any], path: Path | str = HISTORY_PATH
) -> Path:
    """Append one compact line for this bench run to the history log.

    The line keeps only the trajectory-relevant fields (timestamp, git
    revision, run parameters, per-figure rate/wall/events), so the log
    stays grep-able and a thousand runs cost kilobytes.  Baseline
    updates and history appends are deliberately decoupled: the history
    records every measurement, the baseline only the blessed ones.
    """
    figures = {}
    for figure, entry in document.get("figures", {}).items():
        if entry.get("ok"):
            figures[figure] = {
                "events_per_sec": entry.get("events_per_sec"),
                "wall_seconds": entry.get("wall_seconds"),
                "events": entry.get("events"),
            }
            sharding = entry.get("sharding")
            if sharding is not None:
                figures[figure]["sharding"] = dict(sharding)
            compiled = entry.get("compiled")
            if compiled is not None:
                figures[figure]["compiled"] = dict(compiled)
        else:
            figures[figure] = {"error": entry.get("error")}
    line = {
        "generated_at": document.get("generated_at"),
        "git_revision": document.get("git_revision"),
        "quick": document.get("quick"),
        "seed": document.get("seed"),
        "repeat": document.get("repeat"),
        "backend": document.get("backend", "pure"),
        "accel_fingerprint": document.get("accel_fingerprint"),
        "python_version": document.get("python_version"),
        "figures": figures,
    }
    warm = document.get("warm_start")
    if warm is not None:
        if warm.get("ok"):
            line["warm_start"] = {
                "figure": warm.get("figure"),
                "cold_seconds": warm.get("cold_seconds"),
                "warm_seconds": warm.get("warm_seconds"),
                "speedup": warm.get("speedup"),
            }
        else:
            line["warm_start"] = {"error": warm.get("error")}
    path = Path(path)
    with path.open("a", encoding="utf-8") as handle:
        json.dump(line, handle, sort_keys=True, separators=(",", ":"))
        handle.write("\n")
    return path


def check_against_baseline(
    document: Mapping[str, Any],
    baseline: Mapping[str, Any],
    tolerance: float = 0.30,
) -> list[str]:
    """Regression messages for figures slower than baseline * (1 - tol).

    Only figures present and successful in *both* documents are compared;
    events/sec is the metric (it is far more machine-stable than raw
    wall-clock because the event count is deterministic).
    """
    problems: list[str] = []
    baseline_figures = baseline.get("figures", {})
    for figure, fresh in document.get("figures", {}).items():
        base = baseline_figures.get(figure)
        if base is None:
            continue
        if not fresh.get("ok"):
            problems.append(f"{figure}: benchmark run failed: {fresh.get('error')}")
            continue
        if not base.get("ok"):
            continue
        base_rate = float(base.get("events_per_sec", 0.0))
        fresh_rate = float(fresh.get("events_per_sec", 0.0))
        if base_rate <= 0:
            continue
        floor = base_rate * (1.0 - tolerance)
        if fresh_rate < floor:
            problems.append(
                f"{figure}: events/sec regressed {fresh_rate:,.0f} < "
                f"{floor:,.0f} (baseline {base_rate:,.0f}, "
                f"tolerance {tolerance:.0%})"
            )
    return problems
