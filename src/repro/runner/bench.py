"""Wall-clock and events/sec benchmarking of the experiment figures.

``repro bench`` times each figure's full ``run()`` in-process (single
process, no cache — the point is to measure the simulator, not the
runner) and writes a ``BENCH_<timestamp>.json``.  With ``--check`` it
instead compares fresh numbers against a committed baseline and fails
when events/sec regresses beyond the tolerance; CI runs this as its
perf smoke test against ``BENCH_baseline.json``.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path
from typing import Any, Iterable, Mapping

from repro.runner.spec import RunSpec
from repro.runner.worker import execute_spec

__all__ = [
    "check_against_baseline",
    "default_bench_path",
    "run_bench",
    "write_bench",
]


def run_bench(
    figures: Iterable[str], quick: bool = True, seed: int = 0
) -> dict[str, Any]:
    """Time each figure once; returns the bench document (JSON-ready)."""
    results: dict[str, Any] = {}
    for figure in figures:
        outcome = execute_spec(RunSpec(figure=figure, quick=quick, seed=seed))
        if not outcome.get("ok"):
            results[figure] = {"ok": False, "error": outcome.get("error")}
            continue
        results[figure] = {
            "ok": True,
            "wall_seconds": round(outcome["wall_seconds"], 4),
            "events": outcome["events"],
            "events_per_sec": round(outcome["events_per_sec"], 1),
        }
    return {
        "schema": 1,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "quick": quick,
        "seed": seed,
        "python": platform.python_version(),
        "figures": results,
    }


def default_bench_path() -> Path:
    """``BENCH_<timestamp>.json`` in the current directory."""
    return Path(time.strftime("BENCH_%Y%m%d_%H%M%S.json"))


def write_bench(document: Mapping[str, Any], path: Path | str) -> Path:
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def check_against_baseline(
    document: Mapping[str, Any],
    baseline: Mapping[str, Any],
    tolerance: float = 0.30,
) -> list[str]:
    """Regression messages for figures slower than baseline * (1 - tol).

    Only figures present and successful in *both* documents are compared;
    events/sec is the metric (it is far more machine-stable than raw
    wall-clock because the event count is deterministic).
    """
    problems: list[str] = []
    baseline_figures = baseline.get("figures", {})
    for figure, fresh in document.get("figures", {}).items():
        base = baseline_figures.get(figure)
        if base is None:
            continue
        if not fresh.get("ok"):
            problems.append(f"{figure}: benchmark run failed: {fresh.get('error')}")
            continue
        if not base.get("ok"):
            continue
        base_rate = float(base.get("events_per_sec", 0.0))
        fresh_rate = float(fresh.get("events_per_sec", 0.0))
        if base_rate <= 0:
            continue
        floor = base_rate * (1.0 - tolerance)
        if fresh_rate < floor:
            problems.append(
                f"{figure}: events/sec regressed {fresh_rate:,.0f} < "
                f"{floor:,.0f} (baseline {base_rate:,.0f}, "
                f"tolerance {tolerance:.0%})"
            )
    return problems
