"""Source fingerprinting for the result and analysis caches.

A cached result is only valid for the code that produced it.  The
fingerprint is a SHA-256 over every ``*.py`` file under the ``repro``
package (paths and contents, sorted), so any source change — including
to a figure module or the simulator kernels — invalidates all entries
without needing per-module dependency tracking.  The whole-program
analyzer (:mod:`repro.devtools.analysis`) keys its diagnostic cache on
the same digest: the analysis is a pure function of exactly the file
set hashed here.
"""

from __future__ import annotations

import hashlib
from pathlib import Path

__all__ = ["source_files", "source_fingerprint"]

_cached: tuple[str, str] | None = None


def source_files(root: Path | str | None = None) -> list[Path]:
    """The sorted ``*.py`` file set one fingerprint covers."""
    if root is None:
        root = Path(__file__).resolve().parent.parent
    return sorted(Path(root).rglob("*.py"))


def source_fingerprint(root: Path | str | None = None) -> str:
    """Hex digest (16 chars) of the ``repro`` package's source tree."""
    global _cached
    if root is None:
        root = Path(__file__).resolve().parent.parent
    root = Path(root)
    key = str(root)
    if _cached is not None and _cached[0] == key:
        return _cached[1]
    digest = hashlib.sha256()
    for path in source_files(root):
        digest.update(str(path.relative_to(root)).encode("utf-8"))
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    fingerprint = digest.hexdigest()[:16]
    _cached = (key, fingerprint)
    return fingerprint
