"""Run specifications: content-hashed descriptions of one experiment run.

A :class:`RunSpec` pins everything that determines a run's output —
figure, cell kwargs, seed, quick mode, and any :class:`SystemConfig`
overrides.  Because the simulator is bit-deterministic, two specs with
equal content hashes produce byte-identical reports, which is what makes
the on-disk result cache (:mod:`repro.runner.cache`) sound.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from typing import Any, Mapping

__all__ = ["RunSpec", "specs_for_figure"]


def _canonical(value: Any) -> Any:
    """Normalize values so hashing is stable across equivalent spellings.

    Tuples and lists hash identically (JSON has only arrays); mappings
    are sorted by key.  Anything else must already be JSON-serializable.
    """
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    if isinstance(value, Mapping):
        return {str(key): _canonical(value[key]) for key in sorted(value)}
    return value


@dataclass(frozen=True)
class RunSpec:
    """One cell of one figure's grid, fully pinned.

    ``cell`` holds extra kwargs for the figure's ``run()`` beyond
    ``quick``/``seed`` (e.g. ``{"workloads": ("mcf",)}``); ``overrides``
    holds :class:`SystemConfig` field replacements applied through
    :func:`repro.experiments.common.config_overrides`.
    """

    figure: str
    cell: Mapping[str, Any] = field(default_factory=dict)
    seed: int = 0
    quick: bool = True
    overrides: Mapping[str, Any] = field(default_factory=dict)
    #: Shard count the run executes under.  Sharded runs are
    #: byte-identical to single-process ones, but the count (plus the
    #: partition scheme) still enters the content hash: a determinism
    #: bug in the shard runner must surface as a diff, never be papered
    #: over by a cache hit recorded under a different shard count.
    shards: int = 1
    #: Execution backend, already resolved ("pure" or "c" — never
    #: "auto"; the CLI resolves before building specs).  Backends are
    #: byte-identical by contract, but the identity still enters the
    #: content hash for the same reason ``shards`` does: a determinism
    #: bug in the compiled core must surface as a report diff, never be
    #: papered over by a cache hit recorded under the other backend.
    backend: str = "pure"

    def canonical_json(self) -> str:
        """Stable JSON encoding used for hashing and cache metadata."""
        from repro.sim.shard import ShardPlan

        payload = {
            "backend": self.backend,
            "figure": self.figure,
            "cell": _canonical(self.cell),
            "seed": self.seed,
            "quick": self.quick,
            "overrides": _canonical(self.overrides),
            "sharding": {"shards": self.shards, "partition": ShardPlan.SCHEME},
        }
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    def spec_hash(self) -> str:
        """Content hash identifying this spec (first 16 hex chars)."""
        digest = hashlib.sha256(self.canonical_json().encode("utf-8"))
        return digest.hexdigest()[:16]

    def label(self) -> str:
        """Short human-readable tag for progress output."""
        if not self.cell:
            return self.figure
        parts = []
        for key in sorted(self.cell):
            value = self.cell[key]
            if isinstance(value, (list, tuple)) and len(value) == 1:
                value = value[0]
            parts.append(str(value))
        return f"{self.figure}[{','.join(parts)}]"

    def warmup_group_key(self) -> str:
        """Content hash of everything but measurement-phase cell keys.

        Figure modules declare measurement-only knobs in a module-level
        ``MEASURE_KEYS`` tuple; two specs whose hashes agree here share
        a warm-up prefix, so a warm-started sweep simulates the warm-up
        for one of them and forks the rest from its checkpoint.  Specs
        for figures with no ``MEASURE_KEYS`` hash their full cell and
        therefore form singleton groups (warm-starting still dedupes
        repeated invocations of the same cell across sweeps).
        """
        from repro.runner.worker import figure_module

        measure_keys = getattr(figure_module(self.figure), "MEASURE_KEYS", ())
        prefix_cell = {
            key: value
            for key, value in self.cell.items()
            if key not in measure_keys
        }
        # Deliberately backend-free (like shards): checkpoints are
        # backend-neutral — wheel state marshals losslessly between the
        # pure and compiled engines — so specs differing only in backend
        # share one warm-up prefix.
        payload = {
            "figure": self.figure,
            "cell": _canonical(prefix_cell),
            "seed": self.seed,
            "quick": self.quick,
            "overrides": _canonical(self.overrides),
        }
        encoded = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(encoded.encode("utf-8")).hexdigest()[:16]

    def to_payload(self) -> dict:
        """Plain-dict form that crosses the process-pool boundary."""
        payload = asdict(self)
        payload["cell"] = dict(self.cell)
        payload["overrides"] = dict(self.overrides)
        return payload

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "RunSpec":
        return cls(
            figure=payload["figure"],
            cell=dict(payload.get("cell", {})),
            seed=int(payload.get("seed", 0)),
            quick=bool(payload.get("quick", True)),
            overrides=dict(payload.get("overrides", {})),
            shards=int(payload.get("shards", 1)),
            # payloads written before the backend field existed ran pure
            backend=str(payload.get("backend", "pure")),
        )


def specs_for_figure(
    figure: str,
    quick: bool = True,
    seed: int = 0,
    overrides: Mapping[str, Any] | None = None,
    shards: int = 1,
    backend: str = "pure",
) -> list[RunSpec]:
    """Expand one figure's ``sweep_cells`` grid into :class:`RunSpec` s."""
    from repro.runner.worker import figure_module

    module = figure_module(figure)
    cells = module.sweep_cells(quick=quick)
    return [
        RunSpec(
            figure=figure,
            cell=cell,
            seed=seed,
            quick=quick,
            overrides=dict(overrides or {}),
            shards=shards,
            backend=backend,
        )
        for cell in cells
    ]
