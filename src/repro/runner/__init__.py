"""Parallel experiment runner: sweeps, caching, and benchmarking.

The nine ``fig*`` experiment modules each expose their grid as
``sweep_cells(quick)`` — a list of independent kwargs dicts for their
``run()`` function.  This package turns those grids into:

* :mod:`repro.runner.spec` — :class:`RunSpec`, a content-hashed
  description of one cell run (figure, cell kwargs, seed, quick mode,
  config overrides);
* :mod:`repro.runner.pool` — process-pool fan-out with per-spec
  timeouts, failure isolation, and a sequential fallback;
* :mod:`repro.runner.cache` — an on-disk result cache keyed by spec
  hash + source fingerprint, so repeated sweeps are near-instant;
* :mod:`repro.runner.checkpoint` — versioned warm-up snapshots of full
  simulator state, content-addressed by warm-up prefix hash, so sweep
  cells sharing a warm-up fork from one checkpoint instead of each
  re-simulating it (``repro sweep --warm-start``);
* :mod:`repro.runner.bench` — wall-clock / events-per-second benchmarks
  with a committed-baseline regression check (CI's perf smoke test)
  and an append-only ``BENCH_history.jsonl`` perf trajectory.

None of this code runs inside simulated time: the simulation kernels it
drives stay bit-identical whether invoked directly, through a sweep, or
from the cache (the cache stores the byte-exact report text).
"""

from repro.runner.cache import ResultCache
from repro.runner.checkpoint import (
    Checkpoint,
    CheckpointStore,
    restore_system,
    snapshot_system,
    warmup_prefix_hash,
)
from repro.runner.fingerprint import source_fingerprint
from repro.runner.pool import SweepOutcome, run_specs
from repro.runner.spec import RunSpec, specs_for_figure

__all__ = [
    "Checkpoint",
    "CheckpointStore",
    "ResultCache",
    "RunSpec",
    "SweepOutcome",
    "restore_system",
    "run_specs",
    "snapshot_system",
    "source_fingerprint",
    "specs_for_figure",
    "warmup_prefix_hash",
]
