"""Worker-side execution of one :class:`~repro.runner.spec.RunSpec`.

:func:`execute_payload` is a module-level function taking and returning
plain dicts, so it pickles cleanly across the ``ProcessPoolExecutor``
boundary.  It measures wall-clock time and the number of simulation
events dispatched (via :func:`repro.sim.engine.dispatched_total`), the
two numbers the bench and sweep reports are built from.

Failures are part of the contract: any exception inside the figure run
is caught and returned as a ``{"ok": False, ...}`` payload, so one bad
cell never takes down a sweep.
"""

from __future__ import annotations

import time
import traceback
from typing import Any, Mapping

__all__ = ["execute_payload", "execute_spec", "figure_module"]


def figure_module(figure: str):
    """The experiment module for a figure name (e.g. ``fig05``)."""
    import importlib

    from repro.cli import EXPERIMENTS

    if figure not in EXPERIMENTS:
        known = ", ".join(EXPERIMENTS)
        raise KeyError(f"unknown figure {figure!r}; known: {known}")
    run_fn, _ = EXPERIMENTS[figure]
    return importlib.import_module(run_fn.__module__)


def _run_kwargs(cell: Mapping[str, Any]) -> dict[str, Any]:
    """Cell kwargs with JSON round-trip artifacts undone (lists->tuples)."""
    return {
        key: tuple(value) if isinstance(value, list) else value
        for key, value in cell.items()
    }


def execute_payload(payload: Mapping[str, Any]) -> dict[str, Any]:
    """Run one spec (as a plain-dict payload) and return a result dict.

    A ``warm_start_dir`` key in the payload (set by the pool's
    warm-start batching, not part of the spec's content hash) routes
    the run through that directory's checkpoint store.
    """
    from repro.runner.spec import RunSpec

    spec = RunSpec.from_payload(payload)
    try:
        return execute_spec(spec, warm_start_dir=payload.get("warm_start_dir"))
    except Exception as exc:  # noqa: BLE001 - isolation is the point
        return {
            "ok": False,
            "error": f"{type(exc).__name__}: {exc}",
            "traceback": traceback.format_exc(),
        }


def execute_spec(spec: "Any", warm_start_dir: str | None = None) -> dict[str, Any]:
    """Run one :class:`RunSpec` in-process and time it."""
    from contextlib import nullcontext

    from repro import accel
    from repro.experiments.common import config_overrides, sharded, warm_start
    from repro.sim.engine import dispatched_total

    shards = getattr(spec, "shards", 1)
    # Backend selection wraps the whole run (construction included) so
    # warm-start restores and shard clones re-resolve under it; "pure"
    # still enters the context to shadow any ambient REPRO_ACCEL=c, since
    # the spec's resolved backend is part of its content hash.
    backing = accel.backend(getattr(spec, "backend", "pure"))
    if warm_start_dir is not None:
        if shards > 1:
            from repro.sim.engine import SimulationError

            raise SimulationError(
                "sharded specs cannot warm-start: a checkpoint captures "
                "one engine, not a shard ensemble"
            )
        from repro.runner.checkpoint import CheckpointStore

        warming = warm_start(CheckpointStore(warm_start_dir))
    else:
        warming = nullcontext()
    sharding = sharded(shards) if shards > 1 else nullcontext()
    module = figure_module(spec.figure)
    kwargs = _run_kwargs(spec.cell)
    events_before = dispatched_total()
    fp_before = accel.fastpath_stats()
    started = time.perf_counter()
    with backing, config_overrides(**dict(spec.overrides)), warming, sharding:
        result = module.run(quick=spec.quick, seed=spec.seed, **kwargs)
    wall = time.perf_counter() - started
    events = dispatched_total() - events_before
    outcome = {
        "ok": True,
        "figure": spec.figure,
        "label": spec.label(),
        "report": result.report(),
        "wall_seconds": wall,
        "events": events,
        "events_per_sec": events / wall if wall > 0 else 0.0,
    }
    fastpath = _fastpath_delta(fp_before, accel.fastpath_stats())
    if fastpath is not None:
        outcome["fastpath"] = fastpath
    # Result objects that expose a structured document (the arena) ship
    # it through the cache so reports can be merged without re-running.
    if hasattr(result, "metrics"):
        outcome["metrics"] = result.metrics()
    return outcome


def _fastpath_delta(
    before: Mapping[str, Any], after: Mapping[str, Any]
) -> dict[str, Any] | None:
    """Native fast-path counter delta for one run, or None if idle.

    The extension's counters are process-global, so the delta isolates
    this run's dispatch coverage.  A pure-backend run moves nothing and
    reports nothing.
    """
    hits = after["hits"] - before["hits"]
    misses = after["misses"] - before["misses"]
    if hits == 0 and misses == 0:
        return None
    kinds_before = before.get("kinds", {})
    kinds = {
        tag: count - kinds_before.get(tag, 0)
        for tag, count in after.get("kinds", {}).items()
        if count - kinds_before.get(tag, 0) > 0
    }
    total = hits + misses
    return {
        "hits": hits,
        "misses": misses,
        "hit_rate": round(hits / total, 6) if total > 0 else 0.0,
        "kinds": kinds,
    }
