"""On-disk cache for sweep results.

One JSON file per (spec hash, source fingerprint) pair under
``.repro-cache/``.  Entries store the byte-exact report text plus the
timing metadata of the original run, so a cache hit reproduces exactly
what a live run would have printed.  Stale entries (older fingerprints)
are left on disk and simply never match; ``clear()`` removes everything.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any

__all__ = ["ResultCache"]

DEFAULT_CACHE_DIR = ".repro-cache"


class ResultCache:
    """Spec-hash + fingerprint keyed store of finished run results."""

    def __init__(self, directory: Path | str = DEFAULT_CACHE_DIR) -> None:
        self.directory = Path(directory)

    def _path(self, spec_hash: str, fingerprint: str) -> Path:
        return self.directory / f"{spec_hash}-{fingerprint}.json"

    def load(self, spec_hash: str, fingerprint: str) -> dict[str, Any] | None:
        """The cached result payload, or None on miss/corruption."""
        path = self._path(spec_hash, fingerprint)
        try:
            with path.open("r", encoding="utf-8") as handle:
                entry = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None
        if entry.get("spec_hash") != spec_hash:
            return None
        if entry.get("fingerprint") != fingerprint:
            return None
        result = entry.get("result")
        return result if isinstance(result, dict) else None

    def store(
        self,
        spec_hash: str,
        fingerprint: str,
        spec_json: str,
        result: dict[str, Any],
    ) -> Path:
        """Persist one run's result; atomic via rename."""
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self._path(spec_hash, fingerprint)
        entry = {
            "spec_hash": spec_hash,
            "fingerprint": fingerprint,
            "spec": json.loads(spec_json),
            "result": result,
        }
        tmp = path.with_suffix(f".tmp-{os.getpid()}")
        with tmp.open("w", encoding="utf-8") as handle:
            json.dump(entry, handle, indent=2, sort_keys=True)
            handle.write("\n")
        tmp.replace(path)
        return path

    def clear(self) -> int:
        """Delete every cache entry; returns the number removed."""
        removed = 0
        if not self.directory.is_dir():
            return 0
        for path in sorted(self.directory.glob("*.json")):
            path.unlink()
            removed += 1
        return removed

    def __len__(self) -> int:
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("*.json"))
