"""On-disk cache for sweep results.

One JSON file per (spec hash, source fingerprint) pair under
``.repro-cache/``.  Entries store the byte-exact report text plus the
timing metadata of the original run, so a cache hit reproduces exactly
what a live run would have printed.  Stale entries (older fingerprints)
never match on load and are reclaimed by the LRU cap: the store evicts
the least-recently-used entries beyond ``max_entries`` (hits refresh
recency via mtime), so the cache stays bounded across source changes
instead of growing a dead file per edited line of simulator code.
``repro cache --stats/--clear`` exposes the same accounting on the CLI.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any

from repro.obs.warnings import obs_warn

__all__ = ["ResultCache"]

DEFAULT_CACHE_DIR = ".repro-cache"

#: Default LRU cap.  A full nine-figure sweep is a few dozen cells, so
#: 256 holds several sweeps' worth of results across source revisions.
DEFAULT_MAX_RESULTS = 256


class ResultCache:
    """Spec-hash + fingerprint keyed store of finished run results."""

    def __init__(
        self,
        directory: Path | str = DEFAULT_CACHE_DIR,
        max_entries: int | None = DEFAULT_MAX_RESULTS,
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be positive (or None)")
        self.directory = Path(directory)
        self.max_entries = max_entries

    def _path(self, spec_hash: str, fingerprint: str) -> Path:
        return self.directory / f"{spec_hash}-{fingerprint}.json"

    def load(self, spec_hash: str, fingerprint: str) -> dict[str, Any] | None:
        """The cached result payload, or None on miss/corruption."""
        path = self._path(spec_hash, fingerprint)
        try:
            with path.open("r", encoding="utf-8") as handle:
                entry = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None
        if entry.get("spec_hash") != spec_hash:
            return None
        if entry.get("fingerprint") != fingerprint:
            return None
        result = entry.get("result")
        if not isinstance(result, dict):
            return None
        try:
            os.utime(path)  # refresh LRU recency
        except OSError as exc:
            # tolerated (a read-only store still serves hits) but not
            # silent: stale recency skews LRU eviction
            obs_warn(
                "cache.utime_failed",
                "result cache could not refresh recency of %s: %s",
                path,
                exc,
            )
        return result

    def store(
        self,
        spec_hash: str,
        fingerprint: str,
        spec_json: str,
        result: dict[str, Any],
    ) -> Path:
        """Persist one run's result; atomic via rename."""
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self._path(spec_hash, fingerprint)
        entry = {
            "spec_hash": spec_hash,
            "fingerprint": fingerprint,
            "spec": json.loads(spec_json),
            "result": result,
        }
        tmp = path.with_suffix(f".tmp-{os.getpid()}")
        with tmp.open("w", encoding="utf-8") as handle:
            json.dump(entry, handle, indent=2, sort_keys=True)
            handle.write("\n")
        tmp.replace(path)
        self._evict()
        return path

    def _entries(self) -> list[Path]:
        if not self.directory.is_dir():
            return []
        return sorted(self.directory.glob("*.json"))

    def _evict(self) -> int:
        """Drop least-recently-used entries beyond ``max_entries``."""
        if self.max_entries is None:
            return 0
        entries = self._entries()
        if len(entries) <= self.max_entries:
            return 0
        removed = 0
        by_age = sorted(entries, key=lambda p: (p.stat().st_mtime, p.name))
        for path in by_age[: len(entries) - self.max_entries]:
            try:
                path.unlink()
                removed += 1
            except OSError as exc:
                obs_warn(
                    "cache.evict_unlink_failed",
                    "result cache could not evict %s: %s",
                    path,
                    exc,
                )
        return removed

    def clear(self) -> int:
        """Delete every cache entry; returns the number removed."""
        removed = 0
        for path in self._entries():
            path.unlink()
            removed += 1
        return removed

    def stats(self) -> dict[str, Any]:
        """Entry count and on-disk footprint for ``repro cache --stats``."""
        entries = self._entries()
        return {
            "directory": str(self.directory),
            "entries": len(entries),
            "bytes": sum(path.stat().st_size for path in entries),
            "max_entries": self.max_entries,
        }

    def __len__(self) -> int:
        return len(self._entries())
