"""Process-pool fan-out over run specs with caching and failure isolation.

:func:`run_specs` is the one entry point: it resolves cache hits first,
fans the misses out over a ``ProcessPoolExecutor`` (or runs them inline
for ``workers <= 1``), enforces a per-spec timeout, and stores fresh
successes back into the cache.  A worker crash or a broken pool degrades
to sequential in-process execution rather than failing the sweep.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, process
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.runner.cache import ResultCache
from repro.runner.fingerprint import source_fingerprint
from repro.runner.spec import RunSpec
from repro.runner.worker import execute_payload

__all__ = ["SweepOutcome", "run_specs"]


@dataclass
class SweepOutcome:
    """One spec's result: where it came from and what happened."""

    spec: RunSpec
    result: dict
    cached: bool = False

    @property
    def ok(self) -> bool:
        return bool(self.result.get("ok"))

    @property
    def error(self) -> str | None:
        return None if self.ok else str(self.result.get("error", "unknown"))


def _failure(kind: str, detail: str) -> dict:
    return {"ok": False, "error": f"{kind}: {detail}"}


def _payload(spec: RunSpec, warm_start_dir: str | None) -> dict:
    payload = spec.to_payload()
    if warm_start_dir is not None:
        payload["warm_start_dir"] = warm_start_dir
    return payload


def _run_sequential(
    specs: Sequence[RunSpec],
    progress: Callable[[str], None] | None,
    warm_start_dir: str | None = None,
) -> list[dict]:
    results = []
    for spec in specs:
        if progress is not None:
            progress(f"run  {spec.label()}")
        results.append(execute_payload(_payload(spec, warm_start_dir)))
    return results


def _run_pool(
    specs: Sequence[RunSpec],
    workers: int,
    timeout: float | None,
    progress: Callable[[str], None] | None,
    warm_start_dir: str | None = None,
) -> list[dict]:
    results: list[dict | None] = [None] * len(specs)
    try:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(execute_payload, _payload(spec, warm_start_dir))
                for spec in specs
            ]
            for index, (spec, future) in enumerate(zip(specs, futures)):
                try:
                    results[index] = future.result(timeout=timeout)
                except FutureTimeoutError:
                    future.cancel()
                    results[index] = _failure(
                        "timeout", f"{spec.label()} exceeded {timeout}s"
                    )
                except process.BrokenProcessPool:
                    raise
                except Exception as exc:  # worker died mid-task
                    results[index] = _failure(type(exc).__name__, str(exc))
                if progress is not None and results[index] is not None:
                    status = "ok" if results[index].get("ok") else "FAIL"
                    progress(f"{status:<4} {spec.label()}")
    except process.BrokenProcessPool:
        # Pool is unusable (a worker was killed, fork failed, ...): finish
        # the unresolved specs sequentially in this process.
        if progress is not None:
            progress("process pool broke; falling back to sequential execution")
        for index, spec in enumerate(specs):
            if results[index] is None:
                results[index] = execute_payload(_payload(spec, warm_start_dir))
    return [
        result if result is not None else _failure("internal", "no result")
        for result in results
    ]


def _run_batch(
    specs: Sequence[RunSpec],
    workers: int,
    timeout: float | None,
    progress: Callable[[str], None] | None,
    warm_start_dir: str | None,
) -> list[dict]:
    if workers > 1 and len(specs) > 1:
        return _run_pool(specs, workers, timeout, progress, warm_start_dir)
    return _run_sequential(specs, progress, warm_start_dir)


def _run_warm_batched(
    misses: Sequence[tuple[int, RunSpec]],
    workers: int,
    timeout: float | None,
    progress: Callable[[str], None] | None,
    warm_start_dir: str,
) -> list[dict]:
    """Run misses in two waves so warm-up prefixes are simulated once.

    The first spec of each warm-up group (the *leader*) runs in wave
    one, simulating its warm-up prefix and writing the checkpoint; the
    remaining specs (*followers*) run in wave two and fork from the
    now-populated store.  Without the barrier between waves, followers
    racing their leader would each cold-simulate the same prefix and
    the sweep would pay warm-up N times after all.
    """
    leaders: list[tuple[int, RunSpec]] = []
    followers: list[tuple[int, RunSpec]] = []
    seen_groups: set[str] = set()
    for position, (index, spec) in enumerate(misses):
        group = spec.warmup_group_key()
        if group in seen_groups:
            followers.append((position, spec))
        else:
            seen_groups.add(group)
            leaders.append((position, spec))
    if progress is not None and followers:
        progress(
            f"warm-start: {len(leaders)} warm-up prefix(es) for "
            f"{len(misses)} cells"
        )
    results: list[dict | None] = [None] * len(misses)
    for wave in (leaders, followers):
        if not wave:
            continue
        wave_results = _run_batch(
            [spec for _, spec in wave], workers, timeout, progress, warm_start_dir
        )
        for (position, _), result in zip(wave, wave_results):
            results[position] = result
    return [
        result if result is not None else _failure("internal", "no result")
        for result in results
    ]


def run_specs(
    specs: Sequence[RunSpec],
    workers: int = 1,
    timeout: float | None = None,
    cache: ResultCache | None = None,
    use_cache: bool = True,
    progress: Callable[[str], None] | None = None,
    warm_start_dir: str | None = None,
) -> list[SweepOutcome]:
    """Run every spec, reusing cached results where possible.

    Returns outcomes in spec order.  Only successful runs are cached;
    failures (including timeouts) are returned but never persisted.

    With ``warm_start_dir``, cache misses run through the checkpoint
    store in that directory: one leader per warm-up group simulates and
    snapshots its warm-up prefix, then the group's remaining cells fork
    from the snapshot (see :meth:`RunSpec.warmup_group_key`).
    """
    fingerprint = source_fingerprint()
    outcomes: dict[int, SweepOutcome] = {}
    misses: list[tuple[int, RunSpec]] = []

    for index, spec in enumerate(specs):
        cached = (
            cache.load(spec.spec_hash(), fingerprint)
            if (cache is not None and use_cache)
            else None
        )
        if cached is not None:
            if progress is not None:
                progress(f"hit  {spec.label()}")
            outcomes[index] = SweepOutcome(spec=spec, result=cached, cached=True)
        else:
            misses.append((index, spec))

    miss_specs = [spec for _, spec in misses]
    if miss_specs:
        if warm_start_dir is not None and len(miss_specs) > 1:
            results = _run_warm_batched(
                misses, workers, timeout, progress, warm_start_dir
            )
        else:
            results = _run_batch(
                miss_specs, workers, timeout, progress, warm_start_dir
            )
        for (index, spec), result in zip(misses, results):
            outcomes[index] = SweepOutcome(spec=spec, result=result, cached=False)
            if cache is not None and result.get("ok"):
                cache.store(
                    spec.spec_hash(), fingerprint, spec.canonical_json(), result
                )

    return [outcomes[index] for index in range(len(specs))]
