"""Baseline suppression for grandfathered lint findings.

A baseline entry pins one known finding — matched by ``(path, code,
message)`` so ordinary line drift does not un-pin it — together with a
mandatory ``justification`` explaining why it is tolerated rather than
fixed.  The committed ``LINT_BASELINE.json`` at the repo root is the
reviewed list; ``repro lint --update-baseline`` regenerates it,
carrying existing justifications forward by key.

Placeholder justifications (empty, or any ``TODO``-prefixed text such
as :data:`PLACEHOLDER_JUSTIFICATION`) are tracked explicitly: an entry
with a placeholder suppresses its finding without anyone having
reviewed it, so the linter warns on load when the baseline contains
any, and ``--update-baseline`` refuses to mint new ones unless
``--accept-todo`` is passed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Mapping

from repro.devtools.lint import Diagnostic

__all__ = [
    "Baseline",
    "BaselineEntry",
    "PLACEHOLDER_JUSTIFICATION",
    "is_placeholder",
]

_VERSION = 1

PLACEHOLDER_JUSTIFICATION = "TODO: justify or fix"


def is_placeholder(justification: str) -> bool:
    """True when a justification is missing or an unreviewed TODO stub."""
    text = justification.strip()
    return not text or text.upper().startswith("TODO")


@dataclass(frozen=True)
class BaselineEntry:
    path: str
    code: str
    message: str
    line: int  # informational only; matching ignores it
    justification: str

    def key(self) -> tuple[str, str, str]:
        return (_normalize(self.path), self.code, self.message)


def _normalize(path: str) -> str:
    return path.replace("\\", "/").lstrip("./")


class Baseline:
    def __init__(self, entries: list[BaselineEntry] | None = None) -> None:
        self.entries = entries or []

    @classmethod
    def load(cls, path: Path | str) -> "Baseline":
        """Load a baseline file; a missing file is an empty baseline."""
        path = Path(path)
        try:
            raw = path.read_text(encoding="utf-8")
        except OSError:
            return cls()
        data = json.loads(raw)
        entries = [
            BaselineEntry(
                path=item["path"],
                code=item["code"],
                message=item["message"],
                line=item.get("line", 0),
                justification=item.get("justification", ""),
            )
            for item in data.get("entries", [])
        ]
        return cls(entries)

    @classmethod
    def from_diagnostics(
        cls,
        diagnostics: list[Diagnostic],
        justifications: Mapping[tuple[str, str, str], str] | None = None,
    ) -> "Baseline":
        """Build a baseline for ``diagnostics``.

        ``justifications`` maps entry keys to reviewed justification
        text (typically the previous baseline's
        :meth:`justifications`); findings without one get the
        :data:`PLACEHOLDER_JUSTIFICATION` stub, which the caller is
        expected to surface via :meth:`placeholder_entries` rather than
        silently commit.
        """
        mapping = justifications or {}
        entries = []
        for diag in diagnostics:
            key = (_normalize(diag.path), diag.code, diag.message)
            entries.append(
                BaselineEntry(
                    path=_normalize(diag.path),
                    code=diag.code,
                    message=diag.message,
                    line=diag.line,
                    justification=mapping.get(key, PLACEHOLDER_JUSTIFICATION),
                )
            )
        return cls(entries)

    def placeholder_entries(self) -> list[BaselineEntry]:
        """Entries whose justification is still a placeholder stub."""
        return [
            entry
            for entry in self.entries
            if is_placeholder(entry.justification)
        ]

    def justifications(self) -> dict[tuple[str, str, str], str]:
        """Reviewed (non-placeholder) justification text by entry key."""
        return {
            entry.key(): entry.justification
            for entry in self.entries
            if not is_placeholder(entry.justification)
        }

    def save(self, path: Path | str) -> None:
        payload = {
            "version": _VERSION,
            "entries": [
                {
                    "path": entry.path,
                    "code": entry.code,
                    "line": entry.line,
                    "message": entry.message,
                    "justification": entry.justification,
                }
                for entry in sorted(
                    self.entries, key=lambda e: (e.path, e.code, e.line)
                )
            ],
        }
        Path(path).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )

    def filter(
        self, diagnostics: list[Diagnostic]
    ) -> tuple[list[Diagnostic], int]:
        """Split findings into ``(kept, suppressed_count)``."""
        keys = {entry.key() for entry in self.entries}
        kept: list[Diagnostic] = []
        suppressed = 0
        for diag in diagnostics:
            if (_normalize(diag.path), diag.code, diag.message) in keys:
                suppressed += 1
            else:
                kept.append(diag)
        return kept, suppressed
