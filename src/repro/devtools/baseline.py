"""Baseline suppression for grandfathered lint findings.

A baseline entry pins one known finding — matched by ``(path, code,
message)`` so ordinary line drift does not un-pin it — together with a
mandatory ``justification`` explaining why it is tolerated rather than
fixed.  The committed ``LINT_BASELINE.json`` at the repo root is the
reviewed list; ``repro lint --update-baseline`` regenerates it (with
placeholder justifications to be filled in by hand).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.devtools.lint import Diagnostic

__all__ = ["Baseline", "BaselineEntry"]

_VERSION = 1


@dataclass(frozen=True)
class BaselineEntry:
    path: str
    code: str
    message: str
    line: int  # informational only; matching ignores it
    justification: str

    def key(self) -> tuple[str, str, str]:
        return (_normalize(self.path), self.code, self.message)


def _normalize(path: str) -> str:
    return path.replace("\\", "/").lstrip("./")


class Baseline:
    def __init__(self, entries: list[BaselineEntry] | None = None) -> None:
        self.entries = entries or []

    @classmethod
    def load(cls, path: Path | str) -> "Baseline":
        """Load a baseline file; a missing file is an empty baseline."""
        path = Path(path)
        try:
            raw = path.read_text(encoding="utf-8")
        except OSError:
            return cls()
        data = json.loads(raw)
        entries = [
            BaselineEntry(
                path=item["path"],
                code=item["code"],
                message=item["message"],
                line=item.get("line", 0),
                justification=item.get("justification", ""),
            )
            for item in data.get("entries", [])
        ]
        return cls(entries)

    @classmethod
    def from_diagnostics(cls, diagnostics: list[Diagnostic]) -> "Baseline":
        entries = [
            BaselineEntry(
                path=_normalize(diag.path),
                code=diag.code,
                message=diag.message,
                line=diag.line,
                justification="TODO: justify or fix",
            )
            for diag in diagnostics
        ]
        return cls(entries)

    def save(self, path: Path | str) -> None:
        payload = {
            "version": _VERSION,
            "entries": [
                {
                    "path": entry.path,
                    "code": entry.code,
                    "line": entry.line,
                    "message": entry.message,
                    "justification": entry.justification,
                }
                for entry in sorted(
                    self.entries, key=lambda e: (e.path, e.code, e.line)
                )
            ],
        }
        Path(path).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )

    def filter(
        self, diagnostics: list[Diagnostic]
    ) -> tuple[list[Diagnostic], int]:
        """Split findings into ``(kept, suppressed_count)``."""
        keys = {entry.key() for entry in self.entries}
        kept: list[Diagnostic] = []
        suppressed = 0
        for diag in diagnostics:
            if (_normalize(diag.path), diag.code, diag.message) in keys:
                suppressed += 1
            else:
                kept.append(diag)
        return kept, suppressed
