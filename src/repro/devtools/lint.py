"""AST-based determinism linter for the simulator tree.

The engine's core promise is bit-deterministic replay: two runs with the
same seed must produce identical epoch bandwidth series.  Whole classes of
bugs silently break that promise — builtin ``hash()`` feeding seeds,
ambient ``random`` state, wall-clock reads inside the timed layers, float
cycle arithmetic, and iteration order leaking out of ``set``s.  This
module catches them mechanically.

Rules (each can be suppressed per line with ``# repro: noqa[CODE]`` or,
for every rule at once, ``# repro: noqa``):

========  ==============================================================
DET001    no builtin ``hash()``/``id()`` — their values vary per process
          (``PYTHONHASHSEED``, allocator layout) and must never feed
          simulation state.
DET002    no ambient randomness inside ``src/repro``: the stdlib
          ``random`` module, ``np.random.seed``, legacy
          ``np.random.RandomState``/global-state helpers, and unseeded
          ``np.random.default_rng()`` are all banned.  Randomness flows
          through ``Engine.rng(name)`` or an injected ``Generator``.
DET003    no wall-clock reads (``time.time``, ``perf_counter``,
          ``datetime.now``, ...) inside the timed layers (``sim/``,
          ``core/``, ``dram/``, ``cache/``, ``cpu/``, ``qos/``).
DET004    no true division on timestamp-like operands (``when``,
          ``now``, ``deadline``, ``*_at``, ``*_until``); cycle
          arithmetic must use ``//`` so it stays integral.
DET005    no iteration over bare ``set`` literals/comprehensions —
          element order can leak into scheduling decisions.
SIM001    ``Engine.schedule``/``schedule_at`` callsites must pass an
          int-typed delay expression (no float literals, ``float()``
          casts, or ``/`` in the delay argument).
PERF001   ``networkx`` may only be imported by ``sim/topology.py``.
          The mesh topology precomputes dense integer latency tables at
          build time precisely so the per-event hot path never touches
          graph algorithms; a new networkx import elsewhere in the
          package almost always means shortest-path work crept back
          into simulation code.
PERF002   ``heapq`` may only be imported by ``sim/engine.py``.  The
          timing-wheel scheduler keeps a heap solely for beyond-horizon
          overflow entries; a separate priority queue anywhere else in
          the package either duplicates event ordering outside the
          engine's ``(when, seq)`` guarantee or reintroduces per-event
          heap traffic the wheel exists to avoid.
PERF003   serialization modules (``pickle``, ``marshal``, ``shelve``,
          ``dill``) may only be imported by ``runner/checkpoint.py``.
          Simulator-state serialization is a versioned, validated
          checkpoint format; an ad-hoc pickle elsewhere either bypasses
          the restore validation/versioning or drags serialization
          overhead into simulation code.
========  ==============================================================

Usage::

    python -m repro.devtools.lint [--list-rules] [paths ...]
    repro lint [paths ...]

Exit status is non-zero when any diagnostic survives suppression.
"""

from __future__ import annotations

import argparse
import ast
import re
import sys
from dataclasses import dataclass
from pathlib import Path, PurePosixPath
from typing import ClassVar, Iterable, Iterator

__all__ = [
    "Diagnostic",
    "RULES",
    "lint_file",
    "lint_paths",
    "lint_source",
    "main",
]

#: Subpackages of ``repro`` whose code runs inside simulated time.
TIMED_LAYERS = ("sim", "core", "dram", "cache", "cpu", "qos")

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<codes>[A-Za-z0-9_,\s]+)\])?", re.IGNORECASE
)


@dataclass(frozen=True)
class Diagnostic:
    """One finding: a rule violated at a file/line/column."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


@dataclass(frozen=True)
class FileContext:
    """Where a source buffer sits relative to the ``repro`` package."""

    path: str
    lines: tuple[str, ...]

    @property
    def repro_parts(self) -> tuple[str, ...] | None:
        """Path components below the ``repro`` package dir, or None."""
        parts = PurePosixPath(self.path.replace("\\", "/")).parts
        for index, part in enumerate(parts[:-1]):
            if part == "repro":
                return parts[index + 1 :]
        return None

    @property
    def in_repro_package(self) -> bool:
        return self.repro_parts is not None

    @property
    def in_timed_layer(self) -> bool:
        parts = self.repro_parts
        return parts is not None and len(parts) > 1 and parts[0] in TIMED_LAYERS


class Rule(ast.NodeVisitor):
    """Base class for lint rules: an AST visitor with a code and scope.

    Subclasses set ``code``/``summary``, optionally narrow ``applies``,
    and call :meth:`report` from their ``visit_*`` methods.  Register
    with :func:`register` so the CLI and test harness discover them.
    """

    code: ClassVar[str]
    summary: ClassVar[str]

    def __init__(self, ctx: FileContext) -> None:
        self.ctx = ctx
        self.diagnostics: list[Diagnostic] = []

    @classmethod
    def applies(cls, ctx: FileContext) -> bool:
        """Whether this rule runs on the file at all (path scoping)."""
        return True

    def report(self, node: ast.AST, message: str) -> None:
        self.diagnostics.append(
            Diagnostic(
                path=self.ctx.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                code=self.code,
                message=message,
            )
        )


RULES: dict[str, type[Rule]] = {}


def register(rule_cls: type[Rule]) -> type[Rule]:
    """Add a rule class to the registry (decorator)."""
    if rule_cls.code in RULES:
        raise ValueError(f"duplicate rule code {rule_cls.code!r}")
    RULES[rule_cls.code] = rule_cls
    return rule_cls


# ----------------------------------------------------------------------
# expression helpers shared by several rules
# ----------------------------------------------------------------------
def _terminal_name(node: ast.expr) -> str | None:
    """The rightmost identifier of a Name or attribute chain."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _base_chain(node: ast.expr) -> list[str]:
    """Identifier chain of nested attributes, e.g. ``np.random.seed``."""
    chain: list[str] = []
    while isinstance(node, ast.Attribute):
        chain.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        chain.append(node.id)
    chain.reverse()
    return chain


_TIMESTAMP_EXACT = {"when", "now", "deadline", "_now"}
_TIMESTAMP_SUFFIXES = ("_at", "_deadline", "_until")


def _is_timestamp_name(name: str | None) -> bool:
    if name is None:
        return False
    if name in _TIMESTAMP_EXACT:
        return True
    return name.endswith(_TIMESTAMP_SUFFIXES)


def _definitely_float(node: ast.expr) -> bool:
    """True when the expression statically cannot be an int."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Constant) and isinstance(sub.value, float):
            return True
        if isinstance(sub, ast.BinOp) and isinstance(sub.op, ast.Div):
            return True
        if (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Name)
            and sub.func.id == "float"
        ):
            return True
    return False


# ----------------------------------------------------------------------
# rules
# ----------------------------------------------------------------------
@register
class NoBuiltinHash(Rule):
    code = "DET001"
    summary = "builtin hash()/id() values vary per process"

    def visit_Call(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Name) and node.func.id in ("hash", "id"):
            self.report(
                node,
                f"builtin {node.func.id}() is process-dependent "
                "(PYTHONHASHSEED / allocator layout); derive stable values "
                "from a digest such as hashlib.sha256 instead",
            )
        self.generic_visit(node)


@register
class NoAmbientRandomness(Rule):
    code = "DET002"
    summary = "randomness must flow through Engine.rng or an injected Generator"

    @classmethod
    def applies(cls, ctx: FileContext) -> bool:
        return ctx.in_repro_package

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "random" or alias.name.startswith("random."):
                self.report(
                    node,
                    "stdlib random module carries ambient global state; "
                    "use Engine.rng(name) or an injected np.random.Generator",
                )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random":
            self.report(
                node,
                "stdlib random module carries ambient global state; "
                "use Engine.rng(name) or an injected np.random.Generator",
            )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        chain = _base_chain(node.func)
        if len(chain) >= 3 and chain[0] in ("np", "numpy") and chain[1] == "random":
            fn = chain[2]
            if fn == "seed":
                self.report(node, "np.random.seed mutates hidden global state")
            elif fn == "RandomState":
                self.report(
                    node, "legacy np.random.RandomState; use Engine.rng(name)"
                )
            elif fn == "default_rng" and not node.args and not node.keywords:
                self.report(
                    node,
                    "unseeded np.random.default_rng() draws OS entropy; "
                    "seed it explicitly or use Engine.rng(name)",
                )
            elif fn[:1].islower() and fn not in ("default_rng",):
                self.report(
                    node,
                    f"np.random.{fn} uses the hidden global generator; "
                    "use Engine.rng(name) or an injected Generator",
                )
        self.generic_visit(node)


_WALLCLOCK_TIME_FUNCS = {
    "time",
    "time_ns",
    "perf_counter",
    "perf_counter_ns",
    "monotonic",
    "monotonic_ns",
    "process_time",
    "process_time_ns",
    "clock_gettime",
}
_WALLCLOCK_DATETIME_FUNCS = {"now", "utcnow", "today"}


@register
class NoWallClock(Rule):
    code = "DET003"
    summary = "no wall-clock reads inside the timed layers"

    @classmethod
    def applies(cls, ctx: FileContext) -> bool:
        return ctx.in_timed_layer

    def _flag(self, node: ast.AST, what: str) -> None:
        self.report(
            node,
            f"{what} reads the wall clock inside a timed layer; simulated "
            "components must only observe engine.now",
        )

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "time":
            for alias in node.names:
                if alias.name in _WALLCLOCK_TIME_FUNCS:
                    self._flag(node, f"time.{alias.name}")
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        chain = _base_chain(node.func)
        if len(chain) >= 2:
            base, fn = chain[-2], chain[-1]
            if base == "time" and fn in _WALLCLOCK_TIME_FUNCS:
                self._flag(node, f"time.{fn}")
            elif base in ("datetime", "date") and fn in _WALLCLOCK_DATETIME_FUNCS:
                self._flag(node, f"{base}.{fn}")
        self.generic_visit(node)


@register
class NoFloatCycleArithmetic(Rule):
    code = "DET004"
    summary = "cycle/timestamp arithmetic must stay integral (use //)"

    @classmethod
    def _timestamp_in(cls, expr: ast.AST) -> str | None:
        """Timestamp-named value inside ``expr``, skipping call results.

        A function *of* a timestamp (``stats.ipc(0, engine.now)``) returns
        some other quantity, so calls are not descended into.
        """
        if isinstance(expr, ast.Call):
            return None
        name = _terminal_name(expr)  # type: ignore[arg-type]
        if _is_timestamp_name(name):
            return name
        for child in ast.iter_child_nodes(expr):
            found = cls._timestamp_in(child)
            if found is not None:
                return found
        return None

    def visit_BinOp(self, node: ast.BinOp) -> None:
        # Only the numerator matters: dividing a timestamp produces float
        # cycles, while dividing *by* one (``bytes / engine.now``) produces
        # a rate, which is legitimately float.
        if isinstance(node.op, ast.Div):
            name = self._timestamp_in(node.left)
            if name is not None:
                self.report(
                    node,
                    f"true division of timestamp operand {name!r} "
                    "produces float cycles; use floor division (//)",
                )
        self.generic_visit(node)


@register
class NoBareSetIteration(Rule):
    code = "DET005"
    summary = "iteration order of a bare set can leak into scheduling"

    def _check_iter(self, iterable: ast.expr) -> None:
        if isinstance(iterable, (ast.Set, ast.SetComp)):
            kind = "set literal" if isinstance(iterable, ast.Set) else "set comprehension"
            self.report(
                iterable,
                f"iterating a bare {kind}; wrap it in sorted(...) or use a "
                "tuple/list so the order is deterministic",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def _check_comprehensions(self, node: ast.AST) -> None:
        for gen in getattr(node, "generators", ()):
            self._check_iter(gen.iter)
        self.generic_visit(node)

    visit_ListComp = _check_comprehensions
    visit_SetComp = _check_comprehensions
    visit_DictComp = _check_comprehensions
    visit_GeneratorExp = _check_comprehensions


@register
class IntegerScheduleDelay(Rule):
    code = "SIM001"
    summary = "Engine.schedule/schedule_at need int-typed delay expressions"

    def visit_Call(self, node: ast.Call) -> None:
        attr = node.func.attr if isinstance(node.func, ast.Attribute) else None
        if attr in ("schedule", "schedule_at"):
            delay: ast.expr | None = node.args[0] if node.args else None
            if delay is None:
                for kw in node.keywords:
                    if kw.arg in ("delay", "when"):
                        delay = kw.value
                        break
            if delay is not None and _definitely_float(delay):
                self.report(
                    delay,
                    f"{attr}() delay expression is float-typed (float "
                    "literal, float() cast, or true division); cycle "
                    "delays must be ints",
                )
        self.generic_visit(node)


@register
class NetworkxOnlyInTopology(Rule):
    code = "PERF001"
    summary = "networkx imports are confined to sim/topology.py"

    #: The one module allowed to import networkx: it runs graph
    #: algorithms once at build time to fill the dense latency tables.
    _ALLOWED = ("sim", "topology.py")

    @classmethod
    def applies(cls, ctx: FileContext) -> bool:
        parts = ctx.repro_parts
        return parts is not None and parts != cls._ALLOWED

    def _flag(self, node: ast.AST) -> None:
        self.report(
            node,
            "networkx import outside sim/topology.py; graph algorithms "
            "belong in the build-time latency-table precompute, not in "
            "per-event simulation code (consume the dense tables on "
            "MeshTopology instead)",
        )

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "networkx" or alias.name.startswith("networkx."):
                self._flag(node)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        if module == "networkx" or module.startswith("networkx."):
            self._flag(node)
        self.generic_visit(node)


@register
class HeapqOnlyInEngine(Rule):
    code = "PERF002"
    summary = "heapq imports are confined to sim/engine.py"

    #: The one module allowed to import heapq: the engine keeps a heap
    #: only for timing-wheel overflow entries beyond the horizon.
    _ALLOWED = ("sim", "engine.py")

    @classmethod
    def applies(cls, ctx: FileContext) -> bool:
        parts = ctx.repro_parts
        return parts is not None and parts != cls._ALLOWED

    def _flag(self, node: ast.AST) -> None:
        self.report(
            node,
            "heapq import outside sim/engine.py; event ordering belongs "
            "to the engine's timing wheel (schedule/post/post_chain_at), "
            "and a separate priority queue in simulation code sidesteps "
            "the (when, seq) dispatch-order guarantee or reintroduces "
            "the per-event heap traffic the wheel removes",
        )

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "heapq" or alias.name.startswith("heapq."):
                self._flag(node)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        if module == "heapq" or module.startswith("heapq."):
            self._flag(node)
        self.generic_visit(node)


@register
class SerializationOnlyInCheckpoint(Rule):
    code = "PERF003"
    summary = "serialization imports are confined to runner/checkpoint.py"

    #: The one module allowed to serialize simulator state: checkpoints
    #: carry a version field and pass restore validation there.
    _ALLOWED = ("runner", "checkpoint.py")

    #: Serialization modules covered by the rule.  json is exempt — it
    #: cannot encode object graphs, so it poses no checkpoint hazard.
    _BANNED = ("pickle", "cPickle", "marshal", "shelve", "dill")

    @classmethod
    def applies(cls, ctx: FileContext) -> bool:
        parts = ctx.repro_parts
        return parts is not None and parts != cls._ALLOWED

    def _flag(self, node: ast.AST, module: str) -> None:
        self.report(
            node,
            f"{module} import outside runner/checkpoint.py; simulator "
            "state serialization is a versioned checkpoint format with "
            "restore validation — route snapshots through "
            "repro.runner.checkpoint instead of ad-hoc pickling",
        )

    def _match(self, name: str) -> str | None:
        for banned in self._BANNED:
            if name == banned or name.startswith(banned + "."):
                return banned
        return None

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            banned = self._match(alias.name)
            if banned is not None:
                self._flag(node, banned)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        banned = self._match(node.module or "")
        if banned is not None:
            self._flag(node, banned)
        self.generic_visit(node)


# ----------------------------------------------------------------------
# driver
# ----------------------------------------------------------------------
def _suppressed_codes(line: str) -> set[str] | None:
    """Codes silenced on this line; empty set means 'all'; None means none."""
    match = _NOQA_RE.search(line)
    if match is None:
        return None
    codes = match.group("codes")
    if codes is None:
        return set()
    return {code.strip().upper() for code in codes.split(",") if code.strip()}


def _apply_noqa(
    diagnostics: Iterable[Diagnostic], lines: tuple[str, ...]
) -> list[Diagnostic]:
    kept: list[Diagnostic] = []
    for diag in diagnostics:
        line = lines[diag.line - 1] if 0 < diag.line <= len(lines) else ""
        codes = _suppressed_codes(line)
        if codes is not None and (not codes or diag.code in codes):
            continue
        kept.append(diag)
    return kept


def lint_source(source: str, path: str = "<string>") -> list[Diagnostic]:
    """Lint one source buffer; ``path`` drives the path-scoped rules."""
    ctx = FileContext(path=path, lines=tuple(source.splitlines()))
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Diagnostic(
                path=path,
                line=exc.lineno or 1,
                col=exc.offset or 0,
                code="E999",
                message=f"syntax error: {exc.msg}",
            )
        ]
    diagnostics: list[Diagnostic] = []
    for rule_cls in RULES.values():
        if not rule_cls.applies(ctx):
            continue
        rule = rule_cls(ctx)
        rule.visit(tree)
        diagnostics.extend(rule.diagnostics)
    diagnostics.sort(key=lambda d: (d.line, d.col, d.code))
    return _apply_noqa(diagnostics, ctx.lines)


def lint_file(path: Path | str) -> list[Diagnostic]:
    path = Path(path)
    return lint_source(path.read_text(encoding="utf-8"), str(path))


def _iter_python_files(paths: Iterable[Path | str]) -> Iterator[Path]:
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        else:
            yield path


def lint_paths(paths: Iterable[Path | str]) -> list[Diagnostic]:
    """Lint every ``*.py`` file under the given files/directories."""
    diagnostics: list[Diagnostic] = []
    for path in _iter_python_files(paths):
        diagnostics.extend(lint_file(path))
    return diagnostics


def _list_rules() -> str:
    lines = []
    for code in sorted(RULES):
        lines.append(f"{code}  {RULES[code].summary}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.devtools.lint",
        description="Determinism linter for the PABST simulator tree.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests"],
        help="files or directories to lint (default: src tests)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print rule codes and exit"
    )
    args = parser.parse_args(argv)
    if args.list_rules:
        print(_list_rules())
        return 0
    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        for p in missing:
            print(f"error: no such file or directory: {p}", file=sys.stderr)
        return 2
    diagnostics = lint_paths(args.paths)
    for diag in diagnostics:
        print(diag.format())
    if diagnostics:
        print(f"{len(diagnostics)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
