"""AST-based determinism linter for the simulator tree.

The engine's core promise is bit-deterministic replay: two runs with the
same seed must produce identical epoch bandwidth series.  Whole classes of
bugs silently break that promise — builtin ``hash()`` feeding seeds,
ambient ``random`` state, wall-clock reads inside the timed layers, float
cycle arithmetic, and iteration order leaking out of ``set``s.  This
module catches them mechanically.

Rules (each can be suppressed per line with ``# repro: noqa[CODE]`` or,
for every rule at once, ``# repro: noqa``):

========  ==============================================================
DET001    no builtin ``hash()``/``id()`` — their values vary per process
          (``PYTHONHASHSEED``, allocator layout) and must never feed
          simulation state.
DET002    no ambient randomness inside ``src/repro``: the stdlib
          ``random`` module, ``np.random.seed``, legacy
          ``np.random.RandomState``/global-state helpers, and unseeded
          ``np.random.default_rng()`` are all banned.  Randomness flows
          through ``Engine.rng(name)`` or an injected ``Generator``.
DET003    no wall-clock reads (``time.time``, ``perf_counter``,
          ``datetime.now``, ...) inside the timed layers (``sim/``,
          ``core/``, ``dram/``, ``cache/``, ``cpu/``, ``qos/``).
DET004    no true division on timestamp-like operands (``when``,
          ``now``, ``deadline``, ``*_at``, ``*_until``); cycle
          arithmetic must use ``//`` so it stays integral.
DET005    no iteration over bare ``set`` literals/comprehensions —
          element order can leak into scheduling decisions.
SIM001    ``Engine.schedule``/``schedule_at`` callsites must pass an
          int-typed delay expression (no float literals, ``float()``
          casts, or ``/`` in the delay argument).
PERF001   ``networkx`` may only be imported by ``sim/topology.py``.
          The mesh topology precomputes dense integer latency tables at
          build time precisely so the per-event hot path never touches
          graph algorithms; a new networkx import elsewhere in the
          package almost always means shortest-path work crept back
          into simulation code.
PERF002   ``heapq`` may only be imported by ``sim/engine.py``.  The
          timing-wheel scheduler keeps a heap solely for beyond-horizon
          overflow entries; a separate priority queue anywhere else in
          the package either duplicates event ordering outside the
          engine's ``(when, seq)`` guarantee or reintroduces per-event
          heap traffic the wheel exists to avoid.
PERF003   serialization modules (``pickle``, ``marshal``, ``shelve``,
          ``dill``) may only be imported by ``runner/checkpoint.py``.
          Simulator-state serialization is a versioned, validated
          checkpoint format; an ad-hoc pickle elsewhere either bypasses
          the restore validation/versioning or drags serialization
          overhead into simulation code.
PERF004   process-parallelism modules (``multiprocessing``,
          ``concurrent.futures``) may only be imported under
          ``runner/`` (the sweep pool and the shard backends) or by
          ``sim/shard.py`` (which stays transport-agnostic but is the
          sharding subsystem's home).  Worker processes are an
          orchestration concern; a pool inside simulation code would
          put nondeterministic scheduling next to the event loop the
          whole design keeps bit-deterministic.
PERF005   native-code loading modules (``ctypes``, ``cffi``,
          ``importlib.machinery``) may only be imported under
          ``accel/``.  The compiled backend owns the extension build,
          the ABI handshake, and the pure-Python fallback; a stray
          ``.so`` load elsewhere bypasses backend selection and the
          byte-identity contract the accel package enforces.
========  ==============================================================

Beyond the per-file rules above, ``main`` also runs the whole-program
pass (:mod:`repro.devtools.analysis`) whenever a lint path contains the
``repro`` package: determinism taint (DET1xx), hot-kernel discipline
(HOT), checkpoint pickle-safety (CKPT), and observability providers
(OBS).  ``--list-rules`` shows both registries.

Usage::

    python -m repro.devtools.lint [--list-rules] [--format=text|json|sarif]
                                  [--fix] [--jobs N] [paths ...]
    repro lint [paths ...]

Exit status is non-zero when any diagnostic survives suppression and
the baseline; 2 on usage errors (nonexistent or non-Python paths).
"""

from __future__ import annotations

import argparse
import ast
import re
import sys
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath
from typing import ClassVar, Iterable, Iterator

__all__ = [
    "Diagnostic",
    "LintUsageError",
    "RULES",
    "lint_file",
    "lint_paths",
    "lint_source",
    "main",
]

#: Subpackages of ``repro`` whose code runs inside simulated time.
TIMED_LAYERS = ("sim", "core", "dram", "cache", "cpu", "qos")

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<codes>[A-Za-z0-9_,\s]+)\])?", re.IGNORECASE
)


class LintUsageError(Exception):
    """A path argument the linter cannot act on (exit status 2)."""


@dataclass(frozen=True)
class Diagnostic:
    """One finding: a rule violated at a file/line/column.

    ``end_line`` is the last line of the offending construct (0 when
    unknown); suppression honours a ``# repro: noqa`` on any line of a
    multi-line statement's span, not just the first.
    """

    path: str
    line: int
    col: int
    code: str
    message: str
    end_line: int = field(default=0, compare=False)

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


@dataclass(frozen=True)
class FileContext:
    """Where a source buffer sits relative to the ``repro`` package."""

    path: str
    lines: tuple[str, ...]

    @property
    def repro_parts(self) -> tuple[str, ...] | None:
        """Path components below the ``repro`` package dir, or None."""
        parts = PurePosixPath(self.path.replace("\\", "/")).parts
        for index, part in enumerate(parts[:-1]):
            if part == "repro":
                return parts[index + 1 :]
        return None

    @property
    def in_repro_package(self) -> bool:
        return self.repro_parts is not None

    @property
    def in_timed_layer(self) -> bool:
        parts = self.repro_parts
        return parts is not None and len(parts) > 1 and parts[0] in TIMED_LAYERS


class Rule(ast.NodeVisitor):
    """Base class for lint rules: an AST visitor with a code and scope.

    Subclasses set ``code``/``summary``, optionally narrow ``applies``,
    and call :meth:`report` from their ``visit_*`` methods.  Register
    with :func:`register` so the CLI and test harness discover them.
    """

    code: ClassVar[str]
    summary: ClassVar[str]

    def __init__(self, ctx: FileContext) -> None:
        self.ctx = ctx
        self.diagnostics: list[Diagnostic] = []

    @classmethod
    def applies(cls, ctx: FileContext) -> bool:
        """Whether this rule runs on the file at all (path scoping)."""
        return True

    def report(self, node: ast.AST, message: str) -> None:
        self.diagnostics.append(
            Diagnostic(
                path=self.ctx.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                code=self.code,
                message=message,
                end_line=getattr(node, "end_lineno", 0) or 0,
            )
        )


RULES: dict[str, type[Rule]] = {}


def register(rule_cls: type[Rule]) -> type[Rule]:
    """Add a rule class to the registry (decorator)."""
    if rule_cls.code in RULES:
        raise ValueError(f"duplicate rule code {rule_cls.code!r}")
    RULES[rule_cls.code] = rule_cls
    return rule_cls


# ----------------------------------------------------------------------
# expression helpers shared by several rules
# ----------------------------------------------------------------------
def _terminal_name(node: ast.expr) -> str | None:
    """The rightmost identifier of a Name or attribute chain."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _base_chain(node: ast.expr) -> list[str]:
    """Identifier chain of nested attributes, e.g. ``np.random.seed``."""
    chain: list[str] = []
    while isinstance(node, ast.Attribute):
        chain.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        chain.append(node.id)
    chain.reverse()
    return chain


_TIMESTAMP_EXACT = {"when", "now", "deadline", "_now"}
_TIMESTAMP_SUFFIXES = ("_at", "_deadline", "_until")


def _is_timestamp_name(name: str | None) -> bool:
    if name is None:
        return False
    if name in _TIMESTAMP_EXACT:
        return True
    return name.endswith(_TIMESTAMP_SUFFIXES)


def _definitely_float(node: ast.expr) -> bool:
    """True when the expression statically cannot be an int."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Constant) and isinstance(sub.value, float):
            return True
        if isinstance(sub, ast.BinOp) and isinstance(sub.op, ast.Div):
            return True
        if (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Name)
            and sub.func.id == "float"
        ):
            return True
    return False


# ----------------------------------------------------------------------
# rules
# ----------------------------------------------------------------------
@register
class NoBuiltinHash(Rule):
    code = "DET001"
    summary = "builtin hash()/id() values vary per process"

    def visit_Call(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Name) and node.func.id in ("hash", "id"):
            self.report(
                node,
                f"builtin {node.func.id}() is process-dependent "
                "(PYTHONHASHSEED / allocator layout); derive stable values "
                "from a digest such as hashlib.sha256 instead",
            )
        self.generic_visit(node)


@register
class NoAmbientRandomness(Rule):
    code = "DET002"
    summary = "randomness must flow through Engine.rng or an injected Generator"

    @classmethod
    def applies(cls, ctx: FileContext) -> bool:
        return ctx.in_repro_package

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "random" or alias.name.startswith("random."):
                self.report(
                    node,
                    "stdlib random module carries ambient global state; "
                    "use Engine.rng(name) or an injected np.random.Generator",
                )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random":
            self.report(
                node,
                "stdlib random module carries ambient global state; "
                "use Engine.rng(name) or an injected np.random.Generator",
            )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        chain = _base_chain(node.func)
        if len(chain) >= 3 and chain[0] in ("np", "numpy") and chain[1] == "random":
            fn = chain[2]
            if fn == "seed":
                self.report(node, "np.random.seed mutates hidden global state")
            elif fn == "RandomState":
                self.report(
                    node, "legacy np.random.RandomState; use Engine.rng(name)"
                )
            elif fn == "default_rng" and not node.args and not node.keywords:
                self.report(
                    node,
                    "unseeded np.random.default_rng() draws OS entropy; "
                    "seed it explicitly or use Engine.rng(name)",
                )
            elif fn[:1].islower() and fn not in ("default_rng",):
                self.report(
                    node,
                    f"np.random.{fn} uses the hidden global generator; "
                    "use Engine.rng(name) or an injected Generator",
                )
        self.generic_visit(node)


_WALLCLOCK_TIME_FUNCS = {
    "time",
    "time_ns",
    "perf_counter",
    "perf_counter_ns",
    "monotonic",
    "monotonic_ns",
    "process_time",
    "process_time_ns",
    "clock_gettime",
}
_WALLCLOCK_DATETIME_FUNCS = {"now", "utcnow", "today"}


@register
class NoWallClock(Rule):
    code = "DET003"
    summary = "no wall-clock reads inside the timed layers"

    @classmethod
    def applies(cls, ctx: FileContext) -> bool:
        return ctx.in_timed_layer

    def _flag(self, node: ast.AST, what: str) -> None:
        self.report(
            node,
            f"{what} reads the wall clock inside a timed layer; simulated "
            "components must only observe engine.now",
        )

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "time":
            for alias in node.names:
                if alias.name in _WALLCLOCK_TIME_FUNCS:
                    self._flag(node, f"time.{alias.name}")
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        chain = _base_chain(node.func)
        if len(chain) >= 2:
            base, fn = chain[-2], chain[-1]
            if base == "time" and fn in _WALLCLOCK_TIME_FUNCS:
                self._flag(node, f"time.{fn}")
            elif base in ("datetime", "date") and fn in _WALLCLOCK_DATETIME_FUNCS:
                self._flag(node, f"{base}.{fn}")
        self.generic_visit(node)


@register
class NoFloatCycleArithmetic(Rule):
    code = "DET004"
    summary = "cycle/timestamp arithmetic must stay integral (use //)"

    @classmethod
    def _timestamp_in(cls, expr: ast.AST) -> str | None:
        """Timestamp-named value inside ``expr``, skipping call results.

        A function *of* a timestamp (``stats.ipc(0, engine.now)``) returns
        some other quantity, so calls are not descended into.
        """
        if isinstance(expr, ast.Call):
            return None
        name = _terminal_name(expr)  # type: ignore[arg-type]
        if _is_timestamp_name(name):
            return name
        for child in ast.iter_child_nodes(expr):
            found = cls._timestamp_in(child)
            if found is not None:
                return found
        return None

    def visit_BinOp(self, node: ast.BinOp) -> None:
        # Only the numerator matters: dividing a timestamp produces float
        # cycles, while dividing *by* one (``bytes / engine.now``) produces
        # a rate, which is legitimately float.
        if isinstance(node.op, ast.Div):
            name = self._timestamp_in(node.left)
            if name is not None:
                self.report(
                    node,
                    f"true division of timestamp operand {name!r} "
                    "produces float cycles; use floor division (//)",
                )
        self.generic_visit(node)


@register
class NoBareSetIteration(Rule):
    code = "DET005"
    summary = "iteration order of a bare set can leak into scheduling"

    def _check_iter(self, iterable: ast.expr) -> None:
        if isinstance(iterable, (ast.Set, ast.SetComp)):
            kind = "set literal" if isinstance(iterable, ast.Set) else "set comprehension"
            self.report(
                iterable,
                f"iterating a bare {kind}; wrap it in sorted(...) or use a "
                "tuple/list so the order is deterministic",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def _check_comprehensions(self, node: ast.AST) -> None:
        for gen in getattr(node, "generators", ()):
            self._check_iter(gen.iter)
        self.generic_visit(node)

    visit_ListComp = _check_comprehensions
    visit_SetComp = _check_comprehensions
    visit_DictComp = _check_comprehensions
    visit_GeneratorExp = _check_comprehensions


@register
class IntegerScheduleDelay(Rule):
    code = "SIM001"
    summary = "Engine.schedule/schedule_at need int-typed delay expressions"

    def visit_Call(self, node: ast.Call) -> None:
        attr = node.func.attr if isinstance(node.func, ast.Attribute) else None
        if attr in ("schedule", "schedule_at"):
            delay: ast.expr | None = node.args[0] if node.args else None
            if delay is None:
                for kw in node.keywords:
                    if kw.arg in ("delay", "when"):
                        delay = kw.value
                        break
            if delay is not None and _definitely_float(delay):
                self.report(
                    delay,
                    f"{attr}() delay expression is float-typed (float "
                    "literal, float() cast, or true division); cycle "
                    "delays must be ints",
                )
        self.generic_visit(node)


@register
class NetworkxOnlyInTopology(Rule):
    code = "PERF001"
    summary = "networkx imports are confined to sim/topology.py"

    #: The one module allowed to import networkx: it runs graph
    #: algorithms once at build time to fill the dense latency tables.
    _ALLOWED = ("sim", "topology.py")

    @classmethod
    def applies(cls, ctx: FileContext) -> bool:
        parts = ctx.repro_parts
        return parts is not None and parts != cls._ALLOWED

    def _flag(self, node: ast.AST) -> None:
        self.report(
            node,
            "networkx import outside sim/topology.py; graph algorithms "
            "belong in the build-time latency-table precompute, not in "
            "per-event simulation code (consume the dense tables on "
            "MeshTopology instead)",
        )

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "networkx" or alias.name.startswith("networkx."):
                self._flag(node)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        if module == "networkx" or module.startswith("networkx."):
            self._flag(node)
        self.generic_visit(node)


@register
class HeapqOnlyInEngine(Rule):
    code = "PERF002"
    summary = "heapq imports are confined to sim/engine.py"

    #: The one module allowed to import heapq: the engine keeps a heap
    #: only for timing-wheel overflow entries beyond the horizon.
    _ALLOWED = ("sim", "engine.py")

    @classmethod
    def applies(cls, ctx: FileContext) -> bool:
        parts = ctx.repro_parts
        return parts is not None and parts != cls._ALLOWED

    def _flag(self, node: ast.AST) -> None:
        self.report(
            node,
            "heapq import outside sim/engine.py; event ordering belongs "
            "to the engine's timing wheel (schedule/post/post_chain_at), "
            "and a separate priority queue in simulation code sidesteps "
            "the (when, seq) dispatch-order guarantee or reintroduces "
            "the per-event heap traffic the wheel removes",
        )

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "heapq" or alias.name.startswith("heapq."):
                self._flag(node)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        if module == "heapq" or module.startswith("heapq."):
            self._flag(node)
        self.generic_visit(node)


@register
class SerializationOnlyInCheckpoint(Rule):
    code = "PERF003"
    summary = "serialization imports are confined to runner/checkpoint.py"

    #: The one module allowed to serialize simulator state: checkpoints
    #: carry a version field and pass restore validation there.
    _ALLOWED = ("runner", "checkpoint.py")

    #: Serialization modules covered by the rule.  json is exempt — it
    #: cannot encode object graphs, so it poses no checkpoint hazard.
    _BANNED = ("pickle", "cPickle", "marshal", "shelve", "dill")

    @classmethod
    def applies(cls, ctx: FileContext) -> bool:
        parts = ctx.repro_parts
        return parts is not None and parts != cls._ALLOWED

    def _flag(self, node: ast.AST, module: str) -> None:
        self.report(
            node,
            f"{module} import outside runner/checkpoint.py; simulator "
            "state serialization is a versioned checkpoint format with "
            "restore validation — route snapshots through "
            "repro.runner.checkpoint instead of ad-hoc pickling",
        )

    def _match(self, name: str) -> str | None:
        for banned in self._BANNED:
            if name == banned or name.startswith(banned + "."):
                return banned
        return None

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            banned = self._match(alias.name)
            if banned is not None:
                self._flag(node, banned)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        banned = self._match(node.module or "")
        if banned is not None:
            self._flag(node, banned)
        self.generic_visit(node)


@register
class ProcessParallelismOnlyInRunner(Rule):
    code = "PERF004"
    summary = (
        "multiprocessing/concurrent.futures imports are confined to "
        "runner/ and sim/shard.py"
    )

    #: Directory whose modules may spawn worker processes: the sweep
    #: pool and the shard execution backends live here.
    _ALLOWED_DIR = "runner"

    #: The sharding subsystem's home module.  It deliberately imports
    #: neither banned module today (it is transport-agnostic; the
    #: backends in runner/shardpool.py own the pipes), but it is the
    #: one sim/ module where boundary-transport code belongs.
    _ALLOWED_FILE = ("sim", "shard.py")

    _BANNED = ("multiprocessing", "concurrent.futures")

    @classmethod
    def applies(cls, ctx: FileContext) -> bool:
        parts = ctx.repro_parts
        if parts is None:
            return False
        if len(parts) > 1 and parts[0] == cls._ALLOWED_DIR:
            return False
        return parts != cls._ALLOWED_FILE

    def _flag(self, node: ast.AST, module: str) -> None:
        self.report(
            node,
            f"{module} import outside runner/ and sim/shard.py; worker "
            "processes are an orchestration concern — route parallelism "
            "through repro.runner (the sweep pool or the shard backends) "
            "so nondeterministic OS scheduling never sits next to the "
            "bit-deterministic event loop",
        )

    def _match(self, name: str) -> str | None:
        for banned in self._BANNED:
            if name == banned or name.startswith(banned + "."):
                return banned
        return None

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            banned = self._match(alias.name)
            if banned is not None:
                self._flag(node, banned)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        banned = self._match(module)
        if banned is None and module == "concurrent":
            # `from concurrent import futures` reaches the same pool API
            if any(alias.name == "futures" for alias in node.names):
                banned = "concurrent.futures"
        if banned is not None:
            self._flag(node, banned)
        self.generic_visit(node)


@register
class NativeCodeOnlyInAccel(Rule):
    code = "PERF005"
    summary = (
        "native-code loading (ctypes/cffi/importlib.machinery) is "
        "confined to accel/"
    )

    #: The compiled-backend package: the one place that may compile,
    #: load, or talk to a native extension.
    _ALLOWED_DIR = "accel"

    _BANNED = ("ctypes", "cffi", "importlib.machinery")

    @classmethod
    def applies(cls, ctx: FileContext) -> bool:
        parts = ctx.repro_parts
        if parts is None:
            return False
        return not (len(parts) > 1 and parts[0] == cls._ALLOWED_DIR)

    def _flag(self, node: ast.AST, module: str) -> None:
        self.report(
            node,
            f"{module} import outside accel/; native-code loading is the "
            "compiled backend's concern — repro.accel owns the build, "
            "the ABI handshake, and the pure-Python fallback, so a "
            "stray .so load elsewhere bypasses backend selection and "
            "the byte-identity contract",
        )

    def _match(self, name: str) -> str | None:
        for banned in self._BANNED:
            if name == banned or name.startswith(banned + "."):
                return banned
        return None

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            banned = self._match(alias.name)
            if banned is not None:
                self._flag(node, banned)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        banned = self._match(module)
        if banned is None and module == "importlib":
            # `from importlib import machinery` reaches the same loaders
            if any(alias.name == "machinery" for alias in node.names):
                banned = "importlib.machinery"
        if banned is not None:
            self._flag(node, banned)
        self.generic_visit(node)


# ----------------------------------------------------------------------
# driver
# ----------------------------------------------------------------------
def _suppressed_codes(line: str) -> set[str] | None:
    """Codes silenced on this line; empty set means 'all'; None means none."""
    match = _NOQA_RE.search(line)
    if match is None:
        return None
    codes = match.group("codes")
    if codes is None:
        return set()
    return {code.strip().upper() for code in codes.split(",") if code.strip()}


#: Statements with no nested statement list: a noqa anywhere in their
#: multi-line span suppresses findings anywhere in the same span.
_SIMPLE_STMTS = (
    ast.Assign, ast.AnnAssign, ast.AugAssign, ast.Return, ast.Expr,
    ast.Raise, ast.Assert, ast.Delete, ast.Import, ast.ImportFrom,
)


def _noqa_scopes(
    tree: ast.Module,
) -> tuple[tuple[tuple[int, int, int], ...], tuple[tuple[int, int], ...]]:
    """Suppression scopes: function bodies and simple-statement spans.

    A ``# repro: noqa`` on a ``def`` line suppresses findings anywhere in
    that function's body — decorated defs included (the decorator lines
    are outside the span, the ``def`` line anchors it).  A noqa on any
    line of a multi-line *simple* statement covers the whole statement,
    so the comment can trail the closing parenthesis.
    """
    scopes: list[tuple[int, int, int]] = []
    spans: list[tuple[int, int]] = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            scopes.append((node.lineno, node.end_lineno or node.lineno, node.lineno))
        elif isinstance(node, _SIMPLE_STMTS):
            end = node.end_lineno or node.lineno
            if end > node.lineno:
                spans.append((node.lineno, end))
    return tuple(scopes), tuple(spans)


def _apply_noqa(
    diagnostics: Iterable[Diagnostic],
    lines: tuple[str, ...],
    scopes: tuple[tuple[int, int, int], ...] = (),
    spans: tuple[tuple[int, int], ...] = (),
) -> list[Diagnostic]:
    def suppressed_at(lineno: int, code: str) -> bool:
        line = lines[lineno - 1] if 0 < lineno <= len(lines) else ""
        codes = _suppressed_codes(line)
        return codes is not None and (not codes or code in codes)

    kept: list[Diagnostic] = []
    for diag in diagnostics:
        span_end = max(diag.line, diag.end_line)
        candidates = list(range(diag.line, span_end + 1))
        for start, end in spans:
            if start <= diag.line <= end:
                candidates.extend(range(start, end + 1))
        for start, end, def_line in scopes:
            if start <= diag.line <= end:
                candidates.append(def_line)
        if any(suppressed_at(lineno, diag.code) for lineno in candidates):
            continue
        kept.append(diag)
    return kept


def lint_source(source: str, path: str = "<string>") -> list[Diagnostic]:
    """Lint one source buffer; ``path`` drives the path-scoped rules."""
    ctx = FileContext(path=path, lines=tuple(source.splitlines()))
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Diagnostic(
                path=path,
                line=exc.lineno or 1,
                col=exc.offset or 0,
                code="E999",
                message=f"syntax error: {exc.msg}",
            )
        ]
    diagnostics: list[Diagnostic] = []
    for rule_cls in RULES.values():
        if not rule_cls.applies(ctx):
            continue
        rule = rule_cls(ctx)
        rule.visit(tree)
        diagnostics.extend(rule.diagnostics)
    diagnostics.sort(key=lambda d: (d.line, d.col, d.code))
    scopes, spans = _noqa_scopes(tree)
    return _apply_noqa(diagnostics, ctx.lines, scopes, spans)


def apply_noqa_to_source(
    diagnostics: Iterable[Diagnostic], source: str
) -> list[Diagnostic]:
    """Noqa-filter externally produced diagnostics against one buffer.

    Used by the whole-program pass, whose diagnostics are created outside
    :func:`lint_source` but must honour the same suppression comments.
    """
    lines = tuple(source.splitlines())
    try:
        scopes, spans = _noqa_scopes(ast.parse(source))
    except SyntaxError:
        scopes, spans = (), ()
    return _apply_noqa(diagnostics, lines, scopes, spans)


def lint_file(path: Path | str) -> list[Diagnostic]:
    path = Path(path)
    return lint_source(path.read_text(encoding="utf-8"), str(path))


def _iter_python_files(paths: Iterable[Path | str]) -> Iterator[Path]:
    """Expand path arguments to ``*.py`` files, validating as we go.

    Raises :class:`LintUsageError` for nonexistent paths and for
    explicit file arguments that are not Python source.  The same file
    reached twice via overlapping arguments (``src src/repro``) is
    yielded once.
    """
    seen: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise LintUsageError(f"no such file or directory: {path}")
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        elif path.suffix != ".py":
            raise LintUsageError(
                f"not a Python file: {path} (only *.py files can be linted)"
            )
        else:
            candidates = [path]
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            yield candidate


def lint_paths(
    paths: Iterable[Path | str], jobs: int = 1
) -> list[Diagnostic]:
    """Lint every ``*.py`` file under the given files/directories.

    With ``jobs > 1`` files are analyzed in parallel worker processes
    (each file is independent); output order stays deterministic.
    """
    files = list(_iter_python_files(paths))
    if jobs > 1 and len(files) > 1:
        # The linter may parallelize over files; it is tooling, not
        # simulation code, so it exempts itself from its own rule.
        from concurrent.futures import ProcessPoolExecutor  # repro: noqa[PERF004]

        try:
            with ProcessPoolExecutor(max_workers=jobs) as pool:
                per_file = list(pool.map(lint_file, files, chunksize=8))
        except (OSError, ValueError):  # no process support: degrade serially
            per_file = [lint_file(path) for path in files]
    else:
        per_file = [lint_file(path) for path in files]
    diagnostics: list[Diagnostic] = []
    for file_diags in per_file:
        diagnostics.extend(file_diags)
    return diagnostics


_FAMILIES = {
    "DET": "determinism",
    "SIM": "simulation",
    "PERF": "performance",
    "HOT": "hot-path",
    "CKPT": "checkpoint",
    "OBS": "observability",
}


def _family_of(code: str) -> str:
    prefix = code.rstrip("0123456789")
    return _FAMILIES.get(prefix, "general")


def _list_rules() -> str:
    from repro.devtools.analysis import WHOLE_PROGRAM_RULES
    from repro.devtools.fixes import AUTOFIXES

    rows: list[tuple[str, str, str, str, str]] = []
    for code in sorted(RULES):
        rows.append(
            (
                code,
                _family_of(code),
                "per-file",
                "yes" if code in AUTOFIXES else "no",
                RULES[code].summary,
            )
        )
    for code in sorted(WHOLE_PROGRAM_RULES):
        summary, family = WHOLE_PROGRAM_RULES[code]
        rows.append((code, family, "whole-program", "no", summary))
    headers = ("CODE", "FAMILY", "SCOPE", "FIX", "SUMMARY")
    widths = [
        max(len(headers[i]), max(len(row[i]) for row in rows)) for i in range(4)
    ]
    lines = [
        "  ".join(headers[i].ljust(widths[i]) for i in range(4)) + "  SUMMARY"
    ]
    lines.append("  ".join("-" * widths[i] for i in range(4)) + "  " + "-" * 7)
    for row in rows:
        lines.append(
            "  ".join(row[i].ljust(widths[i]) for i in range(4)) + "  " + row[4]
        )
    return "\n".join(lines)


def _find_package_roots(paths: Iterable[Path | str]) -> list[Path]:
    """``repro`` package directories reachable from the lint paths."""
    roots: list[Path] = []
    seen: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        candidates = []
        if path.is_dir():
            if path.name == "repro" and (path / "__init__.py").exists():
                candidates.append(path)
            candidates.extend(
                parent for parent in sorted(path.glob("**/repro"))
                if (parent / "__init__.py").exists()
            )
        else:
            for parent in path.parents:
                if parent.name == "repro" and (parent / "__init__.py").exists():
                    candidates.append(parent)
                    break
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                roots.append(candidate)
    return roots


def _whole_program_diagnostics(
    roots: Iterable[Path],
    cache_dir: str | None,
    use_cache: bool,
    timings: list[str],
) -> list[Diagnostic]:
    from repro.devtools.analysis import analyze_project

    diagnostics: list[Diagnostic] = []
    for root in roots:
        found, info = analyze_project(root, cache_dir=cache_dir, use_cache=use_cache)
        timings.append(
            f"whole-program {root}: {info['elapsed_s'] * 1000.0:.0f} ms "
            f"({'warm, cache hit' if info['cache_hit'] else 'cold'}; "
            f"fingerprint {info['fingerprint']})"
        )
        # honour # repro: noqa in the analyzed sources
        by_path: dict[str, list[Diagnostic]] = {}
        for diag in found:
            by_path.setdefault(diag.path, []).append(diag)
        for path, diags in by_path.items():
            try:
                source = Path(path).read_text(encoding="utf-8")
            except OSError:
                diagnostics.extend(diags)
                continue
            diagnostics.extend(apply_noqa_to_source(diags, source))
    return diagnostics


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.devtools.lint",
        description="Determinism linter for the PABST simulator tree.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests"],
        help="files or directories to lint (default: src tests)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule table (family, scope, autofix) and exit",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="diagnostic output format (default: text)",
    )
    parser.add_argument(
        "--output", default=None,
        help="write formatted diagnostics to this file instead of stdout",
    )
    parser.add_argument(
        "--fix", action="store_true",
        help="apply autofixes for the mechanical rules (DET004, DET005)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="lint files in N parallel processes (default: 1)",
    )
    parser.add_argument(
        "--baseline", default="LINT_BASELINE.json", metavar="PATH",
        help="baseline suppression file (default: LINT_BASELINE.json; "
             "missing file means empty baseline)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore the baseline file and report every finding",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline file with all current findings "
             "(existing justifications carry forward by key; refuses to "
             "add new TODO-justified entries without --accept-todo)",
    )
    parser.add_argument(
        "--accept-todo", action="store_true",
        help="with --update-baseline: allow writing placeholder "
             "(TODO) justifications for findings the previous baseline "
             "did not justify",
    )
    parser.add_argument(
        "--no-whole-program", action="store_true",
        help="skip the whole-program analysis pass (DET1xx/HOT/CKPT/OBS)",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="analysis cache directory (default: .repro-cache/analysis)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="bypass the fingerprint-keyed analysis cache",
    )
    parser.add_argument(
        "--timings", action="store_true",
        help="print analyzer timing lines to stderr",
    )
    args = parser.parse_args(argv)
    if args.list_rules:
        print(_list_rules())
        return 0

    timings: list[str] = []
    try:
        if args.fix:
            from repro.devtools.fixes import fix_paths

            changed = fix_paths(args.paths)
            for path, count in changed:
                print(f"fixed {count} finding(s) in {path}")
        diagnostics = lint_paths(args.paths, jobs=args.jobs)
    except LintUsageError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if not args.no_whole_program:
        roots = _find_package_roots(args.paths)
        if roots:
            from repro.devtools.analysis.cache import DEFAULT_CACHE_DIR

            cache_dir = args.cache_dir or DEFAULT_CACHE_DIR
            diagnostics.extend(
                _whole_program_diagnostics(
                    roots, cache_dir, not args.no_cache, timings
                )
            )
    diagnostics.sort(key=lambda d: (d.path, d.line, d.col, d.code))

    from repro.devtools.baseline import Baseline

    baseline_path = Path(args.baseline)
    if args.update_baseline:
        previous = Baseline.load(baseline_path)
        updated = Baseline.from_diagnostics(
            diagnostics, justifications=previous.justifications()
        )
        placeholders = updated.placeholder_entries()
        if placeholders and not args.accept_todo:
            print(
                f"refusing to write {len(placeholders)} baseline entr"
                f"{'y' if len(placeholders) == 1 else 'ies'} with "
                "placeholder justifications; justify the findings or "
                "re-run with --accept-todo:",
                file=sys.stderr,
            )
            for entry in placeholders:
                print(
                    f"  {entry.path}:{entry.line}: {entry.code} "
                    f"{entry.message}",
                    file=sys.stderr,
                )
            return 2
        updated.save(baseline_path)
        print(f"baseline updated: {baseline_path} ({len(diagnostics)} entries)")
        if placeholders:
            print(
                f"warning: {len(placeholders)} entr"
                f"{'y has' if len(placeholders) == 1 else 'ies have'} "
                "placeholder justifications — fill them in before "
                "committing",
                file=sys.stderr,
            )
        return 0
    if not args.no_baseline:
        baseline = Baseline.load(baseline_path)
        placeholders = baseline.placeholder_entries()
        if placeholders:
            from repro.obs.warnings import obs_warn

            obs_warn(
                "lint.baseline_todo",
                "baseline %s suppresses %d finding(s) without reviewed "
                "justifications",
                baseline_path,
                len(placeholders),
            )
            for entry in placeholders:
                print(
                    f"warning: baseline entry {entry.path}: {entry.code} "
                    "has a placeholder justification — justify or fix",
                    file=sys.stderr,
                )
        diagnostics, suppressed = baseline.filter(diagnostics)
        if suppressed and args.timings:
            timings.append(f"baseline suppressed {suppressed} finding(s)")

    from repro.devtools.formats import render

    rendered = render(diagnostics, args.format)
    if args.output:
        Path(args.output).write_text(rendered + "\n", encoding="utf-8")
    elif rendered:
        print(rendered)
    for line in timings if args.timings else ():
        print(line, file=sys.stderr)
    if diagnostics:
        print(f"{len(diagnostics)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
