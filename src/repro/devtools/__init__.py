"""Developer tooling for the PABST reproduction.

``repro.devtools`` hosts static-analysis machinery that keeps the
simulator honest.  The determinism linter (:mod:`repro.devtools.lint`)
mechanically enforces the rules in README.md's "Determinism rules"
section: no ambient randomness, no wall-clock reads inside timed layers,
no float cycle arithmetic, no order leaks from unordered containers.

Run it as ``python -m repro.devtools.lint src tests`` or via the
``repro lint`` CLI subcommand.
"""

__all__ = ["Diagnostic", "lint_file", "lint_paths", "lint_source"]


def __getattr__(name):
    # Lazy re-export so ``python -m repro.devtools.lint`` does not import
    # the submodule twice (runpy would warn about the stale sys.modules
    # entry otherwise).
    if name in __all__:
        from repro.devtools import lint

        return getattr(lint, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
