"""Developer tooling for the PABST reproduction.

``repro.devtools`` hosts the static-analysis machinery that keeps the
simulator honest, in two tiers:

* The per-file determinism linter (:mod:`repro.devtools.lint`)
  mechanically enforces the rules in README.md's "Determinism rules"
  section: no ambient randomness, no wall-clock reads inside timed
  layers, no float cycle arithmetic, no order leaks from unordered
  containers.
* The whole-program analyzer (:mod:`repro.devtools.analysis`) builds a
  project symbol table + call graph and checks properties no single
  file can show: cross-module determinism taint (DET1xx), hot-kernel
  compiled-subset discipline (HOT), checkpoint pickle-safety (CKPT),
  and observability provider integrity (OBS).

Supporting modules: :mod:`repro.devtools.formats` (text/JSON/SARIF
output), :mod:`repro.devtools.baseline` (grandfathered-finding
suppression), :mod:`repro.devtools.fixes` (``--fix`` autofixes).

Run everything as ``python -m repro.devtools.lint src tests`` or via the
``repro lint`` CLI subcommand.
"""

__all__ = [
    "Diagnostic",
    "analyze_project",
    "lint_file",
    "lint_paths",
    "lint_source",
]


def __getattr__(name):
    # Lazy re-export so ``python -m repro.devtools.lint`` does not import
    # the submodule twice (runpy would warn about the stale sys.modules
    # entry otherwise).
    if name == "analyze_project":
        from repro.devtools.analysis import analyze_project

        return analyze_project
    if name in __all__:
        from repro.devtools import lint

        return getattr(lint, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
