"""Call graph: resolve callsites inside every indexed function.

Resolution is deliberately conservative — a callsite resolves to a
:class:`~repro.devtools.analysis.symbols.FunctionInfo` only when the
receiver's type is statically known (module-level function, imported
name, ``self`` method, or an attribute/local whose type the symbol table
inferred).  Unresolved calls become ``external`` edges carrying the
dotted text, which is still enough for the taint pass to recognize
wall-clock and RNG sources by name.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.devtools.analysis.symbols import (
    FunctionInfo,
    ModuleInfo,
    ProjectIndex,
    _ModuleBuilder,
    container_parts,
    element_type,
)

__all__ = ["CallGraph", "CallSite", "build_call_graph", "local_type_env"]


@dataclass
class CallSite:
    node: ast.Call
    callee: str | None  # qualname resolved inside the index
    external: str | None  # dotted name for unresolved calls ("time.time")


class CallGraph:
    """``caller qualname -> [CallSite]`` over the whole index."""

    def __init__(self) -> None:
        self.calls: dict[str, list[CallSite]] = {}
        #: reverse edges, resolved only: callee -> set of callers
        self.callers: dict[str, set[str]] = {}

    def add(self, caller: str, site: CallSite) -> None:
        self.calls.setdefault(caller, []).append(site)
        if site.callee is not None:
            self.callers.setdefault(site.callee, set()).add(caller)

    def edge_count(self) -> int:
        return sum(len(sites) for sites in self.calls.values())


def local_type_env(
    index: ProjectIndex, module: ModuleInfo, fn: FunctionInfo
) -> dict[str, str]:
    """Forward-pass local name -> type-reference map for one function.

    Covers parameter annotations, simple assignments, and the for-loop
    target shapes the package actually uses (``for x in self.field``,
    ``for k, v in mapping.items()``, ``for i, x in enumerate(seq)``).
    """
    builder = _ModuleBuilder(index, module)
    env: dict[str, str] = dict(fn.annotations)
    if fn.owner is not None:
        owner = index.classes.get(fn.owner)
        if owner is not None:
            for attr, slot in owner.fields.items():
                env.setdefault("self." + attr, slot.type_ref)
    if fn.node is None:
        return env
    for stmt in ast.walk(fn.node):
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            if isinstance(target, ast.Name):
                inferred = builder.infer_expr_type(stmt.value, env)
                if inferred != "?" or target.id not in env:
                    env[target.id] = inferred
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            env[stmt.target.id] = builder.annotation_ref(stmt.annotation)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            _bind_loop_target(builder, env, stmt.target, stmt.iter)
        elif isinstance(stmt, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            for gen in stmt.generators:
                _bind_loop_target(builder, env, gen.target, gen.iter)
    return env


def _bind_loop_target(
    builder: _ModuleBuilder,
    env: dict[str, str],
    target: ast.expr,
    iterable: ast.expr,
) -> None:
    iter_ref = "?"
    pair: tuple[str, str] | None = None
    if isinstance(iterable, ast.Call):
        chain = builder.dotted_chain(iterable.func)
        if chain is not None and chain[-1] == "items" and len(chain) >= 2:
            owner = builder.infer_expr_type(
                _attr_base(iterable.func), env
            )
            parts = container_parts(owner)
            if parts is not None and parts[0] == "dict" and len(parts[1]) == 2:
                pair = (parts[1][0], parts[1][1])
        elif chain == ["enumerate"] and iterable.args:
            inner = builder.infer_expr_type(iterable.args[0], env)
            pair = ("int", element_type(inner))
        elif chain is not None and chain[-1] in ("values", "keys"):
            owner = builder.infer_expr_type(_attr_base(iterable.func), env)
            parts = container_parts(owner)
            if parts is not None and parts[0] == "dict" and len(parts[1]) == 2:
                iter_ref = parts[1][1] if chain[-1] == "values" else parts[1][0]
        elif chain == ["sorted"] and iterable.args:
            iter_ref = element_type(builder.infer_expr_type(iterable.args[0], env))
    else:
        iter_ref = element_type(builder.infer_expr_type(iterable, env))
    if pair is not None and isinstance(target, ast.Tuple) and len(target.elts) == 2:
        for elt, ref in zip(target.elts, pair):
            if isinstance(elt, ast.Name):
                env[elt.id] = ref
        return
    if isinstance(target, ast.Name):
        env[target.id] = iter_ref


def _attr_base(func: ast.expr) -> ast.expr:
    """Receiver of a method call: ``a.b.items`` -> ``a.b``."""
    assert isinstance(func, ast.Attribute)
    return func.value


def resolve_call(
    index: ProjectIndex,
    module: ModuleInfo,
    node: ast.Call,
    env: dict[str, str],
) -> CallSite:
    builder = _ModuleBuilder(index, module)
    chain = builder.dotted_chain(node.func)
    if chain is None:
        return CallSite(node=node, callee=None, external=None)
    if len(chain) == 1:
        name = chain[0]
        resolved = index.resolve_name(module, name)
        if resolved in index.functions:
            return CallSite(node=node, callee=resolved, external=None)
        if resolved in index.classes:
            init = index.method(resolved, "__init__")
            return CallSite(
                node=node,
                callee=init.qualname if init is not None else None,
                external=None if init is not None else resolved,
            )
        return CallSite(node=node, callee=None, external=resolved or name)
    # attribute call: resolve the receiver's type
    method_name = chain[-1]
    if chain[0] == "self" and len(chain) == 2:
        owner = env.get("self")
        if owner is not None:
            method = index.method(owner, method_name)
            if method is not None:
                return CallSite(node=node, callee=method.qualname, external=None)
        return CallSite(node=node, callee=None, external=".".join(chain))
    receiver_ref = builder.infer_expr_type(node.func.value, env)
    if receiver_ref not in ("?",) and container_parts(receiver_ref) is None:
        method = index.method(receiver_ref, method_name)
        if method is not None:
            return CallSite(node=node, callee=method.qualname, external=None)
    # fall back to the dotted text (import-aware on the root segment)
    root = module.imports.get(chain[0], chain[0])
    dotted = ".".join([root] + chain[1:])
    if dotted in index.functions:
        return CallSite(node=node, callee=dotted, external=None)
    return CallSite(node=node, callee=None, external=dotted)


def build_call_graph(index: ProjectIndex) -> CallGraph:
    graph = CallGraph()
    for module in index.modules.values():
        for fn in _iter_functions(module):
            if fn.node is None:
                continue
            env = local_type_env(index, module, fn)
            for node in ast.walk(fn.node):
                if isinstance(node, ast.Call):
                    graph.add(fn.qualname, resolve_call(index, module, node, env))
    return graph


def _iter_functions(module: ModuleInfo):
    for fn in module.functions.values():
        yield fn
    for cls in module.classes.values():
        yield from cls.methods.values()
