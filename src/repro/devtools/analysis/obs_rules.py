"""OBS rule family: statically verify observability provider registrations.

``repro.obs.Registry`` stores ``(obj, attr)`` provider pairs and reads
``getattr(obj, attr)`` at sample time.  A typo'd attribute name survives
registration (the runtime ``hasattr`` guard only fires when that exact
code path runs under a test) and then silently breaks a metric stream.
This pass finds every ``register_counter(...)`` / ``register_gauge(...)``
callsite, infers the provider object's class from the symbol table, and
checks the attribute argument against the class's statically-known
attribute universe.

Rules:

========  ==============================================================
OBS001    the registered attribute does not statically exist on the
          inferred provider class (checked only when the class's
          attribute universe is *closed*: all bases indexed and no
          dynamic ``__getattr__``).
OBS002    the registered attribute is a plain method, not a data field
          or property — sampling it would record a bound method object,
          not a value.
========  ==============================================================
"""

from __future__ import annotations

import ast

from repro.devtools.analysis.callgraph import local_type_env
from repro.devtools.analysis.symbols import (
    ModuleInfo,
    ProjectIndex,
    container_parts,
)
from repro.devtools.lint import Diagnostic

__all__ = ["analyze_obs_providers"]

_REGISTER_METHODS = {"register_counter", "register_gauge"}


def analyze_obs_providers(index: ProjectIndex) -> list[Diagnostic]:
    diagnostics: list[Diagnostic] = []
    for module in index.modules.values():
        for fn in _iter_functions(module):
            if fn.node is None:
                continue
            env = local_type_env(index, module, fn)
            for node in ast.walk(fn.node):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                if not isinstance(func, ast.Attribute):
                    continue
                if func.attr not in _REGISTER_METHODS:
                    continue
                diag = _check_registration(index, module, node, env)
                if diag is not None:
                    diagnostics.append(diag)
    diagnostics.sort(key=lambda d: (d.path, d.line, d.col, d.code))
    return diagnostics


def _check_registration(
    index: ProjectIndex,
    module: ModuleInfo,
    node: ast.Call,
    env: dict[str, str],
) -> Diagnostic | None:
    # Signature: register_*(name, obj, attr) with attr a string literal.
    if len(node.args) < 3:
        return None
    obj_arg, attr_arg = node.args[1], node.args[2]
    if not (isinstance(attr_arg, ast.Constant) and isinstance(attr_arg.value, str)):
        return None
    attr = attr_arg.value
    from repro.devtools.analysis.symbols import _ModuleBuilder

    builder = _ModuleBuilder(index, module)
    provider_ref = builder.infer_expr_type(obj_arg, env)
    if provider_ref == "?" or container_parts(provider_ref) is not None:
        return None
    if provider_ref not in index.classes:
        return None
    attrs = index.class_attrs(provider_ref)
    provider_name = provider_ref.split(".")[-1]
    if attrs is not None and attr not in attrs:
        return Diagnostic(
            path=module.path,
            line=node.lineno,
            col=node.col_offset,
            code="OBS001",
            message=(
                f"obs provider registers attribute {attr!r} which does not "
                f"statically exist on {provider_name}; sampling would raise "
                "or silently drop the metric"
            ),
            end_line=node.end_lineno or 0,
        )
    method = index.method(provider_ref, attr)
    if method is not None and not method.is_property:
        return Diagnostic(
            path=module.path,
            line=node.lineno,
            col=node.col_offset,
            code="OBS002",
            message=(
                f"obs provider registers {provider_name}.{attr}, a plain "
                "method; sampling records the bound method object, not a "
                "value — use a field or @property"
            ),
            end_line=node.end_lineno or 0,
        )
    return None


def _iter_functions(module: ModuleInfo):
    for fn in module.functions.values():
        yield fn
    for cls in module.classes.values():
        yield from cls.methods.values()
