"""Whole-program static analysis for the repro package.

This package grows ``repro.devtools`` beyond per-file AST matching: it
builds one shared symbol table + call graph over the package tree
(:mod:`.symbols`, :mod:`.callgraph`) and runs four whole-program rule
families against it:

* **DET1xx** (:mod:`.taint`) — cross-module determinism taint: can a
  wall-clock/RNG/``hash()`` value *reach* the event queue or seed
  derivation via any call path?
* **HOT** (:mod:`.hotpath`) — compiled-subset discipline for the
  declared hot-kernel manifest (ROADMAP item 4 pre-flight).
* **CKPT** (:mod:`.pickle_safety`) — static pickle-safety reachability
  from the ``System`` field graph.
* **OBS** (:mod:`.obs_rules`) — every registered observability provider
  names a statically-existing, data-like attribute.

Results are cached on disk keyed by the runner source fingerprint
(:mod:`.cache`), so a clean warm run skips parsing entirely.
"""

from __future__ import annotations

import time
from pathlib import Path

from repro.devtools.analysis.cache import (
    DEFAULT_CACHE_DIR,
    load_analysis,
    store_analysis,
)
from repro.devtools.analysis.callgraph import build_call_graph
from repro.devtools.analysis.hotpath import HOT_KERNELS, analyze_hot_kernels
from repro.devtools.analysis.obs_rules import analyze_obs_providers
from repro.devtools.analysis.pickle_safety import analyze_pickle_safety
from repro.devtools.analysis.symbols import ProjectIndex, build_index
from repro.devtools.analysis.taint import analyze_taint
from repro.devtools.lint import Diagnostic

__all__ = [
    "HOT_KERNELS",
    "WHOLE_PROGRAM_RULES",
    "analyze_project",
    "build_call_graph",
    "build_index",
    "ProjectIndex",
]

#: Rule metadata for ``--list-rules``: code -> (summary, family).
#: Whole-program rules live here, not in ``lint.RULES`` — they need the
#: project index and cannot run per-file.
WHOLE_PROGRAM_RULES: dict[str, tuple[str, str]] = {
    "DET101": (
        "nondeterministic value can reach an event-queue timestamp "
        "(post/post_at/post_chain_at/schedule/run_until) via some call path",
        "determinism",
    ),
    "DET102": (
        "nondeterministic value can reach RNG seed derivation "
        "(SeedSequence/PCG64/default_rng or a seed=/entropy= kwarg)",
        "determinism",
    ),
    "HOT001": (
        "hot kernel uses dynamic features (eval/exec/globals/setattr/**kwargs) "
        "outside the compiled subset",
        "hot-path",
    ),
    "HOT002": (
        "hot kernel nested def/lambda captures enclosing state (cell "
        "variables defeat unboxing)",
        "hot-path",
    ),
    "HOT003": (
        "container allocation inside a hot-kernel loop (tuples allowed)",
        "hot-path",
    ),
    "HOT004": (
        "hot-kernel timestamp parameter not annotated int / float literal "
        "in cycle arithmetic",
        "hot-path",
    ),
    "HOT005": (
        "hot-kernel manifest and '# repro: hot-kernel' markers disagree",
        "hot-path",
    ),
    "HOT006": (
        "NATIVE_KERNELS manifest and 'repro: native-kernel' markers disagree",
        "hot-path",
    ),
    "CKPT001": (
        "checkpoint-reachable field holds an OS resource "
        "(file handle/lock/thread/socket/module/weakref)",
        "checkpoint",
    ),
    "CKPT002": (
        "checkpoint-reachable field bound to a lambda/nested def/generator "
        "literal",
        "checkpoint",
    ),
    "OBS001": (
        "registered obs provider attribute does not statically exist on "
        "the provider class",
        "observability",
    ),
    "OBS002": (
        "registered obs provider attribute is a plain method, not a "
        "field or property",
        "observability",
    ),
}


def analyze_index(index: ProjectIndex) -> list[Diagnostic]:
    """Run every whole-program family against an already-built index."""
    diagnostics: list[Diagnostic] = []
    diagnostics.extend(analyze_taint(index))
    diagnostics.extend(analyze_hot_kernels(index))
    diagnostics.extend(analyze_pickle_safety(index))
    diagnostics.extend(analyze_obs_providers(index))
    diagnostics.sort(key=lambda d: (d.path, d.line, d.col, d.code))
    return diagnostics


def analyze_project(
    root: Path | str,
    package: str | None = None,
    cache_dir: Path | str | None = DEFAULT_CACHE_DIR,
    use_cache: bool = True,
) -> tuple[list[Diagnostic], dict]:
    """Whole-program pass over one package directory.

    Returns ``(diagnostics, info)`` where ``info`` carries the source
    fingerprint, elapsed wall time, and whether the disk cache was hit.
    Pass ``cache_dir=None`` (or ``use_cache=False``) to force a cold run.
    """
    from repro.runner.fingerprint import source_fingerprint

    root = Path(root)
    started = time.perf_counter()
    fingerprint = source_fingerprint(root)
    if use_cache and cache_dir is not None:
        cached = load_analysis(cache_dir, fingerprint)
        if cached is not None:
            diagnostics, _symbols = cached
            return diagnostics, {
                "fingerprint": fingerprint,
                "cache_hit": True,
                "elapsed_s": time.perf_counter() - started,
            }
    index = build_index(root, package=package)
    diagnostics = analyze_index(index)
    if use_cache and cache_dir is not None:
        store_analysis(cache_dir, fingerprint, diagnostics, index.summary())
    return diagnostics, {
        "fingerprint": fingerprint,
        "cache_hit": False,
        "elapsed_s": time.perf_counter() - started,
        "modules": len(index.modules),
        "functions": len(index.functions),
    }
