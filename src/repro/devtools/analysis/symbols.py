"""Project symbol table: modules, classes, functions, inferred field types.

The whole-program passes (taint, HOT, CKPT, OBS) all consume one shared
:class:`ProjectIndex` built in a single parse of the package tree.  The
index records, per module, the import alias table, every class with its
*field graph* (attribute name -> inferred type reference), and every
function/method with its AST kept in memory for the flow passes.

Type references are plain strings so they stay cheap and serializable:

* a dotted qualname for a class defined in the analyzed package
  (``repro.dram.controller.MemoryController``);
* ``list[X]`` / ``dict[K, V]`` / ``tuple[X]`` / ``set[X]`` /
  ``deque[X]`` for containers, with element types inferred recursively;
* lowercase tokens for builtins (``int``, ``str``) and for the hazard
  categories the CKPT pass keys on (``lambda``, ``function``,
  ``generator``, ``filehandle``, ``lock``, ``thread``, ``socket``,
  ``module``, ``weakref``);
* ``?`` when inference gives up — consumers must treat ``?`` as "skip",
  never as "violation", so inference gaps cannot produce false alarms.

Field types come from three places, later ones refining earlier ones:
class-body annotations, parameter annotations flowing through
``self.x = param`` assignments, and constructor-call inference on the
right-hand side of ``self.x = ...`` in any method.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

__all__ = [
    "ClassInfo",
    "FieldInfo",
    "FunctionInfo",
    "ModuleInfo",
    "ProjectIndex",
    "build_index",
]

#: Hazard tokens for expressions that cannot round-trip through pickle.
RESOURCE_TYPES = {"filehandle", "lock", "thread", "socket", "module", "weakref"}
CALLABLE_LITERALS = {"lambda", "function", "generator"}

_CONTAINER_CALLS = {
    "list": "list",
    "dict": "dict",
    "set": "set",
    "tuple": "tuple",
    "frozenset": "set",
    "deque": "deque",
    "defaultdict": "dict",
    "OrderedDict": "dict",
}

_RESOURCE_CALLS = {
    ("builtins", "open"): "filehandle",
    ("io", "open"): "filehandle",
    ("threading", "Lock"): "lock",
    ("threading", "RLock"): "lock",
    ("threading", "Condition"): "lock",
    ("threading", "Semaphore"): "lock",
    ("threading", "BoundedSemaphore"): "lock",
    ("threading", "Event"): "lock",
    ("threading", "Thread"): "thread",
    ("multiprocessing", "Lock"): "lock",
    ("multiprocessing", "Process"): "thread",
    ("socket", "socket"): "socket",
    ("weakref", "ref"): "weakref",
    ("weakref", "WeakValueDictionary"): "weakref",
    ("weakref", "WeakKeyDictionary"): "weakref",
}


@dataclass
class FieldInfo:
    """One attribute slot on a class: where it was bound and to what."""

    name: str
    type_ref: str
    lineno: int
    end_lineno: int
    method: str  # method that bound it ("<class>" for class-body bindings)


@dataclass
class FunctionInfo:
    """A function or method with its AST retained for the flow passes."""

    qualname: str
    module: str
    name: str
    lineno: int
    end_lineno: int
    params: tuple[str, ...]  # positional-or-keyword names, `self` included
    annotations: dict[str, str]
    is_method: bool
    owner: str | None  # owning class qualname for methods
    is_property: bool
    has_kwargs: bool
    node: ast.FunctionDef | ast.AsyncFunctionDef = field(repr=False, default=None)


@dataclass
class ClassInfo:
    qualname: str
    module: str
    name: str
    lineno: int
    bases: tuple[str, ...]  # resolved dotted names where possible
    fields: dict[str, FieldInfo] = field(default_factory=dict)
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    class_attrs: set[str] = field(default_factory=set)
    slots: tuple[str, ...] | None = None
    has_dynamic_getattr: bool = False


@dataclass
class ModuleInfo:
    name: str  # dotted module name, e.g. ``repro.sim.engine``
    path: str
    source: str = field(repr=False, default="")
    lines: tuple[str, ...] = field(repr=False, default=())
    tree: ast.Module = field(repr=False, default=None)
    imports: dict[str, str] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)


class ProjectIndex:
    """All modules of one package plus cross-module lookup helpers."""

    def __init__(self, package: str) -> None:
        self.package = package
        self.modules: dict[str, ModuleInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}

    # ------------------------------------------------------------------
    # lookup helpers
    # ------------------------------------------------------------------
    def resolve_name(self, module: ModuleInfo, name: str) -> str | None:
        """Dotted target for a bare name in ``module`` (local def or import)."""
        if name in module.classes:
            return module.classes[name].qualname
        if name in module.functions:
            return module.functions[name].qualname
        return module.imports.get(name)

    def class_attrs(self, qualname: str) -> set[str] | None:
        """Every statically-known attribute of a class, bases included.

        Returns ``None`` when any base is outside the index (or defines a
        dynamic ``__getattr__``), meaning the attribute universe is open
        and absence checks must not fire.
        """
        info = self.classes.get(qualname)
        if info is None:
            return None
        if info.has_dynamic_getattr:
            return None
        attrs = set(info.fields)
        attrs.update(info.class_attrs)
        attrs.update(info.methods)
        if info.slots is not None:
            attrs.update(info.slots)
        for base in info.bases:
            if base in ("object", "Exception", "RuntimeError", "ValueError"):
                continue
            base_attrs = self.class_attrs(base)
            if base_attrs is None:
                return None
            attrs.update(base_attrs)
        return attrs

    def field_type(self, class_qualname: str, attr: str) -> str:
        """Inferred type reference of ``attr`` on a class (bases searched)."""
        info = self.classes.get(class_qualname)
        if info is None:
            return "?"
        slot = info.fields.get(attr)
        if slot is not None:
            return slot.type_ref
        for base in info.bases:
            found = self.field_type(base, attr)
            if found != "?":
                return found
        return "?"

    def method(self, class_qualname: str, name: str) -> FunctionInfo | None:
        """Look a method up on a class or its indexed bases."""
        info = self.classes.get(class_qualname)
        if info is None:
            return None
        fn = info.methods.get(name)
        if fn is not None:
            return fn
        for base in info.bases:
            fn = self.method(base, name)
            if fn is not None:
                return fn
        return None

    def summary(self) -> dict:
        """Compact JSON-able inventory (cached beside the diagnostics)."""
        return {
            "package": self.package,
            "modules": {
                name: {
                    "classes": sorted(mod.classes),
                    "functions": sorted(mod.functions),
                }
                for name, mod in sorted(self.modules.items())
            },
        }


# ----------------------------------------------------------------------
# type-reference helpers
# ----------------------------------------------------------------------
def container_parts(type_ref: str) -> tuple[str, tuple[str, ...]] | None:
    """Split ``dict[int, X]`` into ``("dict", ("int", "X"))``; None if plain."""
    if "[" not in type_ref or not type_ref.endswith("]"):
        return None
    head, _, rest = type_ref.partition("[")
    inner = rest[:-1]
    parts: list[str] = []
    depth = 0
    current = ""
    for char in inner:
        if char == "," and depth == 0:
            parts.append(current.strip())
            current = ""
            continue
        if char == "[":
            depth += 1
        elif char == "]":
            depth -= 1
        current += char
    if current.strip():
        parts.append(current.strip())
    return head, tuple(parts)


def element_type(type_ref: str) -> str:
    """Element type of a container reference (value type for dicts)."""
    parts = container_parts(type_ref)
    if parts is None:
        return "?"
    head, args = parts
    if not args:
        return "?"
    if head == "dict":
        return args[1] if len(args) > 1 else "?"
    return args[0]


def strip_optional(type_ref: str) -> str:
    """``X | None`` / ``Optional[X]`` -> ``X``."""
    ref = type_ref.strip()
    if ref.startswith("Optional[") and ref.endswith("]"):
        return ref[len("Optional[") : -1].strip()
    if "|" in ref:
        alternatives = [part.strip() for part in ref.split("|")]
        alternatives = [part for part in alternatives if part != "None"]
        if len(alternatives) == 1:
            return alternatives[0]
    return ref


# ----------------------------------------------------------------------
# builder
# ----------------------------------------------------------------------
class _ModuleBuilder:
    def __init__(self, index: ProjectIndex, module: ModuleInfo) -> None:
        self.index = index
        self.module = module

    # -- imports -------------------------------------------------------
    def collect_imports(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    self.module.imports[local] = target
            elif isinstance(node, ast.ImportFrom):
                base = self._from_base(node)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.module.imports[local] = f"{base}.{alias.name}"

    def _from_base(self, node: ast.ImportFrom) -> str | None:
        if node.level == 0:
            return node.module
        # relative import: resolve against this module's dotted name
        parts = self.module.name.split(".")
        # level 1 == current package (drop the module segment), etc.
        anchor = parts[: len(parts) - node.level]
        if not anchor:
            return node.module
        if node.module:
            return ".".join(anchor) + "." + node.module
        return ".".join(anchor)

    # -- annotation resolution -----------------------------------------
    def annotation_ref(self, node: ast.expr | None) -> str:
        if node is None:
            return "?"
        text = self._ann_text(node)
        return self.resolve_annotation_text(text)

    @staticmethod
    def _ann_text(node: ast.expr) -> str:
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value  # string annotation
        try:
            return ast.unparse(node)
        except Exception:  # pragma: no cover - malformed annotation
            return "?"

    def resolve_annotation_text(self, text: str) -> str:
        text = strip_optional(text)
        if not text or text == "None":
            return "?"
        if text.startswith(("Callable", "typing.Callable")):
            return "?"  # callables via annotation are usually bound methods
        parts = container_parts(text)
        if parts is not None:
            head, args = parts
            head_resolved = self._resolve_plain(head)
            if head_resolved in ("list", "dict", "set", "tuple", "deque"):
                inner = ", ".join(self.resolve_annotation_text(a) for a in args)
                return f"{head_resolved}[{inner}]"
            return head_resolved
        return self._resolve_plain(text)

    def _resolve_plain(self, text: str) -> str:
        text = text.strip().strip('"').strip("'")
        if not text or not text[0].isalpha() and text[0] != "_":
            return "?"
        if text in ("int", "float", "str", "bool", "bytes", "list", "dict",
                    "set", "tuple", "deque", "Deque"):
            return "deque" if text == "Deque" else text
        head, _, rest = text.partition(".")
        resolved = self.index.resolve_name(self.module, head)
        if resolved is None:
            return "?"
        dotted = resolved + ("." + rest if rest else "")
        # collapse "module.Class" to the class qualname when indexed
        if dotted in self.index.classes:
            return dotted
        # maybe "pkg.mod.Class" where resolved is a module name
        if rest and resolved in self.index.modules:
            candidate = f"{resolved}.{rest}"
            if candidate in self.index.classes:
                return candidate
        if dotted in self.index.classes or dotted in self.index.modules:
            return dotted
        return dotted if dotted.startswith(self.index.package + ".") else "?"

    # -- expression type inference -------------------------------------
    def dotted_chain(self, node: ast.expr) -> list[str] | None:
        chain: list[str] = []
        while isinstance(node, ast.Attribute):
            chain.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        chain.append(node.id)
        chain.reverse()
        return chain

    def infer_call_type(self, node: ast.Call, env: dict[str, str]) -> str:
        chain = self.dotted_chain(node.func)
        if chain is None:
            return "?"
        name = chain[-1]
        if len(chain) == 1:
            if name == "open":
                return "filehandle"
            if name in _CONTAINER_CALLS:
                head = _CONTAINER_CALLS[name]
                if node.args:
                    inner = self.infer_expr_type(node.args[0], env)
                    elem = element_type(inner) if container_parts(inner) else "?"
                    return f"{head}[{elem}]"
                return f"{head}[?]"
            resolved = self.index.resolve_name(self.module, name)
            if resolved in self.index.classes:
                return resolved
            if resolved is not None:
                root = resolved.split(".")[0]
                mapped = _RESOURCE_CALLS.get((root, name))
                if mapped is not None:
                    return mapped
            return "?"
        root = chain[0]
        root_target = self.module.imports.get(root, root)
        mapped = _RESOURCE_CALLS.get((root_target.split(".")[0], name))
        if mapped is not None:
            return mapped
        if name in _CONTAINER_CALLS and len(chain) == 2:
            return f"{_CONTAINER_CALLS[name]}[?]"
        # module-attribute constructor: ``pkgmod.Class(...)``
        dotted = ".".join([root_target] + chain[1:])
        if dotted in self.index.classes:
            return dotted
        return "?"

    def infer_expr_type(self, node: ast.expr, env: dict[str, str]) -> str:
        """Best-effort type reference for an expression.

        ``env`` maps local names (including ``self.<attr>`` pseudo-names)
        to type references.
        """
        if isinstance(node, ast.Lambda):
            return "lambda"
        if isinstance(node, ast.GeneratorExp):
            return "generator"
        if isinstance(node, ast.ListComp):
            return f"list[{self.infer_expr_type(node.elt, env)}]"
        if isinstance(node, ast.SetComp):
            return f"set[{self.infer_expr_type(node.elt, env)}]"
        if isinstance(node, ast.DictComp):
            key = self.infer_expr_type(node.key, env)
            value = self.infer_expr_type(node.value, env)
            return f"dict[{key}, {value}]"
        if isinstance(node, ast.List):
            elem = self.infer_expr_type(node.elts[0], env) if node.elts else "?"
            return f"list[{elem}]"
        if isinstance(node, ast.Set):
            elem = self.infer_expr_type(node.elts[0], env) if node.elts else "?"
            return f"set[{elem}]"
        if isinstance(node, ast.Tuple):
            elem = self.infer_expr_type(node.elts[0], env) if node.elts else "?"
            return f"tuple[{elem}]"
        if isinstance(node, ast.Dict):
            key = self.infer_expr_type(node.keys[0], env) if node.keys and node.keys[0] else "?"
            value = self.infer_expr_type(node.values[0], env) if node.values else "?"
            return f"dict[{key}, {value}]"
        if isinstance(node, ast.Constant):
            if node.value is None:
                return "?"
            return type(node.value).__name__
        if isinstance(node, ast.Call):
            return self.infer_call_type(node, env)
        if isinstance(node, ast.Name):
            return env.get(node.id, "?")
        if isinstance(node, ast.Attribute):
            chain = self.dotted_chain(node)
            if chain is not None and chain[0] == "self":
                pseudo = "self." + ".".join(chain[1:])
                if pseudo in env:
                    return env[pseudo]
                if len(chain) == 2:
                    return env.get(pseudo, "?")
                # self.field.attr: field type -> attribute type
                owner = env.get("self." + chain[1], "?")
                ref = owner
                for attr in chain[2:]:
                    if ref in ("?",) or container_parts(ref) is not None:
                        return "?"
                    ref = self.index.field_type(ref, attr)
                return ref
            if chain is not None:
                base = env.get(chain[0])
                if base is not None and base not in ("?",):
                    ref = base
                    for attr in chain[1:]:
                        if container_parts(ref) is not None:
                            return "?"
                        ref = self.index.field_type(ref, attr)
                    return ref
            return "?"
        if isinstance(node, ast.IfExp):
            primary = self.infer_expr_type(node.body, env)
            if primary != "?":
                return primary
            return self.infer_expr_type(node.orelse, env)
        if isinstance(node, ast.Subscript):
            return element_type(self.infer_expr_type(node.value, env))
        if isinstance(node, ast.Await):
            return "?"
        if isinstance(node, ast.BinOp):
            return "?"
        return "?"

    # -- class extraction ----------------------------------------------
    def build_class(self, node: ast.ClassDef) -> ClassInfo:
        qualname = f"{self.module.name}.{node.name}"
        bases = []
        for base in node.bases:
            chain = self.dotted_chain(base)
            if chain is None:
                continue
            if len(chain) == 1:
                resolved = self.index.resolve_name(self.module, chain[0])
                bases.append(resolved or chain[0])
            else:
                root = self.module.imports.get(chain[0], chain[0])
                bases.append(".".join([root] + chain[1:]))
        info = ClassInfo(
            qualname=qualname,
            module=self.module.name,
            name=node.name,
            lineno=node.lineno,
            bases=tuple(bases),
        )
        for stmt in node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                if stmt.target.id == "__slots__":
                    continue
                info.fields[stmt.target.id] = FieldInfo(
                    name=stmt.target.id,
                    type_ref=self.annotation_ref(stmt.annotation),
                    lineno=stmt.lineno,
                    end_lineno=stmt.end_lineno or stmt.lineno,
                    method="<class>",
                )
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if not isinstance(target, ast.Name):
                        continue
                    if target.id == "__slots__":
                        info.slots = self._literal_strings(stmt.value)
                        continue
                    info.class_attrs.add(target.id)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if stmt.name == "__getattr__":
                    info.has_dynamic_getattr = True
                fn = self.build_function(stmt, owner=info)
                info.methods[stmt.name] = fn
                self.index.functions[fn.qualname] = fn
        # field inference over every method body, __init__ first so later
        # methods refine rather than shadow the constructor's bindings
        ordered = sorted(
            info.methods.values(), key=lambda fn: (fn.name != "__init__", fn.lineno)
        )
        for fn in ordered:
            self._collect_self_assignments(info, fn)
        return info

    @staticmethod
    def _literal_strings(node: ast.expr) -> tuple[str, ...] | None:
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            values = []
            for elt in node.elts:
                if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                    values.append(elt.value)
            return tuple(values)
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return (node.value,)
        return None

    def _collect_self_assignments(self, info: ClassInfo, fn: FunctionInfo) -> None:
        node = fn.node
        if node is None:
            return
        env: dict[str, str] = {}
        for param, ref in fn.annotations.items():
            env[param] = ref
        for attr, slot in info.fields.items():
            env.setdefault("self." + attr, slot.type_ref)
        for stmt in ast.walk(node):
            target: ast.expr | None = None
            value: ast.expr | None = None
            annotation: ast.expr | None = None
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target, value = stmt.targets[0], stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                target, value, annotation = stmt.target, stmt.value, stmt.annotation
            if target is None:
                continue
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                attr = target.attr
                if annotation is not None:
                    ref = self.annotation_ref(annotation)
                elif value is not None:
                    ref = self.infer_expr_type(value, env)
                else:
                    ref = "?"
                existing = info.fields.get(attr)
                if existing is None:
                    info.fields[attr] = FieldInfo(
                        name=attr,
                        type_ref=ref,
                        lineno=stmt.lineno,
                        end_lineno=stmt.end_lineno or stmt.lineno,
                        method=fn.name,
                    )
                elif existing.type_ref == "?" and ref != "?":
                    existing.type_ref = ref
                env["self." + attr] = info.fields[attr].type_ref
            elif isinstance(target, ast.Name) and value is not None:
                env.setdefault(target.id, self.infer_expr_type(value, env))

    # -- function extraction -------------------------------------------
    def build_function(
        self,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        owner: ClassInfo | None = None,
    ) -> FunctionInfo:
        if owner is not None:
            qualname = f"{owner.qualname}.{node.name}"
        else:
            qualname = f"{self.module.name}.{node.name}"
        params = tuple(
            arg.arg for arg in node.args.posonlyargs + node.args.args
        )
        annotations = {}
        for arg in node.args.posonlyargs + node.args.args + node.args.kwonlyargs:
            if arg.annotation is not None:
                annotations[arg.arg] = self.annotation_ref(arg.annotation)
        if owner is not None and params and params[0] == "self":
            annotations.setdefault("self", owner.qualname)
        is_property = any(
            isinstance(dec, ast.Name) and dec.id == "property"
            or isinstance(dec, ast.Attribute) and dec.attr in ("setter", "getter")
            for dec in node.decorator_list
        )
        return FunctionInfo(
            qualname=qualname,
            module=self.module.name,
            name=node.name,
            lineno=node.lineno,
            end_lineno=node.end_lineno or node.lineno,
            params=params,
            annotations=annotations,
            is_method=owner is not None,
            owner=owner.qualname if owner is not None else None,
            is_property=is_property,
            has_kwargs=node.args.kwarg is not None,
            node=node,
        )


def _module_name(package: str, root: Path, path: Path) -> str:
    relative = path.relative_to(root).with_suffix("")
    parts = [package] + list(relative.parts)
    if parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts)


def build_index(
    root: Path | str,
    package: str | None = None,
    sources: dict[str, str] | None = None,
) -> ProjectIndex:
    """Index every ``*.py`` under ``root`` (a package directory).

    ``sources`` overrides file contents (used by tests to index inline
    snippets without touching disk): a mapping of path-string -> source.
    """
    root = Path(root)
    if package is None:
        package = root.name
    index = ProjectIndex(package)
    if sources is not None:
        items: Iterable[tuple[Path, str]] = [
            (Path(path), text) for path, text in sorted(sources.items())
        ]
    else:
        items = [
            (path, path.read_text(encoding="utf-8"))
            for path in sorted(root.rglob("*.py"))
        ]
    # first pass: parse and register names so imports can resolve
    pending: list[tuple[ModuleInfo, ast.Module]] = []
    for path, text in items:
        try:
            tree = ast.parse(text, filename=str(path))
        except SyntaxError:
            continue  # the per-file linter reports E999 for this file
        name = _module_name(package, root, path)
        module = ModuleInfo(
            name=name,
            path=str(path),
            source=text,
            lines=tuple(text.splitlines()),
            tree=tree,
        )
        index.modules[name] = module
        pending.append((module, tree))
    # second pass: imports, then classes/functions (annotation resolution
    # needs every module's import table populated first)
    builders = []
    for module, tree in pending:
        builder = _ModuleBuilder(index, module)
        builder.collect_imports(tree)
        builders.append((builder, module, tree))
    for builder, module, tree in builders:
        for stmt in tree.body:
            if isinstance(stmt, ast.ClassDef):
                info = builder.build_class(stmt)
                module.classes[stmt.name] = info
                index.classes[info.qualname] = info
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fn = builder.build_function(stmt)
                module.functions[stmt.name] = fn
                index.functions[fn.qualname] = fn
    # third pass: re-run field inference now that *all* classes exist, so
    # cross-module constructor calls resolve regardless of file order
    for builder, module, tree in builders:
        for stmt in tree.body:
            if isinstance(stmt, ast.ClassDef):
                info = module.classes[stmt.name]
                ordered = sorted(
                    info.methods.values(),
                    key=lambda fn: (fn.name != "__init__", fn.lineno),
                )
                for fn in ordered:
                    builder._collect_self_assignments(info, fn)
    return index
