"""HOT rule family: compiled-subset discipline for declared hot kernels.

ROADMAP item 4 (compiled hot core via mypyc/Cython) is only safe to
attempt if the kernels it would compile provably stay inside a
compilable, allocation-disciplined subset.  This pass machine-checks
that inventory.

A *hot kernel* is a function marked with a trailing ``# repro: hot-kernel``
comment on its ``def`` line.  For the real ``repro`` package the marked
set must agree exactly with :data:`HOT_KERNELS` (the committed
manifest), so adding or removing a kernel is always a reviewed,
two-sided change.

Rules:

========  ==============================================================
HOT001    no dynamic features in a hot kernel: ``eval``/``exec``/
          ``compile``/``globals()``/``locals()``/``vars()``/
          ``setattr``/``delattr``/``__import__`` and ``**kwargs``
          parameters all defeat ahead-of-time compilation.
HOT002    no closure captures of enclosing mutable state: nested
          ``def``/``lambda`` reading the kernel's locals forces cell
          variables, which compiled backends either reject or box.
HOT003    no container allocation inside kernel loops beyond the
          allowlist (tuple displays are allowed — event entries are
          tuples by design): list/set/dict displays, comprehensions,
          and list()/dict()/set()/deque() calls in a loop body churn
          the allocator on the per-event path.
HOT004    timestamp-like parameters (``when``/``now``/``deadline``/
          ``delay``/``*_at``/``*_until``) must carry an explicit
          ``int`` annotation so cycle arithmetic stays integral under
          a compiled backend; float literals in kernel bodies are
          flagged for the same reason.
HOT005    manifest integrity: every manifest entry must resolve to a
          marked function, and every marked function must be in the
          manifest (machine-checked kernel inventory).
HOT006    native-mirror integrity: every function mirrored in C by the
          compiled backend carries a trailing ``repro: native-kernel``
          marker, and the marked set must agree exactly with the
          ``NATIVE_KERNELS`` manifest the backend registers at load
          time (for foreign packages: a module-level ``NATIVE_KERNELS``
          dict literal, statically extracted).
========  ==============================================================
"""

from __future__ import annotations

import ast

from repro.devtools.analysis.symbols import FunctionInfo, ModuleInfo, ProjectIndex
from repro.devtools.lint import Diagnostic

__all__ = [
    "HOT_KERNELS",
    "MARKER",
    "NATIVE_KERNELS",
    "NATIVE_MARKER",
    "analyze_hot_kernels",
    "find_kernels",
    "find_native_kernels",
]

MARKER = "# repro: hot-kernel"

#: No leading ``#`` so a combined comment satisfies both substring
#: checks: ``# repro: hot-kernel; repro: native-kernel``.
NATIVE_MARKER = "repro: native-kernel"

#: The committed hot-kernel inventory for the ``repro`` package: the
#: wheel dispatch loops, the controller scheduling pass and bank issue
#: loop, the pacer drain, and the per-class bandwidth share scan.
HOT_KERNELS: dict[str, str] = {
    "repro.sim.engine.TimingWheel.run_until": "wheel dispatch loop",
    "repro.sim.engine.TimingWheel.run": "drain-to-empty dispatch loop",
    "repro.dram.controller.MemoryController._run_pass": "controller scheduling pass",
    "repro.dram.controller.MemoryController._issue_ready": "bank issue inner loop",
    "repro.core.pacer.Pacer._release_now": "pacer drain loop",
    "repro.qos.monitor.BandwidthMonitor.share": "per-class bandwidth share scan",
}

#: The committed native-mirror inventory: callbacks the compiled wheel
#: core executes in C without re-entering the interpreter.  Keys are
#: qualnames; values are the kind tags the C extension registers via
#: ``_install_kinds``.  The runtime handshake
#: (:func:`repro.accel.native.install_native_kinds`) and rule HOT006
#: both check against this dict, so growing the mirrored set is always
#: a reviewed, two-sided change.
NATIVE_KERNELS: dict[str, str] = {
    "repro.core.pacer.Pacer._release_head": "pacer_release_head",
    "repro.dram.controller.MemoryController._run_pass": "mc_run_pass",
    "repro.dram.controller.MemoryController._complete": "mc_complete",
    "repro.dram.controller.MemoryController._complete_fused": "mc_complete_fused",
    "repro.sim.system.System._deliver": "sys_deliver",
    "repro.sim.system.System._pump_mc": "sys_pump_mc",
    "repro.sim.system.System._enqueue_response": "sys_enqueue_response",
    "repro.sim.system.System._flush_responses": "sys_flush_responses",
    "repro.sim.system.System._on_mc_space": "sys_on_mc_space",
    "repro.core.arbiter.PriorityArbiter.on_accept": "mc_policy_on_accept",
    "repro.core.arbiter.PriorityArbiter.pick": "mc_policy_pick",
}

_BANNED_CALLS = {
    "eval", "exec", "compile", "globals", "locals", "vars",
    "setattr", "delattr", "__import__",
}
_ALLOC_CALLS = {
    "list", "dict", "set", "frozenset", "deque", "bytearray", "defaultdict",
}
_TIMESTAMP_EXACT = {"when", "now", "deadline", "delay", "_now"}
_TIMESTAMP_SUFFIXES = ("_at", "_deadline", "_until")


def _is_timestamp_param(name: str) -> bool:
    return name in _TIMESTAMP_EXACT or name.endswith(_TIMESTAMP_SUFFIXES)


def find_kernels(index: ProjectIndex) -> dict[str, FunctionInfo]:
    """Every function whose ``def`` line carries the hot-kernel marker."""
    kernels: dict[str, FunctionInfo] = {}
    for module in index.modules.values():
        for fn in _iter_functions(module):
            if fn.node is None:
                continue
            line_index = fn.node.lineno - 1
            if line_index < len(module.lines) and MARKER in module.lines[line_index]:
                kernels[fn.qualname] = fn
    return kernels


def find_native_kernels(index: ProjectIndex) -> dict[str, FunctionInfo]:
    """Every function whose ``def`` line carries the native-kernel marker."""
    kernels: dict[str, FunctionInfo] = {}
    for module in index.modules.values():
        for fn in _iter_functions(module):
            if fn.node is None:
                continue
            line_index = fn.node.lineno - 1
            if line_index < len(module.lines) and NATIVE_MARKER in module.lines[line_index]:
                kernels[fn.qualname] = fn
    return kernels


def _native_manifest(index: ProjectIndex) -> dict[str, str]:
    """The NATIVE_KERNELS manifest that governs ``index``'s package.

    The ``repro`` package is governed by the committed module-level
    manifest above.  Any other package (test corpora, third-party
    trees) is governed by module-level ``NATIVE_KERNELS`` dict literals
    found inside the package itself, statically extracted and merged —
    so corpus projects can declare (and violate) their own inventory.
    """
    if index.package == "repro":
        return dict(NATIVE_KERNELS)
    manifest: dict[str, str] = {}
    for module in sorted(index.modules):
        tree = index.modules[module].tree
        if tree is None:
            continue
        for node in tree.body:
            target = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
            elif isinstance(node, ast.AnnAssign):
                target = node.target
            if not (isinstance(target, ast.Name) and target.id == "NATIVE_KERNELS"):
                continue
            value = node.value
            if not isinstance(value, ast.Dict):
                continue
            for key, val in zip(value.keys, value.values):
                if (
                    isinstance(key, ast.Constant)
                    and isinstance(key.value, str)
                    and isinstance(val, ast.Constant)
                    and isinstance(val.value, str)
                ):
                    manifest[key.value] = val.value
    return manifest


def analyze_hot_kernels(index: ProjectIndex) -> list[Diagnostic]:
    diagnostics: list[Diagnostic] = []
    kernels = find_kernels(index)

    # HOT005: two-sided manifest check.  The manifest binds to its own
    # package; an index over another package (test corpora) is checked
    # purely marker-vs-marker, so corpora don't inherit repro's manifest.
    manifest = {
        qualname: description
        for qualname, description in HOT_KERNELS.items()
        if qualname.split(".")[0] == index.package
    }
    for qualname in sorted(manifest):
        if qualname in kernels:
            continue
        module_name = _owning_module(index, qualname)
        module = index.modules.get(module_name)
        diagnostics.append(
            Diagnostic(
                path=module.path if module is not None else "<manifest>",
                line=1,
                col=0,
                code="HOT005",
                message=(
                    f"manifest kernel {qualname} is not marked with "
                    f"'{MARKER}' on its def line (or does not exist); the "
                    "declared inventory and the marked set must agree"
                ),
            )
        )
    if manifest or index.package == "repro":
        for qualname, fn in sorted(kernels.items()):
            if qualname not in manifest:
                module = index.modules[fn.module]
                diagnostics.append(
                    Diagnostic(
                        path=module.path,
                        line=fn.lineno,
                        col=0,
                        code="HOT005",
                        message=(
                            f"{qualname} is marked '{MARKER}' but absent from "
                            "the HOT_KERNELS manifest "
                            "(repro.devtools.analysis.hotpath); declare it "
                            "there so the compiled-core inventory stays "
                            "reviewed"
                        ),
                    )
                )

    # HOT006: two-sided native-mirror check.  Manifest entries must be
    # marked; marked functions must be in the manifest.  Unlike HOT005,
    # the marked-without-manifest direction is not gated on a non-empty
    # manifest: a native marker claims a C twin exists, and an
    # unregistered twin is a violation in any package.
    native_manifest = _native_manifest(index)
    native_marked = find_native_kernels(index)
    for qualname in sorted(native_manifest):
        if qualname.split(".")[0] != index.package:
            continue
        if qualname in native_marked:
            continue
        module_name = _owning_module(index, qualname)
        module = index.modules.get(module_name)
        diagnostics.append(
            Diagnostic(
                path=module.path if module is not None else "<manifest>",
                line=1,
                col=0,
                code="HOT006",
                message=(
                    f"NATIVE_KERNELS entry {qualname} (kind "
                    f"'{native_manifest[qualname]}') is not marked with "
                    f"'{NATIVE_MARKER}' on its def line (or does not "
                    "exist); the registered C mirrors and the marked set "
                    "must agree"
                ),
            )
        )
    for qualname, fn in sorted(native_marked.items()):
        if qualname in native_manifest:
            continue
        module = index.modules[fn.module]
        diagnostics.append(
            Diagnostic(
                path=module.path,
                line=fn.lineno,
                col=0,
                code="HOT006",
                message=(
                    f"{qualname} is marked '{NATIVE_MARKER}' but absent "
                    "from the NATIVE_KERNELS manifest; a native marker "
                    "claims a registered C twin — declare the kind tag "
                    "or drop the marker"
                ),
            )
        )

    for qualname in sorted(kernels):
        fn = kernels[qualname]
        module = index.modules[fn.module]
        diagnostics.extend(_check_kernel(module, fn))
    return diagnostics


def _owning_module(index: ProjectIndex, qualname: str) -> str:
    parts = qualname.split(".")
    for cut in range(len(parts) - 1, 0, -1):
        candidate = ".".join(parts[:cut])
        if candidate in index.modules:
            return candidate
    return ""


def _check_kernel(module: ModuleInfo, fn: FunctionInfo) -> list[Diagnostic]:
    diagnostics: list[Diagnostic] = []
    node = fn.node

    def report(at: ast.AST, code: str, message: str) -> None:
        diagnostics.append(
            Diagnostic(
                path=module.path,
                line=getattr(at, "lineno", fn.lineno),
                col=getattr(at, "col_offset", 0),
                code=code,
                message=f"hot kernel {fn.qualname.split('.')[-1]}: {message}",
                end_line=getattr(at, "end_lineno", 0) or 0,
            )
        )

    # HOT001: signature
    if fn.has_kwargs:
        report(
            node, "HOT001",
            "**kwargs parameter defeats compiled calling conventions",
        )

    loop_depth = 0

    def walk(current: ast.AST, in_loop: bool) -> None:
        for child in ast.iter_child_nodes(current):
            child_in_loop = in_loop
            if isinstance(child, (ast.For, ast.AsyncFor, ast.While)):
                child_in_loop = True
            if isinstance(child, ast.Call):
                func = child.func
                name = func.id if isinstance(func, ast.Name) else None
                if name in _BANNED_CALLS:
                    report(
                        child, "HOT001",
                        f"{name}() is outside the compiled subset",
                    )
                if in_loop and name in _ALLOC_CALLS:
                    report(
                        child, "HOT003",
                        f"{name}() allocates inside a kernel loop; hoist it "
                        "or restructure the loop to reuse storage",
                    )
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                captured = _captured_names(child, node)
                if captured:
                    names = ", ".join(sorted(captured)[:4])
                    kind = "lambda" if isinstance(child, ast.Lambda) else "nested def"
                    report(
                        child, "HOT002",
                        f"{kind} captures enclosing state ({names}); closures "
                        "force cell variables the compiled backend cannot "
                        "unbox",
                    )
                continue  # nested scopes are not part of this kernel's body
            if in_loop and isinstance(
                child, (ast.ListComp, ast.SetComp, ast.DictComp)
            ):
                kind = type(child).__name__
                report(
                    child, "HOT003",
                    f"{kind} allocates inside a kernel loop; hoist it or "
                    "restructure the loop to reuse storage",
                )
            if in_loop and isinstance(child, (ast.List, ast.Set, ast.Dict)):
                report(
                    child, "HOT003",
                    f"{type(child).__name__} display allocates inside a "
                    "kernel loop (tuples are the allowed entry shape)",
                )
            if isinstance(child, ast.Constant) and isinstance(child.value, float):
                report(
                    child, "HOT004",
                    f"float literal {child.value!r} in a hot kernel; cycle "
                    "arithmetic must stay integral",
                )
            walk(child, child_in_loop)

    walk(node, loop_depth > 0)

    # HOT004: timestamp-like parameters need an explicit int annotation
    for arg in node.args.posonlyargs + node.args.args + node.args.kwonlyargs:
        if arg.arg == "self" or not _is_timestamp_param(arg.arg):
            continue
        annotation = fn.annotations.get(arg.arg)
        if annotation != "int":
            report(
                arg, "HOT004",
                f"timestamp parameter {arg.arg!r} must be annotated 'int' "
                f"(found {annotation or 'no annotation'}); the compiled "
                "backend needs provably integral cycle arithmetic",
            )
    return diagnostics


def _captured_names(
    nested: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda,
    outer: ast.FunctionDef | ast.AsyncFunctionDef,
) -> set[str]:
    """Names the nested scope reads from the enclosing function."""
    own: set[str] = set()
    args = nested.args
    for arg in args.posonlyargs + args.args + args.kwonlyargs:
        own.add(arg.arg)
    if args.vararg is not None:
        own.add(args.vararg.arg)
    if args.kwarg is not None:
        own.add(args.kwarg.arg)
    body = nested.body if isinstance(nested.body, list) else [nested.body]
    loads: set[str] = set()
    for stmt in body:
        for sub in ast.walk(stmt):
            if isinstance(sub, ast.Name):
                if isinstance(sub.ctx, ast.Store):
                    own.add(sub.id)
                elif isinstance(sub.ctx, ast.Load):
                    loads.add(sub.id)
    outer_locals: set[str] = set()
    outer_args = outer.args
    for arg in outer_args.posonlyargs + outer_args.args + outer_args.kwonlyargs:
        outer_locals.add(arg.arg)
    for sub in ast.walk(outer):
        if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Store):
            outer_locals.add(sub.id)
    return (loads - own) & outer_locals


def _iter_functions(module: ModuleInfo):
    for fn in module.functions.values():
        yield fn
    for cls in module.classes.values():
        yield from cls.methods.values()
