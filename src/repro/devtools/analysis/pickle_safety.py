"""CKPT rule family: static pickle-safety of the checkpointed object graph.

``runner/checkpoint.py`` pickles the whole :class:`System` between the
warm-up boundary and forked sweep runs.  A single lambda, generator, or
open OS handle anywhere in that object graph turns a checkpoint into a
runtime ``PicklingError`` — typically hours into a sweep.  This pass
walks the *statically inferred* field graph instead, starting from every
class named ``System`` in the analyzed package and following field type
references breadth-first through containers and nested classes.

Rules:

========  ==============================================================
CKPT001   a reachable field holds an OS-backed resource (open file
          handle, lock/thread/socket/module/weakref) — these types
          either refuse to pickle or silently restore dead.
CKPT002   a reachable field is bound to a pickle-hostile callable
          *literal* (lambda, nested ``def``, generator expression).
          ``Callable``-annotated fields are deliberately exempt: bound
          methods of picklable objects round-trip fine, and the symbol
          table maps ``Callable`` annotations to ``?`` for that reason.
========  ==============================================================

Unknown types (``?``) are skipped, never flagged — inference gaps must
not produce false alarms.
"""

from __future__ import annotations

from collections import deque

from repro.devtools.analysis.symbols import (
    CALLABLE_LITERALS,
    RESOURCE_TYPES,
    ProjectIndex,
    container_parts,
)
from repro.devtools.lint import Diagnostic

__all__ = ["CHECKPOINT_ROOTS", "analyze_pickle_safety"]

#: Class *names* treated as checkpoint roots.  Matching by name (not
#: qualname) keeps the rule portable to the test corpus packages.
CHECKPOINT_ROOTS = ("System",)

_HAZARD_MESSAGES = {
    "filehandle": "an open file handle",
    "lock": "a threading synchronization primitive",
    "thread": "a live thread/process object",
    "socket": "a socket",
    "module": "a module object",
    "weakref": "a weak reference",
    "lambda": "a lambda literal",
    "function": "a nested function definition",
    "generator": "a generator",
}


def analyze_pickle_safety(index: ProjectIndex) -> list[Diagnostic]:
    diagnostics: list[Diagnostic] = []
    seen: set[tuple[str, str, str]] = set()  # (class, attr, hazard) dedupe
    roots = [
        info
        for info in index.classes.values()
        if info.name in CHECKPOINT_ROOTS
    ]
    for root in sorted(roots, key=lambda info: info.qualname):
        _walk_from(index, root.qualname, diagnostics, seen)
    diagnostics.sort(key=lambda d: (d.path, d.line, d.col, d.code))
    return diagnostics


def _walk_from(
    index: ProjectIndex,
    root_qualname: str,
    diagnostics: list[Diagnostic],
    seen: set[tuple[str, str, str]],
) -> None:
    visited: set[str] = {root_qualname}
    # queue entries: (class qualname, human-readable access path to it)
    queue: deque[tuple[str, str]] = deque()
    root_name = root_qualname.split(".")[-1]
    queue.append((root_qualname, root_name))
    while queue:
        class_qualname, access_path = queue.popleft()
        info = index.classes.get(class_qualname)
        if info is None:
            continue
        module = index.modules.get(info.module)
        path = module.path if module is not None else "<unknown>"
        for attr in sorted(info.fields):
            slot = info.fields[attr]
            field_path = f"{access_path}.{attr}"
            for hazard in _hazards(slot.type_ref):
                key = (class_qualname, attr, hazard)
                if key in seen:
                    continue
                seen.add(key)
                code = "CKPT002" if hazard in CALLABLE_LITERALS else "CKPT001"
                diagnostics.append(
                    Diagnostic(
                        path=path,
                        line=slot.lineno,
                        col=0,
                        code=code,
                        message=(
                            f"checkpoint-reachable field {field_path} holds "
                            f"{_HAZARD_MESSAGES[hazard]} (bound in "
                            f"{info.name}.{slot.method}); the System object "
                            "graph must stay picklable for warm-start forks"
                        ),
                        end_line=slot.end_lineno,
                    )
                )
            for nested in _nested_classes(index, slot.type_ref):
                if nested not in visited:
                    visited.add(nested)
                    queue.append((nested, field_path))


def _hazards(type_ref: str):
    """Hazard tokens present anywhere in a type reference."""
    for ref in _flatten(type_ref):
        if ref in RESOURCE_TYPES or ref in CALLABLE_LITERALS:
            yield ref


def _nested_classes(index: ProjectIndex, type_ref: str):
    """Indexed class qualnames referenced anywhere in a type reference."""
    for ref in _flatten(type_ref):
        if ref in index.classes:
            yield ref


def _flatten(type_ref: str):
    """Yield every atomic type token in a possibly-nested reference."""
    parts = container_parts(type_ref)
    if parts is None:
        yield type_ref
        return
    for arg in parts[1]:
        yield from _flatten(arg)
