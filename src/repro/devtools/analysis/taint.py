"""Cross-module determinism taint analysis (DET1xx family).

The per-file rules answer "is ``time.time`` called inside a timed
layer?".  This pass answers the whole-program question: **can a
nondeterministic value reach the event queue or a seed derivation via
any call path?**  A helper in ``analysis/`` that returns
``time.perf_counter()`` is harmless on its own — until simulation code
posts the result as an event timestamp two calls later.

Mechanics: every indexed function gets a summary — which taint labels
its return value carries, and which of its parameters flow into a sink
(directly or through callees).  Summaries propagate over the call graph
to a fixed point; diagnostics are emitted at the callsite where a
tainted value finally meets a sink, with the call path in the message.

Rules:

========  ==============================================================
DET101    a nondeterministic value (wall clock, ambient RNG, builtin
          ``hash()``/``id()``, OS entropy) can reach an event-queue
          timestamp (``post``/``post_at``/``post_chain_at``/
          ``schedule``/``schedule_at``/``run_until``).
DET102    a nondeterministic value can reach a seed derivation
          (``SeedSequence``/``PCG64``/``default_rng`` or any ``seed=``
          argument).
========  ==============================================================
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.devtools.analysis.callgraph import local_type_env, resolve_call
from repro.devtools.analysis.symbols import FunctionInfo, ModuleInfo, ProjectIndex
from repro.devtools.lint import Diagnostic

__all__ = ["analyze_taint"]

#: label -> shortest call chain that produced it
Taint = dict[tuple[str, object], tuple[str, ...]]

_WALLCLOCK = {
    "time", "time_ns", "perf_counter", "perf_counter_ns", "monotonic",
    "monotonic_ns", "process_time", "process_time_ns", "clock_gettime",
}
_DATETIME = {"now", "utcnow", "today"}
_TIME_SINKS = {
    "post", "post_at", "post_chain_at", "schedule", "schedule_at", "run_until",
}
_SEED_CONSTRUCTORS = {"SeedSequence", "PCG64", "Philox", "MT19937", "default_rng"}
_MAX_CHAIN = 6
_MAX_PASSES = 10


def _source_of(external: str | None) -> str | None:
    """Human-readable source description if this external call is one."""
    if external is None:
        return None
    if external in ("hash", "id"):
        return f"builtin {external}()"
    parts = external.split(".")
    if parts[0] == "time" and parts[-1] in _WALLCLOCK:
        return f"wall clock time.{parts[-1]}()"
    if len(parts) >= 2 and parts[-2] in ("datetime", "date") and parts[-1] in _DATETIME:
        return f"wall clock {parts[-2]}.{parts[-1]}()"
    if parts[0] == "random" and len(parts) > 1:
        return f"ambient random.{parts[-1]}()"
    if parts[0] == "numpy" and len(parts) >= 3 and parts[1] == "random":
        fn = parts[-1]
        if fn[:1].islower() and fn not in ("default_rng",):
            return f"ambient numpy.random.{fn}()"
        return None
    if external == "os.urandom":
        return "os.urandom()"
    if parts[0] == "uuid" and parts[-1] in ("uuid1", "uuid4"):
        return f"uuid.{parts[-1]}()"
    if parts[0] == "secrets":
        return f"secrets.{parts[-1]}()"
    return None


@dataclass
class _Summary:
    returns: Taint = field(default_factory=dict)
    # param index -> {(code, sink description): chain}
    param_sinks: dict[int, dict[tuple[str, str], tuple[str, ...]]] = field(
        default_factory=dict
    )

    def snapshot(self) -> tuple:
        return (
            tuple(sorted(self.returns)),
            tuple(
                (index, tuple(sorted(sinks)))
                for index, sinks in sorted(self.param_sinks.items())
            ),
        )


def _merge(into: Taint, labels: Taint) -> None:
    for label, chain in labels.items():
        existing = into.get(label)
        if existing is None or len(chain) < len(existing):
            into[label] = chain


def _extended(chain: tuple[str, ...], hop: str) -> tuple[str, ...]:
    if len(chain) >= _MAX_CHAIN:
        return chain
    return (hop,) + chain


class _FunctionPass(ast.NodeVisitor):
    """One flow pass over a function body, in statement order."""

    def __init__(
        self,
        index: ProjectIndex,
        module: ModuleInfo,
        fn: FunctionInfo,
        summaries: dict[str, _Summary],
        emit,
    ) -> None:
        self.index = index
        self.module = module
        self.fn = fn
        self.summaries = summaries
        self.emit = emit
        self.env: dict[str, Taint] = {
            name: {("param", position): ()}
            for position, name in enumerate(fn.params)
        }
        self.type_env = local_type_env(index, module, fn)
        self.summary = _Summary()

    # -- expression evaluation -----------------------------------------
    def eval(self, node: ast.expr | None) -> Taint:
        if node is None:
            return {}
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.Name):
            return dict(self.env.get(node.id, ()))
        if isinstance(node, (ast.BinOp,)):
            taint: Taint = {}
            _merge(taint, self.eval(node.left))
            _merge(taint, self.eval(node.right))
            return taint
        if isinstance(node, ast.UnaryOp):
            return self.eval(node.operand)
        if isinstance(node, ast.BoolOp):
            taint = {}
            for value in node.values:
                _merge(taint, self.eval(value))
            return taint
        if isinstance(node, ast.IfExp):
            taint = {}
            _merge(taint, self.eval(node.body))
            _merge(taint, self.eval(node.orelse))
            return taint
        if isinstance(node, (ast.Attribute, ast.Subscript, ast.Starred)):
            return self.eval(node.value)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            taint = {}
            for elt in node.elts:
                _merge(taint, self.eval(elt))
            return taint
        if isinstance(node, ast.NamedExpr):
            taint = self.eval(node.value)
            if isinstance(node.target, ast.Name):
                self.env[node.target.id] = dict(taint)
            return taint
        return {}

    def _eval_call(self, node: ast.Call) -> Taint:
        site = resolve_call(self.index, self.module, node, self.type_env)
        arg_taints = [self.eval(arg) for arg in node.args]
        kw_taints = {kw.arg: self.eval(kw.value) for kw in node.keywords}
        self._check_sinks(node, arg_taints, kw_taints)

        result: Taint = {}
        source = _source_of(site.external)
        if source is not None:
            result[("src", source)] = ()
            return result

        if site.callee is None:
            # Unresolved/external call (``int(x)``, ``min(a, b)``, an
            # unknown receiver): conservatively pass argument taint
            # through — a wrapper must not launder a tainted value.
            for taint in arg_taints:
                _merge(result, taint)
            for taint in kw_taints.values():
                _merge(result, taint)
            return result

        if site.callee is not None:
            callee_summary = self.summaries.get(site.callee)
            if callee_summary is not None:
                callee_fn = self.index.functions.get(site.callee)
                offset = 1 if (callee_fn is not None and callee_fn.is_method
                               and callee_fn.params[:1] == ("self",)) else 0
                # return-value labels flow out of the call
                for label, chain in callee_summary.returns.items():
                    kind, payload = label
                    if kind == "src":
                        result[label] = _extended(chain, site.callee)
                    elif kind == "param":
                        position = payload - offset
                        if 0 <= position < len(arg_taints):
                            for inner, inner_chain in arg_taints[position].items():
                                _merge(result, {inner: inner_chain})
                        elif callee_fn is not None:
                            name = (
                                callee_fn.params[payload]
                                if payload < len(callee_fn.params)
                                else None
                            )
                            if name is not None and name in kw_taints:
                                _merge(result, kw_taints[name])
                # tainted arguments meeting sinks inside the callee
                for position, sinks in callee_summary.param_sinks.items():
                    arg_taint = self._arg_taint(
                        callee_fn, position, offset, arg_taints, kw_taints
                    )
                    if not arg_taint:
                        continue
                    for (code, sink_desc), chain in sinks.items():
                        via = _extended(chain, site.callee)
                        for label, label_chain in arg_taint.items():
                            kind, payload = label
                            if kind == "src":
                                self.emit(
                                    self.fn, node, code, payload, sink_desc,
                                    label_chain, via,
                                )
                            else:
                                slot = self.summary.param_sinks.setdefault(
                                    payload, {}
                                )
                                key = (code, sink_desc)
                                if key not in slot or len(via) < len(slot[key]):
                                    slot[key] = via
        return result

    @staticmethod
    def _arg_taint(callee_fn, position, offset, arg_taints, kw_taints) -> Taint:
        call_position = position - offset
        if 0 <= call_position < len(arg_taints):
            return arg_taints[call_position]
        if callee_fn is not None and position < len(callee_fn.params):
            return kw_taints.get(callee_fn.params[position], {})
        return {}

    # -- sinks ---------------------------------------------------------
    def _check_sinks(
        self,
        node: ast.Call,
        arg_taints: list[Taint],
        kw_taints: dict[str | None, Taint],
    ) -> None:
        func = node.func
        attr = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None
        )
        if attr is None:
            return
        checks: list[tuple[Taint, str, str]] = []
        if isinstance(func, ast.Attribute) and attr in _TIME_SINKS:
            sink = f"{attr}() timestamp"
            if arg_taints:
                checks.append((arg_taints[0], "DET101", sink))
            if attr == "post_chain_at" and len(arg_taints) > 3:
                checks.append((arg_taints[3], "DET101", f"{attr}() link delay"))
            for kw_name in ("when", "delay", "deadline"):
                if kw_name in kw_taints:
                    checks.append((kw_taints[kw_name], "DET101", sink))
        if attr in _SEED_CONSTRUCTORS:
            if arg_taints:
                checks.append((arg_taints[0], "DET102", f"{attr}() seed"))
        for kw_name in ("seed", "entropy"):
            if kw_name in kw_taints:
                checks.append(
                    (kw_taints[kw_name], "DET102", f"{attr}({kw_name}=...)")
                )
        for taint, code, sink_desc in checks:
            for label, chain in taint.items():
                kind, payload = label
                if kind == "src":
                    self.emit(self.fn, node, code, payload, sink_desc, chain, ())
                else:
                    slot = self.summary.param_sinks.setdefault(payload, {})
                    key = (code, sink_desc)
                    if key not in slot or len(chain) < len(slot[key]):
                        slot[key] = chain

    # -- statements ----------------------------------------------------
    def run(self) -> _Summary:
        if self.fn.node is not None:
            self._block(self.fn.node.body)
        return self.summary

    def _block(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            self._statement(stmt)

    def _statement(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            taint = self.eval(stmt.value)
            for target in stmt.targets:
                self._bind(target, taint)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._bind(stmt.target, self.eval(stmt.value))
        elif isinstance(stmt, ast.AugAssign):
            taint = self.eval(stmt.value)
            if isinstance(stmt.target, ast.Name):
                merged = dict(self.env.get(stmt.target.id, ()))
                _merge(merged, taint)
                self.env[stmt.target.id] = merged
        elif isinstance(stmt, ast.Return):
            _merge(self.summary.returns, self.eval(stmt.value))
        elif isinstance(stmt, ast.Expr):
            self.eval(stmt.value)
        elif isinstance(stmt, (ast.If,)):
            self.eval(stmt.test)
            self._block(stmt.body)
            self._block(stmt.orelse)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._bind(stmt.target, self.eval(stmt.iter))
            self._block(stmt.body)
            self._block(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self.eval(stmt.test)
            self._block(stmt.body)
            self._block(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                taint = self.eval(item.context_expr)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, taint)
            self._block(stmt.body)
        elif isinstance(stmt, ast.Try):
            self._block(stmt.body)
            for handler in stmt.handlers:
                self._block(handler.body)
            self._block(stmt.orelse)
            self._block(stmt.finalbody)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            pass  # nested scopes get their own summaries
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self.eval(stmt.exc)
        elif isinstance(stmt, (ast.Assert,)):
            self.eval(stmt.test)

    def _bind(self, target: ast.expr, taint: Taint) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = dict(taint)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind(elt, taint)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, taint)
        # attribute/subscript stores are dropped (field taint not tracked)


def analyze_taint(index: ProjectIndex) -> list[Diagnostic]:
    """Run the DET1xx fixed-point pass over the whole index."""
    functions: list[tuple[ModuleInfo, FunctionInfo]] = []
    for module in index.modules.values():
        for fn in module.functions.values():
            functions.append((module, fn))
        for cls in module.classes.values():
            for fn in cls.methods.values():
                functions.append((module, fn))

    summaries: dict[str, _Summary] = {
        fn.qualname: _Summary() for _, fn in functions
    }
    diagnostics: dict[tuple, Diagnostic] = {}

    def emit(fn, node, code, source, sink_desc, source_chain, sink_chain):
        module = index.modules[fn.module]
        hops = [hop for hop in tuple(sink_chain) + tuple(source_chain)]
        path = ""
        if hops:
            shown = " -> ".join(_short(hop) for hop in hops[:_MAX_CHAIN])
            path = f" (call path: {shown})"
        verb = (
            "can reach the event queue as"
            if code == "DET101"
            else "can reach seed derivation"
        )
        message = f"{source} {verb} {sink_desc}{path}"
        key = (module.path, node.lineno, node.col_offset, code, message)
        if key not in diagnostics:
            diagnostics[key] = Diagnostic(
                path=module.path,
                line=node.lineno,
                col=node.col_offset,
                code=code,
                message=message,
                end_line=node.end_lineno or node.lineno,
            )

    for _ in range(_MAX_PASSES):
        diagnostics.clear()
        changed = False
        for module, fn in functions:
            before = summaries[fn.qualname].snapshot()
            pass_ = _FunctionPass(index, module, fn, summaries, emit)
            summary = pass_.run()
            summaries[fn.qualname] = summary
            if summary.snapshot() != before:
                changed = True
        if not changed:
            break
    return sorted(
        diagnostics.values(), key=lambda d: (d.path, d.line, d.col, d.code)
    )


def _short(qualname: str) -> str:
    """Trim the package prefix so call paths stay readable."""
    parts = qualname.split(".")
    return ".".join(parts[-2:]) if len(parts) > 2 else qualname
