"""Fingerprint-keyed disk cache for whole-program analysis results.

The whole-program pass is a function of the package source tree and
nothing else, so its output can be keyed by the same source fingerprint
the runner's result cache uses (:func:`repro.runner.fingerprint.
source_fingerprint`): any source edit anywhere in the package
invalidates the entry, and an unchanged tree hits the cache without
re-parsing a single file.

Entries are JSON, not pickle — PERF003 confines pickle to
``runner/checkpoint.py``, and the devtools hold themselves to the rules
they enforce.  Layout mirrors the runner caches: one
``<fingerprint>.json`` per entry under ``.repro-cache/analysis/``.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.devtools.lint import Diagnostic

__all__ = [
    "DEFAULT_CACHE_DIR",
    "diagnostics_from_payload",
    "diagnostics_to_payload",
    "load_analysis",
    "store_analysis",
]

DEFAULT_CACHE_DIR = ".repro-cache/analysis"

#: Bump when the cached payload shape or any rule's output changes so
#: stale entries from older analyzer versions never replay.
_SCHEMA_VERSION = 1


def diagnostics_to_payload(diagnostics: list[Diagnostic]) -> list[dict]:
    return [
        {
            "path": d.path,
            "line": d.line,
            "col": d.col,
            "code": d.code,
            "message": d.message,
            "end_line": d.end_line,
        }
        for d in diagnostics
    ]


def diagnostics_from_payload(payload: list[dict]) -> list[Diagnostic]:
    return [
        Diagnostic(
            path=entry["path"],
            line=entry["line"],
            col=entry["col"],
            code=entry["code"],
            message=entry["message"],
            end_line=entry.get("end_line", 0),
        )
        for entry in payload
    ]


def _entry_path(cache_dir: Path | str, fingerprint: str) -> Path:
    return Path(cache_dir) / f"{fingerprint}.json"


def load_analysis(
    cache_dir: Path | str, fingerprint: str
) -> tuple[list[Diagnostic], dict] | None:
    """Cached ``(diagnostics, symtab summary)`` for a fingerprint, or None."""
    path = _entry_path(cache_dir, fingerprint)
    try:
        raw = path.read_text(encoding="utf-8")
    except OSError:
        return None
    try:
        entry = json.loads(raw)
    except json.JSONDecodeError:
        return None
    if entry.get("schema") != _SCHEMA_VERSION:
        return None
    if entry.get("fingerprint") != fingerprint:
        return None
    try:
        diagnostics = diagnostics_from_payload(entry["diagnostics"])
    except (KeyError, TypeError):
        return None
    return diagnostics, entry.get("symbols", {})


def store_analysis(
    cache_dir: Path | str,
    fingerprint: str,
    diagnostics: list[Diagnostic],
    symbols: dict,
) -> Path:
    """Write one cache entry; returns the entry path."""
    directory = Path(cache_dir)
    directory.mkdir(parents=True, exist_ok=True)
    path = _entry_path(directory, fingerprint)
    entry = {
        "schema": _SCHEMA_VERSION,
        "fingerprint": fingerprint,
        "diagnostics": diagnostics_to_payload(diagnostics),
        "symbols": symbols,
    }
    tmp = path.with_suffix(".json.tmp")
    tmp.write_text(json.dumps(entry, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    tmp.replace(path)
    return path
