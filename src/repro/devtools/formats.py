"""Diagnostic output formats: text, JSON, and SARIF 2.1.0.

JSON output is byte-stable for a given diagnostic list (sorted keys,
fixed indentation) so the golden corpus tests can compare it literally.
SARIF targets GitHub code scanning: one run, one rule per distinct
code, one result per finding.
"""

from __future__ import annotations

import json

from repro.devtools.lint import Diagnostic

__all__ = ["render", "render_json", "render_sarif", "render_text"]

_SARIF_VERSION = "2.1.0"
_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def render(diagnostics: list[Diagnostic], fmt: str) -> str:
    if fmt == "json":
        return render_json(diagnostics)
    if fmt == "sarif":
        return render_sarif(diagnostics)
    return render_text(diagnostics)


def render_text(diagnostics: list[Diagnostic]) -> str:
    return "\n".join(diag.format() for diag in diagnostics)


def _normalize(path: str) -> str:
    return path.replace("\\", "/").lstrip("./")


def render_json(diagnostics: list[Diagnostic]) -> str:
    payload = [
        {
            "path": _normalize(diag.path),
            "line": diag.line,
            "col": diag.col,
            "code": diag.code,
            "message": diag.message,
        }
        for diag in diagnostics
    ]
    return json.dumps(payload, indent=2, sort_keys=True)


def _rule_metadata(code: str) -> dict:
    from repro.devtools.analysis import WHOLE_PROGRAM_RULES
    from repro.devtools.lint import RULES

    if code in RULES:
        return {"id": code, "shortDescription": {"text": RULES[code].summary}}
    if code in WHOLE_PROGRAM_RULES:
        summary, _family = WHOLE_PROGRAM_RULES[code]
        return {"id": code, "shortDescription": {"text": summary}}
    return {"id": code, "shortDescription": {"text": "diagnostic"}}


def render_sarif(diagnostics: list[Diagnostic]) -> str:
    codes = sorted({diag.code for diag in diagnostics})
    rules = [_rule_metadata(code) for code in codes]
    rule_index = {code: index for index, code in enumerate(codes)}
    results = [
        {
            "ruleId": diag.code,
            "ruleIndex": rule_index[diag.code],
            "level": "error" if diag.code == "E999" else "warning",
            "message": {"text": diag.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": _normalize(diag.path)},
                        "region": {
                            "startLine": max(diag.line, 1),
                            "startColumn": diag.col + 1,
                        },
                    }
                }
            ],
        }
        for diag in diagnostics
    ]
    document = {
        "$schema": _SARIF_SCHEMA,
        "version": _SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": "https://example.invalid/repro",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True)
