"""Autofixes for the mechanical lint rules.

Only rules whose fix is a pure, local text rewrite are autofixable:

* **DET004** — true division of a timestamp operand: rewrite ``/`` to
  ``//`` at the operator position.
* **DET005** — iterating a bare set literal/comprehension: wrap the
  iterable in ``sorted(...)``.

Fixes are position-matched against the diagnostics that *survive*
``# repro: noqa`` filtering, so a suppressed finding is never rewritten.
Edits apply bottom-up so earlier offsets stay valid.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

from repro.devtools.lint import (
    Diagnostic,
    _iter_python_files,
    lint_source,
)

__all__ = ["AUTOFIXES", "Edit", "fix_paths", "fix_source"]

#: Codes with an autofixer, for ``--list-rules``.
AUTOFIXES = ("DET004", "DET005")


@dataclass(frozen=True)
class Edit:
    """One text replacement: ``[start, end)`` offsets into the source."""

    start: int
    end: int
    replacement: str


def _line_offsets(source: str) -> list[int]:
    offsets = [0]
    for line in source.splitlines(keepends=True):
        offsets.append(offsets[-1] + len(line))
    return offsets


def _offset(offsets: list[int], line: int, col: int) -> int:
    return offsets[line - 1] + col


class _FixCollector(ast.NodeVisitor):
    """Locate fixable nodes by the (line, col) their rule reports."""

    def __init__(self, source: str) -> None:
        self.source = source
        self.offsets = _line_offsets(source)
        #: (code, line, col) -> Edit
        self.edits: dict[tuple[str, int, int], Edit] = {}

    # -- DET004: / -> // on timestamp numerators -----------------------
    def visit_BinOp(self, node: ast.BinOp) -> None:
        from repro.devtools.lint import NoFloatCycleArithmetic

        if (
            isinstance(node.op, ast.Div)
            and NoFloatCycleArithmetic._timestamp_in(node.left) is not None
        ):
            edit = self._division_edit(node)
            if edit is not None:
                self.edits[("DET004", node.lineno, node.col_offset)] = edit
        self.generic_visit(node)

    def _division_edit(self, node: ast.BinOp) -> Edit | None:
        left_end = _offset(
            self.offsets, node.left.end_lineno, node.left.end_col_offset
        )
        right_start = _offset(
            self.offsets, node.right.lineno, node.right.col_offset
        )
        between = self.source[left_end:right_start]
        slash = between.find("/")
        if slash == -1 or between.find("//") != -1:
            return None
        return Edit(start=left_end + slash, end=left_end + slash + 1, replacement="//")

    # -- DET005: wrap bare set iterables in sorted(...) ----------------
    def _wrap_iter(self, iterable: ast.expr) -> None:
        if isinstance(iterable, (ast.Set, ast.SetComp)):
            start = _offset(self.offsets, iterable.lineno, iterable.col_offset)
            end = _offset(
                self.offsets, iterable.end_lineno, iterable.end_col_offset
            )
            text = self.source[start:end]
            self.edits[("DET005", iterable.lineno, iterable.col_offset)] = Edit(
                start=start, end=end, replacement=f"sorted({text})"
            )

    def visit_For(self, node: ast.For) -> None:
        self._wrap_iter(node.iter)
        self.generic_visit(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._wrap_iter(node.iter)
        self.generic_visit(node)

    def _visit_comp(self, node: ast.AST) -> None:
        for gen in getattr(node, "generators", ()):
            self._wrap_iter(gen.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comp
    visit_SetComp = _visit_comp
    visit_DictComp = _visit_comp
    visit_GeneratorExp = _visit_comp


def fix_source(source: str, path: str = "<string>") -> tuple[str, int]:
    """Apply all autofixes to one buffer; returns ``(new_source, count)``."""
    diagnostics = [
        diag for diag in lint_source(source, path) if diag.code in AUTOFIXES
    ]
    if not diagnostics:
        return source, 0
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError:
        return source, 0
    collector = _FixCollector(source)
    collector.visit(tree)
    chosen: list[Edit] = []
    for diag in diagnostics:
        edit = collector.edits.get((diag.code, diag.line, diag.col))
        if edit is not None:
            chosen.append(edit)
    if not chosen:
        return source, 0
    # bottom-up, non-overlapping application
    chosen.sort(key=lambda e: e.start, reverse=True)
    applied = 0
    last_start = len(source) + 1
    for edit in chosen:
        if edit.end > last_start:
            continue  # overlaps an already-applied edit; next --fix run gets it
        source = source[: edit.start] + edit.replacement + source[edit.end :]
        last_start = edit.start
        applied += 1
    return source, applied


def fix_paths(paths: Iterable[Path | str]) -> list[tuple[str, int]]:
    """Autofix every file under ``paths``; returns per-file fix counts."""
    changed: list[tuple[str, int]] = []
    for path in _iter_python_files(paths):
        original = path.read_text(encoding="utf-8")
        fixed, count = fix_source(original, str(path))
        if count and fixed != original:
            path.write_text(fixed, encoding="utf-8")
            changed.append((str(path), count))
    return changed
