"""Workload generators: microbenchmarks, SPEC proxies, memcached proxy."""

from repro.workloads.base import Access, Workload
from repro.workloads.chaser import ChaserWorkload
from repro.workloads.memcached import MemcachedWorkload
from repro.workloads.periodic import PeriodicStreamWorkload
from repro.workloads.spec import SPEC_PROFILES, SpecProfile, SpecProxyWorkload, spec_workload
from repro.workloads.stream import StreamWorkload, l3_resident_stream

__all__ = [
    "Access", "ChaserWorkload", "MemcachedWorkload", "PeriodicStreamWorkload",
    "SPEC_PROFILES", "SpecProfile", "SpecProxyWorkload", "StreamWorkload",
    "Workload", "l3_resident_stream", "spec_workload",
]
