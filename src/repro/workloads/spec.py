"""Synthetic proxies for the SPEC CPU2006 workloads the paper evaluates.

We cannot execute SPEC binaries inside a pure-Python model, so each workload
is replaced by a parameterized generator whose memory behaviour matches the
qualitative characterization that matters to PABST (DESIGN.md §4):

* **memory-level parallelism** (``contexts``) — how many misses can overlap,
  which decides whether the workload is bandwidth- or latency-bound;
* **inter-miss compute** (``mean_gap``) — cycles of work between misses;
* **write fraction** — dirty-line production, hence writeback bandwidth;
* **address regularity** (``random_fraction``) — streaming vs pointer-heavy,
  which decides how schedulable the request stream is at the controller;
* **working set** — whether the L3 partition filters traffic.

The eight entries below are the subset the paper runs: workloads that can
saturate memory bandwidth when running on all cores (Section IV-A).
Parameters are hand-calibrated to the usual characterization of these
benchmarks (e.g. libquantum/lbm streaming, mcf irregular and latency-bound,
sphinx3/omnetpp low-MLP latency-sensitive).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.workloads.base import Access, Workload

__all__ = ["SPEC_PROFILES", "SpecProfile", "SpecProxyWorkload", "spec_workload"]


@dataclass(frozen=True, slots=True)
class SpecProfile:
    """Tunable knobs describing one SPEC proxy.

    ``phase_cycles``/``duty`` model the coarse program phases real SPEC
    workloads exhibit: for a ``duty`` fraction of each phase period the
    workload runs at its configured memory intensity, and for the rest it
    is compute-heavy (inter-miss gaps stretched by ``LOW_PHASE_GAP_FACTOR``).
    Phases are what make consolidation profitable for a work-conserving
    allocator (Fig. 11): classes rarely demand their full share at once.
    """

    name: str
    contexts: int
    mean_gap: float
    write_fraction: float
    random_fraction: float
    working_set_bytes: int
    instructions_per_access: int
    phase_cycles: int = 0
    duty: float = 1.0

    def __post_init__(self) -> None:
        if self.contexts <= 0:
            raise ValueError("contexts must be positive")
        if self.mean_gap < 0:
            raise ValueError("mean_gap must be non-negative")
        if not 0.0 <= self.write_fraction <= 1.0:
            raise ValueError("write_fraction must be in [0, 1]")
        if not 0.0 <= self.random_fraction <= 1.0:
            raise ValueError("random_fraction must be in [0, 1]")
        if self.working_set_bytes < 4096:
            raise ValueError("working_set_bytes too small")
        if self.phase_cycles < 0:
            raise ValueError("phase_cycles must be non-negative")
        if not 0.0 < self.duty <= 1.0:
            raise ValueError("duty must be in (0, 1]")


# Gap multiplier applied during the compute-heavy part of a phase period.
LOW_PHASE_GAP_FACTOR = 10

SPEC_PROFILES: dict[str, SpecProfile] = {
    # streaming FDTD stencil sweeps: high MLP, mild irregularity
    "GemsFDTD": SpecProfile(
        name="GemsFDTD", contexts=10, mean_gap=6, write_fraction=0.25,
        random_fraction=0.10, working_set_bytes=96 << 20, instructions_per_access=8,
        phase_cycles=40_000, duty=0.75,
    ),
    # lattice Boltzmann: streaming with heavy stores
    "lbm": SpecProfile(
        name="lbm", contexts=12, mean_gap=4, write_fraction=0.45,
        random_fraction=0.05, working_set_bytes=128 << 20, instructions_per_access=6,
        phase_cycles=30_000, duty=0.80,
    ),
    # pure streaming reads, the most bandwidth-bound of the set
    "libquantum": SpecProfile(
        name="libquantum", contexts=16, mean_gap=2, write_fraction=0.10,
        random_fraction=0.00, working_set_bytes=64 << 20, instructions_per_access=5,
        phase_cycles=50_000, duty=0.85,
    ),
    # pointer-heavy graph traversal: low MLP, random, hard to schedule
    "mcf": SpecProfile(
        name="mcf", contexts=5, mean_gap=8, write_fraction=0.15,
        random_fraction=0.90, working_set_bytes=192 << 20, instructions_per_access=6,
        phase_cycles=60_000, duty=0.70,
    ),
    # lattice QCD: strided sweeps with some indirection
    "milc": SpecProfile(
        name="milc", contexts=9, mean_gap=6, write_fraction=0.30,
        random_fraction=0.25, working_set_bytes=96 << 20, instructions_per_access=7,
        phase_cycles=40_000, duty=0.70,
    ),
    # discrete-event simulator: irregular heap walks, latency-sensitive
    "omnetpp": SpecProfile(
        name="omnetpp", contexts=3, mean_gap=14, write_fraction=0.20,
        random_fraction=0.80, working_set_bytes=48 << 20, instructions_per_access=10,
        phase_cycles=30_000, duty=0.60,
    ),
    # sparse LP solver: mixed streaming/indirect
    "soplex": SpecProfile(
        name="soplex", contexts=7, mean_gap=8, write_fraction=0.15,
        random_fraction=0.40, working_set_bytes=96 << 20, instructions_per_access=8,
        phase_cycles=40_000, duty=0.70,
    ),
    # speech recognition: low MLP, mostly reads, latency-sensitive
    "sphinx3": SpecProfile(
        name="sphinx3", contexts=3, mean_gap=10, write_fraction=0.05,
        random_fraction=0.50, working_set_bytes=32 << 20, instructions_per_access=12,
        phase_cycles=30_000, duty=0.65,
    ),
}


class SpecProxyWorkload(Workload):
    """Access-stream generator parameterized by a :class:`SpecProfile`."""

    def __init__(self, profile: SpecProfile) -> None:
        super().__init__()
        self.profile = profile
        self.name = f"spec.{profile.name}"
        self.contexts = profile.contexts
        self._lines = profile.working_set_bytes // 64
        self._cursor = 0
        self._phase_offset = 0

    def on_bind(self) -> None:
        # desynchronize phases across cores/instances
        if self.profile.phase_cycles > 0:
            self._phase_offset = int(self.rng.integers(self.profile.phase_cycles))

    def in_memory_phase(self, now: int) -> bool:
        """True while the workload runs at full memory intensity."""
        profile = self.profile
        if profile.phase_cycles <= 0:
            return True
        position = (now + self._phase_offset) % profile.phase_cycles
        return position < profile.duty * profile.phase_cycles

    def _sample_gap(self) -> int:
        mean = self.profile.mean_gap
        if not self.in_memory_phase(self.now):
            mean = max(1.0, mean) * LOW_PHASE_GAP_FACTOR
        if mean <= 0:
            return 0
        # geometric with the requested mean, shifted so gap 0 is possible
        return int(self.rng.geometric(1.0 / (mean + 1.0))) - 1

    def next_access(self, context: int) -> Access | None:
        profile = self.profile
        if profile.random_fraction > 0 and self.rng.random() < profile.random_fraction:
            line = int(self.rng.integers(self._lines))
        else:
            line = self._cursor % self._lines
            self._cursor += 1
        is_write = (
            profile.write_fraction > 0
            and self.rng.random() < profile.write_fraction
        )
        return Access(
            addr=self.base_addr + line * 64,
            is_write=is_write,
            gap=self._sample_gap(),
            instructions=profile.instructions_per_access,
        )


def spec_workload(name: str) -> SpecProxyWorkload:
    """Factory by benchmark name (the eight the paper evaluates)."""
    try:
        profile = SPEC_PROFILES[name]
    except KeyError:
        known = ", ".join(sorted(SPEC_PROFILES))
        raise KeyError(f"unknown SPEC workload {name!r}; known: {known}") from None
    return SpecProxyWorkload(profile)
