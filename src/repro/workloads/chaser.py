"""Pointer-chasing microbenchmark (paper Section IV-A).

``chaser`` performs a small number of independent random pointer chases.
Each chase is a dependent chain — the next address is known only when the
previous load returns — so the benchmark can sustain exactly ``chains``
concurrent memory requests and its achievable bandwidth is inversely
proportional to memory latency.  This is the workload on which source-only
regulation fails (Fig. 1c): throttling cannot *lower* its latency, so it can
never generate its allotted share.
"""

from __future__ import annotations

from repro.workloads.base import Access, Workload

__all__ = ["ChaserWorkload"]


class ChaserWorkload(Workload):
    """Independent random pointer chases (default four, as in the paper)."""

    def __init__(
        self,
        working_set_bytes: int = 256 << 20,
        chains: int = 4,
        gap: int = 0,
        instructions_per_access: int = 2,
        name: str = "chaser",
    ) -> None:
        super().__init__()
        if working_set_bytes < 4096:
            raise ValueError("working_set_bytes too small for a pointer chase")
        if chains <= 0:
            raise ValueError("chains must be positive")
        self.name = name
        self.contexts = chains
        self._working_set = working_set_bytes
        self._lines = working_set_bytes // 64
        self._gap = gap
        self._inst = instructions_per_access

    def next_access(self, context: int) -> Access | None:
        line = int(self.rng.integers(self._lines))
        return Access(
            addr=self.base_addr + line * 64,
            is_write=False,
            gap=self._gap,
            instructions=self._inst,
        )
