"""memcached server proxy (paper Fig. 9).

The paper runs a single memcached server thread and reports the
distribution of transaction service times when co-located with a streaming
aggressor.  We model the server as a closed-loop transaction workload: each
transaction is a short *dependent* chain of memory accesses (hash-bucket
walk, then the value read) with per-access compute, followed by client think
time.  Dependent chains make service time directly proportional to memory
latency, which is exactly the coupling Fig. 9 demonstrates PABST removing.

Service-time bookkeeping relies on a :class:`repro.cpu.model.Core` contract:
an access returned at time ``t`` with gap ``g`` issues at exactly ``t + g``,
so the transaction start (first access issue, i.e. after client think time)
is known when the access is generated.
"""

from __future__ import annotations

from repro.workloads.base import Access, Workload

__all__ = ["MemcachedWorkload"]


class MemcachedWorkload(Workload):
    """Closed-loop GET-transaction generator with service-time tracking.

    Attributes
    ----------
    service_times:
        Cycles from a transaction's first access issue until its last access
        completes (client think time excluded), for every transaction after
        the warm-up, in completion order.
    """

    def __init__(
        self,
        transactions: int | None = 1000,
        warmup_transactions: int = 100,
        hash_table_bytes: int = 16 << 20,
        value_region_bytes: int = 48 << 20,
        min_chain: int = 2,
        max_chain: int = 4,
        compute_per_access: int = 30,
        think_time: int = 200,
        instructions_per_access: int = 50,
        name: str = "memcached",
    ) -> None:
        super().__init__()
        if transactions is not None and transactions <= 0:
            raise ValueError("transactions must be positive or None")
        if warmup_transactions < 0:
            raise ValueError("warmup_transactions must be non-negative")
        if not 1 <= min_chain <= max_chain:
            raise ValueError("need 1 <= min_chain <= max_chain")
        self.name = name
        self.contexts = 1  # one server thread, as in the paper
        self._transactions = transactions
        self._warmup = warmup_transactions
        self._hash_lines = hash_table_bytes // 64
        self._value_lines = value_region_bytes // 64
        self._value_base = hash_table_bytes
        self._min_chain = min_chain
        self._max_chain = max_chain
        self._compute = compute_per_access
        self._think = think_time
        self._inst = instructions_per_access

        self.service_times: list[int] = []
        self.completed_transactions = 0
        self._txn_start = 0
        self._remaining_in_txn = 0

    def next_access(self, context: int) -> Access | None:
        if self._remaining_in_txn == 0:
            if (
                self._transactions is not None
                and self.completed_transactions
                >= self._warmup + self._transactions
            ):
                return None
            chain = int(self.rng.integers(self._min_chain, self._max_chain + 1))
            self._remaining_in_txn = chain + 1  # bucket walk + value read
            gap = self._think
            self._txn_start = self.now + gap  # issue time of the first access
        else:
            gap = self._compute

        self._remaining_in_txn -= 1
        if self._remaining_in_txn == 0:
            offset = self._value_base + int(self.rng.integers(self._value_lines)) * 64
        else:
            offset = int(self.rng.integers(self._hash_lines)) * 64
        return Access(
            addr=self.base_addr + offset,
            is_write=False,
            gap=gap,
            instructions=self._inst,
        )

    def on_complete(self, context: int, access: Access, now: int) -> None:
        if self._remaining_in_txn == 0:
            self.completed_transactions += 1
            if self.completed_transactions > self._warmup:
                self.service_times.append(now - self._txn_start)
