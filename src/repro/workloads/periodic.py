"""Phase-alternating streamer (paper Fig. 6).

The work-conservation experiment pairs a constant streamer with one that
cycles between a *memory-resident* phase (generates DDR traffic) and a
*cache-resident* phase (hits in its L3 partition, generating none).  PABST
must hand the idle phase's bandwidth to the constant streamer and claw it
back when the periodic streamer resumes.
"""

from __future__ import annotations

from repro.workloads.base import Access, Workload

__all__ = ["PeriodicStreamWorkload"]


class PeriodicStreamWorkload(Workload):
    """Streams through DDR for ``active_cycles``, then a small hot set.

    The phase is derived from the simulation clock, so the transitions are
    sharp and deterministic — matching the square-wave demand in Fig. 6.
    """

    def __init__(
        self,
        active_cycles: int = 50_000,
        idle_cycles: int = 50_000,
        working_set_bytes: int = 64 << 20,
        hot_set_bytes: int = 8 << 10,
        stride_bytes: int = 128,
        contexts: int = 16,
        instructions_per_access: int = 4,
        name: str = "periodic-stream",
    ) -> None:
        super().__init__()
        if active_cycles <= 0 or idle_cycles <= 0:
            raise ValueError("phase lengths must be positive")
        if hot_set_bytes <= 0 or working_set_bytes <= hot_set_bytes:
            raise ValueError("working set must exceed the hot set")
        self.name = name
        self.contexts = contexts
        self._active = active_cycles
        self._idle = idle_cycles
        self._period = active_cycles + idle_cycles
        self._working_set = working_set_bytes
        self._hot_set = hot_set_bytes
        self._stride = stride_bytes
        self._inst = instructions_per_access
        self._cursor = 0
        self._hot_cursor = 0

    def in_active_phase(self, now: int) -> bool:
        """True while the workload streams through memory."""
        return (now % self._period) < self._active

    def on_bind(self) -> None:
        # the streamed range starts above the hot set so cache-phase lines
        # are never evicted by the active phase
        self._stream_base = self._base_addr + self._hot_set
        # One reusable Access per context (see StreamWorkload.on_bind): the
        # core reads every field before requesting the next access.
        self._scratch = [
            Access(addr=0, is_write=False, gap=0, instructions=self._inst)
            for _ in range(self.contexts)
        ]

    def next_access(self, context: int) -> Access | None:
        access = self._scratch[context]
        if self._engine._now % self._period < self._active:
            # cursors stay reduced modulo their range: one compare per
            # access instead of a wide-int modulo
            cursor = self._cursor
            if cursor >= self._working_set:
                cursor %= self._working_set
            self._cursor = cursor + self._stride
            access.addr = self._stream_base + cursor
            access.gap = 0
        else:
            cursor = self._hot_cursor
            if cursor >= self._hot_set:
                cursor %= self._hot_set
            self._hot_cursor = cursor + 64
            access.addr = self._base_addr + cursor
            # cache hits return quickly; a small gap keeps the replay rate sane
            access.gap = 4
        return access
