"""Phase-alternating streamer (paper Fig. 6).

The work-conservation experiment pairs a constant streamer with one that
cycles between a *memory-resident* phase (generates DDR traffic) and a
*cache-resident* phase (hits in its L3 partition, generating none).  PABST
must hand the idle phase's bandwidth to the constant streamer and claw it
back when the periodic streamer resumes.
"""

from __future__ import annotations

from repro.workloads.base import Access, Workload

__all__ = ["PeriodicStreamWorkload"]


class PeriodicStreamWorkload(Workload):
    """Streams through DDR for ``active_cycles``, then a small hot set.

    The phase is derived from the simulation clock, so the transitions are
    sharp and deterministic — matching the square-wave demand in Fig. 6.
    """

    def __init__(
        self,
        active_cycles: int = 50_000,
        idle_cycles: int = 50_000,
        working_set_bytes: int = 64 << 20,
        hot_set_bytes: int = 8 << 10,
        stride_bytes: int = 128,
        contexts: int = 16,
        instructions_per_access: int = 4,
        name: str = "periodic-stream",
    ) -> None:
        super().__init__()
        if active_cycles <= 0 or idle_cycles <= 0:
            raise ValueError("phase lengths must be positive")
        if hot_set_bytes <= 0 or working_set_bytes <= hot_set_bytes:
            raise ValueError("working set must exceed the hot set")
        self.name = name
        self.contexts = contexts
        self._active = active_cycles
        self._idle = idle_cycles
        self._period = active_cycles + idle_cycles
        self._working_set = working_set_bytes
        self._hot_set = hot_set_bytes
        self._stride = stride_bytes
        self._inst = instructions_per_access
        self._cursor = 0
        self._hot_cursor = 0

    def in_active_phase(self, now: int) -> bool:
        """True while the workload streams through memory."""
        return (now % self._period) < self._active

    def next_access(self, context: int) -> Access | None:
        if self.in_active_phase(self.now):
            offset = self._cursor % self._working_set
            self._cursor += self._stride
            # skip the hot range so cache-phase lines are never evicted by us
            addr = self.base_addr + self._hot_set + offset
            gap = 0
        else:
            offset = self._hot_cursor % self._hot_set
            self._hot_cursor += 64
            addr = self.base_addr + offset
            # cache hits return quickly; a small gap keeps the replay rate sane
            gap = 4
        return Access(addr=addr, is_write=False, gap=gap, instructions=self._inst)
