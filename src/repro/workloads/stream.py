"""Streaming microbenchmarks (paper Section IV-A).

``stream`` walks an array at a fixed stride with fully independent accesses,
so its performance is limited only by available bandwidth.  Variants cover
the paper's read stream, write stream (Fig. 1/7 uses write streamers), and
the L3-resident stream used in the excess-distribution experiment (Fig. 8).
"""

from __future__ import annotations

from repro.workloads.base import Access, Workload

__all__ = ["StreamWorkload", "l3_resident_stream"]


class StreamWorkload(Workload):
    """Hand-optimized streaming kernel: independent strided accesses.

    Parameters
    ----------
    working_set_bytes:
        Size of the array streamed through (wraps around).  Choose it far
        above the class's L3 partition for a DDR stream, or below it for a
        cache-resident stream.
    stride_bytes:
        Distance between successive accesses; the paper's streamer uses a
        128-byte stride (two cache lines).
    write_fraction:
        Fraction of accesses that are stores (write-allocate; dirty lines
        produce writeback bandwidth on eviction).
    contexts:
        Number of independent access chains; streams use a high count so the
        MSHR file, not dependencies, is the limiter.
    gap:
        Compute cycles between accesses of one chain.
    """

    def __init__(
        self,
        working_set_bytes: int = 64 << 20,
        stride_bytes: int = 128,
        write_fraction: float = 0.0,
        contexts: int = 16,
        gap: int = 0,
        instructions_per_access: int = 4,
        start_offset_bytes: int = 0,
        name: str = "stream",
    ) -> None:
        super().__init__()
        if working_set_bytes <= 0:
            raise ValueError("working_set_bytes must be positive")
        if stride_bytes <= 0:
            raise ValueError("stride_bytes must be positive")
        if not 0.0 <= write_fraction <= 1.0:
            raise ValueError("write_fraction must be in [0, 1]")
        if contexts <= 0:
            raise ValueError("contexts must be positive")
        if start_offset_bytes < 0:
            raise ValueError("start_offset_bytes must be non-negative")
        self.name = name
        self.contexts = contexts
        self._working_set = working_set_bytes
        self._stride = stride_bytes
        self._write_fraction = write_fraction
        self._gap = gap
        self._inst = instructions_per_access
        self._offset = start_offset_bytes
        self._cursor = 0

    def on_bind(self) -> None:
        self._base = self._base_addr + self._offset
        # One reusable Access per context: a context has at most one access
        # in flight and the core reads every field before requesting the
        # next one, so mutating in place skips an allocation per access.
        self._scratch = [
            Access(
                addr=self._base,
                is_write=False,
                gap=self._gap,
                instructions=self._inst,
            )
            for _ in range(self.contexts)
        ]

    def next_access(self, context: int) -> Access | None:
        if self._rng is None:
            raise RuntimeError(f"workload {self.name!r} is not bound to a core")
        # the cursor is kept reduced modulo the working set, so the wrap
        # costs a compare per access instead of a wide-int modulo
        cursor = self._cursor
        if cursor >= self._working_set:
            cursor %= self._working_set
        self._cursor = cursor + self._stride
        access = self._scratch[context]
        access.addr = self._base + cursor
        if self._write_fraction > 0.0:
            access.is_write = self.rng.random() < self._write_fraction
        return access


def l3_resident_stream(
    partition_bytes: int,
    contexts: int = 8,
    name: str = "l3-stream",
) -> StreamWorkload:
    """A streamer whose working set fits in its L3 partition (Fig. 8).

    After one warm-up pass it stops generating memory traffic; the
    interesting question is where its unused bandwidth allocation goes.
    """
    if partition_bytes <= 0:
        raise ValueError("partition_bytes must be positive")
    return StreamWorkload(
        working_set_bytes=max(4096, partition_bytes // 2),
        stride_bytes=64,
        contexts=contexts,
        name=name,
    )
