"""Workload interface.

A workload is a pure generator of memory accesses plus compute gaps, driven
by a :class:`repro.cpu.model.Core`.  Concurrency is expressed through
*contexts*: independent dependent-chains, each of which blocks until its
outstanding access completes.  The context count is therefore the workload's
memory-level parallelism, which — together with the MSHR limit — determines
whether the workload is bandwidth-bound (many contexts, e.g. ``stream``) or
latency-bound (few contexts, e.g. ``chaser``).

This is the synthetic substitute for the paper's QEMU-driven CPU front-end;
see DESIGN.md §4 for why it preserves the behaviour PABST regulates.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:
    from repro.cpu.model import Core

__all__ = ["Access", "Workload"]

# Each core gets a disjoint 4 GiB address window so workloads never share
# data by accident; experiments that want sharing pass explicit bases.
CORE_ADDRESS_STRIDE = 1 << 32


class Access:
    """One memory operation a context performs.

    ``gap`` is compute time (cycles) the context spends before issuing;
    ``instructions`` is the retirement credit granted when it completes,
    which feeds the IPC used by weighted slowdown (Eq. 6).

    A hand-written ``__slots__`` class rather than a dataclass: one Access
    is created per access of every context, and the dataclass would add a
    ``__post_init__`` call frame to each construction.
    """

    __slots__ = ("addr", "is_write", "gap", "instructions")

    def __init__(
        self,
        addr: int,
        is_write: bool = False,
        gap: int = 0,
        instructions: int = 1,
    ) -> None:
        if addr < 0:
            raise ValueError("addr must be non-negative")
        if gap < 0:
            raise ValueError("gap must be non-negative")
        if instructions < 0:
            raise ValueError("instructions must be non-negative")
        self.addr = addr
        self.is_write = is_write
        self.gap = gap
        self.instructions = instructions

    def __repr__(self) -> str:
        return (
            f"Access(addr={self.addr:#x}, is_write={self.is_write}, "
            f"gap={self.gap}, instructions={self.instructions})"
        )


class Workload(ABC):
    """Generator of per-context access streams."""

    name: str = "workload"
    contexts: int = 1

    def __init__(self) -> None:
        self.core: "Core | None" = None
        self._rng: np.random.Generator | None = None
        self._base_addr = 0
        # bound at bind(): lets generators read the clock without the
        # workload.now -> core.now -> engine.now property chain
        self._engine = None

    # ------------------------------------------------------------------
    # binding
    # ------------------------------------------------------------------
    def bind(self, core: "Core") -> None:
        """Attach to the driving core; called once before simulation."""
        self.core = core
        self._rng = core.rng
        self._engine = core._engine
        self._base_addr = core.core_id * CORE_ADDRESS_STRIDE
        self.on_bind()

    def on_bind(self) -> None:
        """Hook for subclasses needing per-core initialization."""

    @property
    def rng(self) -> np.random.Generator:
        if self._rng is None:
            raise RuntimeError(f"workload {self.name!r} is not bound to a core")
        return self._rng

    @property
    def base_addr(self) -> int:
        return self._base_addr

    @property
    def now(self) -> int:
        if self.core is None:
            raise RuntimeError(f"workload {self.name!r} is not bound to a core")
        return self.core.now

    # ------------------------------------------------------------------
    # the generator interface
    # ------------------------------------------------------------------
    @abstractmethod
    def next_access(self, context: int) -> Access | None:
        """Produce the next access for ``context``; None retires the context."""

    def on_complete(self, context: int, access: Access, now: int) -> None:
        """Hook invoked when a context's access completes (service times)."""
