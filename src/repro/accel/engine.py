"""C-backed engine classes assembled around the compiled ``WheelCore``.

The compiled type owns exactly the state the dispatch loops touch — the
integer clock/counters as C ``long long`` fields and the wheel/overflow
containers as ordinary Python lists — and exposes every field under the
pure class's attribute names via member descriptors.  That makes the two
backends *attribute-compatible*: the pure scheduling entry points
(``schedule``/``post``/``post_chain_at``/...), the sanitizer's restore
audit, the shard reseeding hook, and the inlined wheel inserts in
``system.py``/``controller.py`` all run unchanged against either class.

Only the dispatch loops differ, so this module borrows the pure methods
wholesale instead of re-implementing them: the scheduling surface *is*
the reference code, executed over C-backed attributes.  ``run_until``
and ``run`` come from the extension.

Classes are built lazily (the extension module only exists once
:mod:`repro.accel` has loaded it) and cached process-wide.
"""

from __future__ import annotations

from repro.sim import engine as _pure

__all__ = ["c_engine_class", "c_wheel_class"]

_wheel_cls: type | None = None
_engine_cls: type | None = None


def _build_wheel_class(core) -> type:
    pure_wheel = _pure.TimingWheel

    class CTimingWheel(core.WheelCore):
        __doc__ = pure_wheel.__doc__

        def __init__(self) -> None:
            # Same initial state as the pure class; integer assignments
            # land in C struct fields via the member descriptors, list
            # assignments store ordinary Python lists.
            self._now = 0
            self._seq = 0
            self._wheel = [[] for _ in range(_pure._WHEEL_SIZE)]
            self._wheel_late = [[] for _ in range(_pure._WHEEL_SIZE)]
            self._wheel_pos = 0
            self._horizon = _pure._WHEEL_SIZE
            self._wheel_count = 0
            self._overflow = []
            self._live = 0
            self.dispatched = 0
            self.sanitizer = None
            self.tracer = None
            # C member descriptors; zeroed by tp_new, re-zeroed here so
            # a re-run __init__ (checkpoint restore) restarts the counts
            self.fastpath_hits = 0
            self.fastpath_misses = 0

        # Scheduling surface, properties, and coercion helpers: the pure
        # implementations verbatim, operating on C-backed attributes.
        # (heapq pushes from these methods and pushes from the compiled
        # loops produce identical heap layouts — the C side replicates
        # heapq's sift algorithm over the same list.)
        now = pure_wheel.now
        pending_events = pure_wheel.pending_events
        live_events = pure_wheel.live_events
        _as_cycles = staticmethod(pure_wheel._as_cycles)
        _coerce_delay = pure_wheel._coerce_delay
        _coerce_when = pure_wheel._coerce_when
        schedule = pure_wheel.schedule
        schedule_at = pure_wheel.schedule_at
        post = pure_wheel.post
        post_at = pure_wheel.post_at
        post_chain_at = pure_wheel.post_chain_at
        post_late_at = pure_wheel.post_late_at
        advance_clock = pure_wheel.advance_clock
        _refill = pure_wheel._refill
        # run_until / run are inherited from WheelCore: the compiled loops.

    return CTimingWheel


def c_wheel_class(core) -> type:
    """The C-backed :class:`TimingWheel` equivalent (built once)."""
    global _wheel_cls
    if _wheel_cls is None:
        _wheel_cls = _build_wheel_class(core)
    return _wheel_cls


def c_engine_class(core) -> type:
    """The C-backed :class:`Engine` equivalent (built once)."""
    global _engine_cls
    if _engine_cls is None:
        wheel_cls = c_wheel_class(core)

        class CEngine(_pure._EngineMixin, wheel_cls):
            __doc__ = _pure.Engine.__doc__

        CEngine.__name__ = "CEngine"
        CEngine.__qualname__ = "CEngine"
        _engine_cls = CEngine
    return _engine_cls
