"""Local build + load of the ``_wheelcore`` C extension.

The extension ships as one C source file next to this module and is
compiled on demand with the host toolchain (``gcc``/``cc``/``clang``,
``-O2 -fPIC -shared`` against this interpreter's headers) — no network,
no setuptools build isolation, no wheel.  Artifacts land under
``.repro-cache/accel/<fingerprint>/`` where the fingerprint pins the C
source *and* the interpreter ABI (version, platform, extension suffix),
so a source edit or an interpreter switch can never pick up a stale
``.so``.

Loading performs two handshakes before the module is handed out:

* ``WHEEL_BITS`` must match the pure engine's wheel geometry (the C
  dispatch loops hard-code the bucket mask); and
* the engine's :class:`~repro.sim.engine.SimulationError` is injected so
  compiled guard trips raise the exact exception type callers catch.
"""

from __future__ import annotations

import hashlib
import importlib.machinery
import importlib.util
import shutil
import subprocess
import sys
import sysconfig
from pathlib import Path

__all__ = [
    "SOURCE_PATH",
    "artifact_path",
    "build",
    "compiler",
    "load",
    "source_fingerprint",
]

#: The one C source file of the accelerator.
SOURCE_PATH = Path(__file__).resolve().with_name("_wheelcore.c")

#: Platform-specific shared-object suffix (e.g. ``.cpython-311-x86_64-...so``).
_EXT_SUFFIX = sysconfig.get_config_var("EXT_SUFFIX") or ".so"


def source_fingerprint() -> str:
    """Digest pinning the C source and the interpreter ABI (16 hex chars).

    The native-kind manifest digest rides along so a manifest change
    (new mirrored kind, renamed tag) invalidates cached builds whose
    registered table would no longer match the install handshake.
    """
    from repro.accel import native

    payload = "|".join(
        (
            hashlib.sha256(SOURCE_PATH.read_bytes()).hexdigest(),
            "cpython-{}.{}.{}".format(*sys.version_info[:3]),
            sysconfig.get_platform(),
            _EXT_SUFFIX,
            native.manifest_digest(),
        )
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def artifact_path(cache_dir: str | Path = ".repro-cache") -> Path:
    """Where the compiled extension for this source+ABI lives (or will)."""
    return (
        Path(cache_dir)
        / "accel"
        / source_fingerprint()
        / f"_wheelcore{_EXT_SUFFIX}"
    )


def compiler() -> str | None:
    """Path of the first available C compiler, or None."""
    for name in ("gcc", "cc", "clang"):
        found = shutil.which(name)
        if found is not None:
            return found
    return None


def build(cache_dir: str | Path = ".repro-cache") -> Path:
    """Compile the extension (idempotent) and return the artifact path.

    Raises :class:`~repro.accel.AccelUnavailable` when no toolchain or
    headers are present, or when compilation fails — with the compiler
    diagnostics attached, so a broken edit is debuggable from the error.
    """
    from repro.accel import AccelUnavailable

    target = artifact_path(cache_dir)
    if target.exists():
        return target
    cc = compiler()
    if cc is None:
        raise AccelUnavailable(
            "no C compiler (tried gcc, cc, clang) on PATH; the pure-Python "
            "backend remains fully functional — rerun with --backend=pure "
            "or install a toolchain"
        )
    include = sysconfig.get_path("include")
    if include is None or not Path(include, "Python.h").exists():
        raise AccelUnavailable(
            f"Python.h not found under {include!r}; install the Python "
            "development headers or use --backend=pure"
        )
    target.parent.mkdir(parents=True, exist_ok=True)
    # Build into a temp name and publish with an atomic rename so a
    # concurrent builder (sweep workers racing on a cold cache) can never
    # load a half-written object.
    scratch = target.with_name(target.name + ".tmp")
    command = [
        cc,
        "-O2",
        "-fPIC",
        "-shared",
        f"-I{include}",
        str(SOURCE_PATH),
        "-o",
        str(scratch),
    ]
    proc = subprocess.run(command, capture_output=True, text=True)
    if proc.returncode != 0:
        scratch.unlink(missing_ok=True)
        raise AccelUnavailable(
            "compiling _wheelcore failed "
            f"(command: {' '.join(command)}):\n{proc.stderr.strip()}"
        )
    scratch.replace(target)
    return target


def load(path: str | Path):
    """Import the compiled extension from ``path`` and handshake it.

    The module object is returned; callers (``repro.accel``) cache it —
    a CPython extension can only be initialized once per process anyway.
    """
    from repro.accel import AccelUnavailable
    from repro.sim import engine as pure_engine

    path = Path(path)
    loader = importlib.machinery.ExtensionFileLoader("_wheelcore", str(path))
    spec = importlib.util.spec_from_file_location(
        "_wheelcore", str(path), loader=loader
    )
    if spec is None:  # pragma: no cover - spec creation cannot fail here
        raise AccelUnavailable(f"cannot create an import spec for {path}")
    module = importlib.util.module_from_spec(spec)
    loader.exec_module(module)
    if module.WHEEL_BITS != pure_engine._WHEEL_BITS:
        raise AccelUnavailable(
            f"ABI mismatch: compiled wheel has {module.WHEEL_BITS} bucket "
            f"bits, the engine expects {pure_engine._WHEEL_BITS}; rebuild "
            "the extension (repro accel build)"
        )
    # Compiled guard trips must raise the engine's exception type.
    module._install(pure_engine.SimulationError)
    # Bind the native event-kind table (function/class pairs + helper
    # classes) so the dispatch loops can run recognized callbacks in C.
    from repro.accel import native

    native.install_native_kinds(module)
    return module
