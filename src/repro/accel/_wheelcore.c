/* _wheelcore.c — compiled dispatch core for the repro timing wheel.
 *
 * This extension reimplements the two hot-kernel dispatch loops of
 * repro.sim.engine.TimingWheel (run_until, run) plus the memory
 * controller's bank-ready/row-hit scan, behind a base type the Python
 * backend classes subclass.  It is a *mirror*, not a redesign: every
 * loop below is a line-for-line port of the pure-Python reference, and
 * the determinism contract is byte-identical dispatch order — see
 * DESIGN.md §12 for the argument.
 *
 * Marshal compatibility: all scheduler state lives in Python-visible
 * members (plain lists for the wheel/overflow, C long longs for the
 * counters, exposed as attributes with the exact names the pure class
 * uses).  The pure-Python scheduling entry points (schedule/post/...),
 * the sanitizer, the checkpoint pickler, and the inlined wheel inserts
 * in system.py/controller.py therefore operate on a WheelCore instance
 * unchanged, and wheel state moves losslessly between backends.
 *
 * Overflow-heap layout: the siftup/siftdown routines replicate CPython
 * heapq's algorithms exactly (element comparisons via PyObject_RichCompareBool
 * on the (when, seq, entry) tuples), so a heap built by any mix of C
 * and Python pushes has the identical array layout — which the
 * sanitizer's on_restore heap-order audit and cross-backend checkpoint
 * restores both rely on.
 *
 * Build: gcc -O2 -shared -fPIC (see repro.accel.build); no libraries
 * beyond Python.h.
 */
#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <structmember.h>

#define WHEEL_BITS 12
#define WHEEL_SIZE (1LL << WHEEL_BITS)
#define WHEEL_MASK (WHEEL_SIZE - 1)
/* Pure code uses 1 << 63 for "no refill pending"; the C loop never
 * materializes the sentinel as a Python int, so LLONG_MAX serves. */
#define NEVER_LL LLONG_MAX

/* SimulationError, injected by repro.accel after load (_install). */
static PyObject *g_sim_error = NULL;
/* Process-wide dispatch counter for this backend; engine.dispatched_total()
 * adds it to the pure loop's module counter. */
static long long g_dispatched_total = 0;

/* interned attribute / method names */
static PyObject *s_cancelled, *s_fired, *s_callback, *s_args;
static PyObject *s_as_cycles, *s_on_event, *s_deadline_word;
static PyObject *s_bank_id, *s_row_id, *s_open_page, *s_open_row;
static PyObject *s_prep_hit, *s_prep_miss;

/* ------------------------------------------------------------------ */
/* small helpers                                                      */
/* ------------------------------------------------------------------ */

static int
ll_from(PyObject *obj, long long *out)
{
    long long value = PyLong_AsLongLong(obj);
    if (value == -1 && PyErr_Occurred())
        return -1;
    *out = value;
    return 0;
}

/* callback(*args): args is a tuple on every engine-built entry; fall
 * back to sequence conversion for hand-built entries, mirroring the
 * pure loop's *-unpacking semantics. */
static int
call_callback(PyObject *callback, PyObject *args)
{
    PyObject *result;
    if (PyTuple_Check(args)) {
        result = PyObject_CallObject(callback, args);
    }
    else {
        PyObject *packed = PySequence_Tuple(args);
        if (packed == NULL)
            return -1;
        result = PyObject_CallObject(callback, packed);
        Py_DECREF(packed);
    }
    if (result == NULL)
        return -1;
    Py_DECREF(result);
    return 0;
}

/* ------------------------------------------------------------------ */
/* heapq replica (push/pop on a plain PyList of (when, seq, entry))   */
/* ------------------------------------------------------------------ */

static int
heap_lt(PyObject *a, PyObject *b)
{
    /* Exactly heapq's `a < b`; (when, seq) is unique so the compare
     * never falls through to the entry. */
    return PyObject_RichCompareBool(a, b, Py_LT);
}

static int
heap_siftdown(PyObject *heap, Py_ssize_t startpos, Py_ssize_t pos)
{
    PyObject *newitem = PyList_GET_ITEM(heap, pos);
    Py_INCREF(newitem);
    while (pos > startpos) {
        Py_ssize_t parentpos = (pos - 1) >> 1;
        PyObject *parent = PyList_GET_ITEM(heap, parentpos);
        int lt = heap_lt(newitem, parent);
        if (lt < 0) {
            Py_DECREF(newitem);
            return -1;
        }
        if (!lt)
            break;
        Py_INCREF(parent);
        PyList_SetItem(heap, pos, parent);
        pos = parentpos;
    }
    PyList_SetItem(heap, pos, newitem);
    return 0;
}

static int
heap_siftup(PyObject *heap, Py_ssize_t pos)
{
    Py_ssize_t endpos = PyList_GET_SIZE(heap);
    Py_ssize_t startpos = pos;
    PyObject *newitem = PyList_GET_ITEM(heap, pos);
    Py_INCREF(newitem);
    Py_ssize_t childpos = 2 * pos + 1;
    while (childpos < endpos) {
        Py_ssize_t rightpos = childpos + 1;
        if (rightpos < endpos) {
            int lt = heap_lt(PyList_GET_ITEM(heap, childpos),
                             PyList_GET_ITEM(heap, rightpos));
            if (lt < 0) {
                Py_DECREF(newitem);
                return -1;
            }
            if (!lt)
                childpos = rightpos;
        }
        PyObject *child = PyList_GET_ITEM(heap, childpos);
        Py_INCREF(child);
        PyList_SetItem(heap, pos, child);
        pos = childpos;
        childpos = 2 * pos + 1;
    }
    PyList_SetItem(heap, pos, newitem);
    return heap_siftdown(heap, startpos, pos);
}

static int
heap_push(PyObject *heap, PyObject *item)
{
    if (PyList_Append(heap, item) < 0)
        return -1;
    return heap_siftdown(heap, 0, PyList_GET_SIZE(heap) - 1);
}

/* Returns a new reference, or NULL on error. */
static PyObject *
heap_pop(PyObject *heap)
{
    Py_ssize_t n = PyList_GET_SIZE(heap);
    if (n == 0) {
        PyErr_SetString(PyExc_IndexError, "index out of range");
        return NULL;
    }
    PyObject *lastelt = PyList_GET_ITEM(heap, n - 1);
    Py_INCREF(lastelt);
    if (PyList_SetSlice(heap, n - 1, n, NULL) < 0) {
        Py_DECREF(lastelt);
        return NULL;
    }
    if (PyList_GET_SIZE(heap)) {
        PyObject *returnitem = PyList_GET_ITEM(heap, 0);
        Py_INCREF(returnitem);
        PyList_SetItem(heap, 0, lastelt);
        if (heap_siftup(heap, 0) < 0) {
            Py_DECREF(returnitem);
            return NULL;
        }
        return returnitem;
    }
    return lastelt;
}

/* when of overflow[0]; -1 on error, 0 with *has=0 when empty. */
static int
overflow_head(PyObject *overflow, long long *when, int *has)
{
    if (PyList_GET_SIZE(overflow) == 0) {
        *has = 0;
        return 0;
    }
    PyObject *head = PyList_GET_ITEM(overflow, 0);
    if (!PyTuple_Check(head) || PyTuple_GET_SIZE(head) < 3) {
        PyErr_SetString(PyExc_TypeError,
                        "overflow heap entry is not a (when, seq, entry) tuple");
        return -1;
    }
    if (ll_from(PyTuple_GET_ITEM(head, 0), when) < 0)
        return -1;
    *has = 1;
    return 0;
}

/* ------------------------------------------------------------------ */
/* WheelCore type                                                     */
/* ------------------------------------------------------------------ */

typedef struct {
    PyObject_HEAD
    long long now;
    long long seq;
    long long wheel_pos;
    long long horizon;
    long long wheel_count;
    long long live;
    long long dispatched;
    PyObject *wheel;       /* list of WHEEL_SIZE per-cycle FIFO lists   */
    PyObject *wheel_late;  /* second bucket array for the late phase    */
    PyObject *overflow;    /* heap list of (when, seq, entry)           */
    PyObject *sanitizer;   /* None or SimSanitizer                      */
    PyObject *tracer;      /* None or RequestTracer                     */
} WheelCore;

static int
check_state(WheelCore *self)
{
    if (self->wheel == NULL || !PyList_Check(self->wheel) ||
        self->wheel_late == NULL || !PyList_Check(self->wheel_late) ||
        self->overflow == NULL || !PyList_Check(self->overflow)) {
        PyErr_SetString(PyExc_TypeError,
                        "WheelCore state is uninitialized (wheel arrays "
                        "must be lists; did __init__ run?)");
        return -1;
    }
    if (PyList_GET_SIZE(self->wheel) != WHEEL_SIZE ||
        PyList_GET_SIZE(self->wheel_late) != WHEEL_SIZE) {
        PyErr_SetString(PyExc_TypeError,
                        "WheelCore bucket arrays must hold exactly "
                        "4096 buckets");
        return -1;
    }
    return 0;
}

/* self._refill(), C side: move overflow entries now inside the window. */
static int
core_refill(WheelCore *self)
{
    long long moved = 0;
    for (;;) {
        long long when;
        int has;
        if (overflow_head(self->overflow, &when, &has) < 0)
            return -1;
        if (!has || when >= self->horizon)
            break;
        PyObject *item = heap_pop(self->overflow);
        if (item == NULL)
            return -1;
        PyObject *bucket =
            PyList_GET_ITEM(self->wheel, (Py_ssize_t)(when & WHEEL_MASK));
        if (!PyList_Check(bucket)) {
            Py_DECREF(item);
            PyErr_SetString(PyExc_TypeError, "wheel bucket is not a list");
            return -1;
        }
        int rc = PyList_Append(bucket, PyTuple_GET_ITEM(item, 2));
        Py_DECREF(item);
        if (rc < 0)
            return -1;
        moved++;
    }
    self->wheel_count += moved;
    return 0;
}

/* Insert a fused chain's continuation: mirror of the pure loops' inline
 * block.  `horizon` is the caller's view (local variable in run_until,
 * self->horizon in run), matching the pure code exactly. */
static int
chain_continue(WheelCore *self, PyObject *entry, long long pos,
               long long horizon)
{
    long long link_delay;
    if (ll_from(PyList_GET_ITEM(entry, 2), &link_delay) < 0)
        return -1;
    long long when2 = pos + link_delay;
    self->live += 1;
    PyObject *cont = PyTuple_Pack(2, PyList_GET_ITEM(entry, 3),
                                  PyList_GET_ITEM(entry, 4));
    if (cont == NULL)
        return -1;
    if (when2 < horizon) {
        PyObject *bucket =
            PyList_GET_ITEM(self->wheel, (Py_ssize_t)(when2 & WHEEL_MASK));
        int rc = PyList_Append(bucket, cont);
        Py_DECREF(cont);
        if (rc < 0)
            return -1;
        self->wheel_count += 1;
        return 0;
    }
    long long seq = self->seq;
    self->seq = seq + 1;
    PyObject *when_obj = PyLong_FromLongLong(when2);
    PyObject *seq_obj = PyLong_FromLongLong(seq);
    PyObject *item = NULL;
    if (when_obj != NULL && seq_obj != NULL)
        item = PyTuple_Pack(3, when_obj, seq_obj, cont);
    Py_XDECREF(when_obj);
    Py_XDECREF(seq_obj);
    Py_DECREF(cont);
    if (item == NULL)
        return -1;
    int rc = heap_push(self->overflow, item);
    Py_DECREF(item);
    return rc;
}

/* Dispatch one Event-shaped entry.  Returns 1 if it fired, 0 if it was
 * cancelled (skipped), -1 on error. */
static int
dispatch_event(PyObject *entry)
{
    PyObject *flag = PyObject_GetAttr(entry, s_cancelled);
    if (flag == NULL)
        return -1;
    int cancelled = PyObject_IsTrue(flag);
    Py_DECREF(flag);
    if (cancelled < 0)
        return -1;
    if (cancelled)
        return 0;
    if (PyObject_SetAttr(entry, s_fired, Py_True) < 0)
        return -1;
    PyObject *callback = PyObject_GetAttr(entry, s_callback);
    if (callback == NULL)
        return -1;
    PyObject *args = PyObject_GetAttr(entry, s_args);
    if (args == NULL) {
        Py_DECREF(callback);
        return -1;
    }
    int rc = call_callback(callback, args);
    Py_DECREF(callback);
    Py_DECREF(args);
    return rc < 0 ? -1 : 1;
}

static int
sanitizer_on_event(PyObject *sanitizer, long long when, long long prev)
{
    PyObject *when_obj = PyLong_FromLongLong(when);
    if (when_obj == NULL)
        return -1;
    PyObject *prev_obj = PyLong_FromLongLong(prev);
    if (prev_obj == NULL) {
        Py_DECREF(when_obj);
        return -1;
    }
    PyObject *result = PyObject_CallMethodObjArgs(
        sanitizer, s_on_event, when_obj, prev_obj, NULL);
    Py_DECREF(when_obj);
    Py_DECREF(prev_obj);
    if (result == NULL)
        return -1;
    Py_DECREF(result);
    return 0;
}

/* Dispatch every entry of one bucket list for cycle `pos`, picking up
 * same-cycle appends (list-iterator semantics: the size is re-read every
 * step).  Mirrors one `for entry in bucket:` loop of run_until.
 *
 * On success *dispatched_out has been advanced exactly as the pure loop
 * advances its local `dispatched`; *prev_io carries the sanitizer's
 * previous-dispatch clock across buckets.  Returns -1 on error. */
static int
dispatch_bucket(WheelCore *self, PyObject *bucket, long long pos,
                long long horizon, PyObject *sanitizer,
                long long *dispatched_out, long long *prev_io)
{
    long long skipped = 0;
    long long count = 0;
    Py_ssize_t index = 0;
    while (index < PyList_GET_SIZE(bucket)) {
        PyObject *entry = PyList_GET_ITEM(bucket, index);
        Py_INCREF(entry);
        index++;
        if (PyTuple_CheckExact(entry)) {
            if (sanitizer != NULL) {
                if (sanitizer_on_event(sanitizer, pos, *prev_io) < 0)
                    goto fail;
                *prev_io = pos;
            }
            if (call_callback(PyTuple_GET_ITEM(entry, 0),
                              PyTuple_GET_ITEM(entry, 1)) < 0)
                goto fail;
            count++;
        }
        else if (PyList_CheckExact(entry)) {
            if (sanitizer != NULL) {
                if (sanitizer_on_event(sanitizer, pos, *prev_io) < 0)
                    goto fail;
                *prev_io = pos;
            }
            if (call_callback(PyList_GET_ITEM(entry, 0),
                              PyList_GET_ITEM(entry, 1)) < 0)
                goto fail;
            if (chain_continue(self, entry, pos, horizon) < 0)
                goto fail;
            count++;
        }
        else {
            if (sanitizer != NULL) {
                /* sanitized loop checks `cancelled` before on_event */
                PyObject *flag = PyObject_GetAttr(entry, s_cancelled);
                if (flag == NULL)
                    goto fail;
                int cancelled = PyObject_IsTrue(flag);
                Py_DECREF(flag);
                if (cancelled < 0)
                    goto fail;
                if (cancelled) {
                    Py_DECREF(entry);
                    continue;
                }
                if (sanitizer_on_event(sanitizer, pos, *prev_io) < 0)
                    goto fail;
                *prev_io = pos;
            }
            int fired = dispatch_event(entry);
            if (fired < 0)
                goto fail;
            if (fired)
                count++;
            else
                skipped++;
        }
        Py_DECREF(entry);
    }
    /* settle per bucket, matching `dispatched += len(bucket) - skipped`
     * (the final length covers same-cycle appends; every appended entry
     * was also dispatched by the loop above) */
    if (sanitizer == NULL)
        *dispatched_out += PyList_GET_SIZE(bucket) - skipped;
    else
        *dispatched_out += count;
    return 0;
fail:
    /* the pure loop's per-entry `dispatched += 1` settlement is what the
     * finally block sees on an exception: entries fully dispatched before
     * the failing one still count */
    *dispatched_out += count;
    return -1;
}

static PyObject *
WheelCore_run_until(WheelCore *self, PyObject *arg)
{
    long long deadline;
    if (PyLong_CheckExact(arg)) {
        if (ll_from(arg, &deadline) < 0)
            return NULL;
    }
    else {
        PyObject *coerced = PyObject_CallMethodObjArgs(
            (PyObject *)self, s_as_cycles, arg, s_deadline_word, NULL);
        if (coerced == NULL)
            return NULL;
        int rc = ll_from(coerced, &deadline);
        Py_DECREF(coerced);
        if (rc < 0)
            return NULL;
    }
    if (check_state(self) < 0)
        return NULL;

    PyObject *wheel = self->wheel;
    PyObject *late_wheel = self->wheel_late;
    PyObject *overflow = self->overflow;
    PyObject *sanitizer =
        (self->sanitizer == NULL || self->sanitizer == Py_None)
            ? NULL
            : self->sanitizer;
    /* The pure loop binds these as locals for the whole call; keep them
     * alive across callbacks the same way. */
    Py_INCREF(wheel);
    Py_INCREF(late_wheel);
    Py_INCREF(overflow);
    Py_XINCREF(sanitizer);

    long long dispatched = 0;
    long long pos = self->wheel_pos;
    int failed = 0;

    if (core_refill(self) < 0) {
        failed = 1;
        goto settle;
    }
    long long next_refill = NEVER_LL;
    {
        long long head;
        int has;
        if (overflow_head(overflow, &head, &has) < 0) {
            failed = 1;
            goto settle;
        }
        next_refill = has ? head - WHEEL_SIZE + 1 : NEVER_LL;
    }

    while (pos <= deadline) {
        Py_ssize_t slot = (Py_ssize_t)(pos & WHEEL_MASK);
        PyObject *bucket = PyList_GET_ITEM(wheel, slot);
        if (PyList_GET_SIZE(bucket) == 0 &&
            PyList_GET_SIZE(PyList_GET_ITEM(late_wheel, slot)) == 0) {
            if (self->wheel_count) {
                pos += 1;
                if (pos >= next_refill) {
                    self->wheel_pos = pos;
                    self->horizon = pos + WHEEL_SIZE;
                    if (core_refill(self) < 0) {
                        failed = 1;
                        goto settle;
                    }
                    long long head;
                    int has;
                    if (overflow_head(overflow, &head, &has) < 0) {
                        failed = 1;
                        goto settle;
                    }
                    next_refill = has ? head - WHEEL_SIZE + 1 : NEVER_LL;
                }
                continue;
            }
            long long head;
            int has;
            if (overflow_head(overflow, &head, &has) < 0) {
                failed = 1;
                goto settle;
            }
            if (!has || head > deadline)
                break;
            /* wheel empty: jump straight to the overflow head */
            pos = head;
            self->wheel_pos = pos;
            self->horizon = pos + WHEEL_SIZE;
            if (core_refill(self) < 0) {
                failed = 1;
                goto settle;
            }
            if (overflow_head(overflow, &head, &has) < 0) {
                failed = 1;
                goto settle;
            }
            next_refill = has ? head - WHEEL_SIZE + 1 : NEVER_LL;
            continue;
        }
        /* ---- dispatch every entry at cycle `pos` ---- */
        self->wheel_pos = pos;
        long long horizon = pos + WHEEL_SIZE;
        self->horizon = horizon;
        long long prev = self->now;
        self->now = pos;
        if (dispatch_bucket(self, bucket, pos, horizon, sanitizer,
                            &dispatched, &prev) < 0) {
            failed = 1;
            goto settle;
        }
        self->wheel_count -= PyList_GET_SIZE(bucket);
        if (PyList_SetSlice(bucket, 0, PyList_GET_SIZE(bucket), NULL) < 0) {
            failed = 1;
            goto settle;
        }
        PyObject *late = PyList_GET_ITEM(late_wheel, slot);
        if (PyList_GET_SIZE(late) != 0) {
            /* ---- late phase: slot-swap so zero-delay posts made by
             * late callbacks land in the list being iterated ---- */
            Py_INCREF(late);   /* working reference */
            Py_INCREF(bucket); /* keep alive across the swap */
            Py_INCREF(late);
            PyList_SetItem(wheel, slot, late); /* steals; drops bucket */
            if (dispatch_bucket(self, late, pos, horizon, sanitizer,
                                &dispatched, &prev) < 0) {
                /* mirror pure control flow: the finally block does not
                 * restore the swapped slot on an exception */
                Py_DECREF(late);
                Py_DECREF(bucket);
                failed = 1;
                goto settle;
            }
            self->wheel_count -= PyList_GET_SIZE(late);
            if (PyList_SetSlice(late, 0, PyList_GET_SIZE(late), NULL) < 0) {
                Py_DECREF(late);
                Py_DECREF(bucket);
                failed = 1;
                goto settle;
            }
            PyList_SetItem(wheel, slot, bucket); /* steals; drops late */
            Py_DECREF(late);
        }
        pos += 1;
        /* callbacks may have pushed new far-future work */
        long long head;
        int has;
        if (overflow_head(overflow, &head, &has) < 0) {
            failed = 1;
            goto settle;
        }
        next_refill = has ? head - WHEEL_SIZE + 1 : NEVER_LL;
        if (pos >= next_refill) {
            self->wheel_pos = pos;
            self->horizon = pos + WHEEL_SIZE;
            if (core_refill(self) < 0) {
                failed = 1;
                goto settle;
            }
            if (overflow_head(overflow, &head, &has) < 0) {
                failed = 1;
                goto settle;
            }
            next_refill = has ? head - WHEEL_SIZE + 1 : NEVER_LL;
        }
    }

settle:
    /* the pure loop's finally block */
    self->live -= dispatched;
    self->dispatched += dispatched;
    g_dispatched_total += dispatched;
    Py_DECREF(wheel);
    Py_DECREF(late_wheel);
    Py_DECREF(overflow);
    Py_XDECREF(sanitizer);
    if (failed)
        return NULL;
    if (self->now < deadline)
        self->now = deadline;
    if (self->wheel_pos < deadline) {
        self->wheel_pos = deadline;
        self->horizon = deadline + WHEEL_SIZE;
    }
    Py_RETURN_NONE;
}

/* One index-based bucket walk of run(): mirrors the pure `while index <
 * len(bucket)` loop including the max_events guard.  Returns 0 on
 * success, 1 if the guard tripped (error already set), -1 on error.
 * *index_out is the pure loop's `index` at exit (for the `del
 * bucket[:index]` / wheel_count settlement the caller performs). */
static int
run_bucket(WheelCore *self, PyObject *bucket, long long pos,
           int has_max, long long max_events, PyObject *sanitizer,
           long long *dispatched_io, Py_ssize_t *index_out)
{
    Py_ssize_t index = 0;
    while (index < PyList_GET_SIZE(bucket)) {
        PyObject *entry = PyList_GET_ITEM(bucket, index);
        Py_INCREF(entry);
        int is_tuple = PyTuple_CheckExact(entry);
        int is_list = PyList_CheckExact(entry);
        int is_event = !is_tuple && !is_list;
        if (is_event) {
            PyObject *flag = PyObject_GetAttr(entry, s_cancelled);
            if (flag == NULL)
                goto fail;
            int cancelled = PyObject_IsTrue(flag);
            Py_DECREF(flag);
            if (cancelled < 0)
                goto fail;
            if (cancelled) {
                Py_DECREF(entry);
                index++;
                continue;
            }
        }
        if (has_max && *dispatched_io >= max_events) {
            /* del bucket[:index]; wheel_count -= index; clock at pos */
            if (PyList_SetSlice(bucket, 0, index, NULL) < 0)
                goto fail;
            self->wheel_count -= index;
            self->now = pos;
            PyErr_Format(g_sim_error ? g_sim_error : PyExc_RuntimeError,
                         "exceeded max_events=%lld", max_events);
            Py_DECREF(entry);
            *index_out = index;
            return 1;
        }
        if (sanitizer != NULL) {
            if (sanitizer_on_event(sanitizer, pos, self->now) < 0)
                goto fail;
        }
        self->now = pos;
        if (is_event) {
            if (PyObject_SetAttr(entry, s_fired, Py_True) < 0)
                goto fail;
            PyObject *callback = PyObject_GetAttr(entry, s_callback);
            if (callback == NULL)
                goto fail;
            PyObject *cb_args = PyObject_GetAttr(entry, s_args);
            if (cb_args == NULL) {
                Py_DECREF(callback);
                goto fail;
            }
            int rc = call_callback(callback, cb_args);
            Py_DECREF(callback);
            Py_DECREF(cb_args);
            if (rc < 0)
                goto fail;
        }
        else {
            if (call_callback(
                    is_tuple ? PyTuple_GET_ITEM(entry, 0)
                             : PyList_GET_ITEM(entry, 0),
                    is_tuple ? PyTuple_GET_ITEM(entry, 1)
                             : PyList_GET_ITEM(entry, 1)) < 0)
                goto fail;
            if (is_list) {
                if (chain_continue(self, entry, pos, self->horizon) < 0)
                    goto fail;
            }
        }
        *dispatched_io += 1;
        index++;
        Py_DECREF(entry);
        continue;
    fail:
        Py_DECREF(entry);
        *index_out = index;
        return -1;
    }
    *index_out = index;
    return 0;
}

static PyObject *
WheelCore_run(WheelCore *self, PyObject *args, PyObject *kwargs)
{
    static char *keywords[] = {"max_events", NULL};
    PyObject *max_obj = Py_None;
    if (!PyArg_ParseTupleAndKeywords(args, kwargs, "|O", keywords, &max_obj))
        return NULL;
    int has_max = max_obj != Py_None;
    long long max_events = 0;
    if (has_max && ll_from(max_obj, &max_events) < 0)
        return NULL;
    if (check_state(self) < 0)
        return NULL;

    PyObject *wheel = self->wheel;
    PyObject *late_wheel = self->wheel_late;
    PyObject *overflow = self->overflow;
    PyObject *sanitizer =
        (self->sanitizer == NULL || self->sanitizer == Py_None)
            ? NULL
            : self->sanitizer;
    Py_INCREF(wheel);
    Py_INCREF(late_wheel);
    Py_INCREF(overflow);
    Py_XINCREF(sanitizer);

    long long dispatched = 0;
    long long pos = self->wheel_pos;
    int failed = 0;

    if (core_refill(self) < 0) {
        failed = 1;
        goto settle;
    }
    for (;;) {
        if (self->wheel_count == 0) {
            long long head;
            int has;
            if (overflow_head(overflow, &head, &has) < 0) {
                failed = 1;
                goto settle;
            }
            if (!has)
                break;
            pos = head;
            self->wheel_pos = pos;
            self->horizon = pos + WHEEL_SIZE;
            if (core_refill(self) < 0) {
                failed = 1;
                goto settle;
            }
            continue;
        }
        Py_ssize_t slot = (Py_ssize_t)(pos & WHEEL_MASK);
        PyObject *bucket = PyList_GET_ITEM(wheel, slot);
        if (PyList_GET_SIZE(bucket) == 0 &&
            PyList_GET_SIZE(PyList_GET_ITEM(late_wheel, slot)) == 0) {
            pos += 1;
            long long head;
            int has;
            if (overflow_head(overflow, &head, &has) < 0) {
                failed = 1;
                goto settle;
            }
            if (has && head - WHEEL_SIZE + 1 <= pos) {
                self->wheel_pos = pos;
                self->horizon = pos + WHEEL_SIZE;
                if (core_refill(self) < 0) {
                    failed = 1;
                    goto settle;
                }
            }
            continue;
        }
        self->wheel_pos = pos;
        self->horizon = pos + WHEEL_SIZE;
        Py_ssize_t index = 0;
        int rc = run_bucket(self, bucket, pos, has_max, max_events,
                            sanitizer, &dispatched, &index);
        if (rc != 0) {
            failed = 1;
            goto settle;
        }
        self->wheel_count -= index;
        if (PyList_SetSlice(bucket, 0, PyList_GET_SIZE(bucket), NULL) < 0) {
            failed = 1;
            goto settle;
        }
        PyObject *late = PyList_GET_ITEM(late_wheel, slot);
        if (PyList_GET_SIZE(late) != 0) {
            /* late phase: same slot-swap as run_until */
            Py_INCREF(late);
            Py_INCREF(bucket);
            Py_INCREF(late);
            PyList_SetItem(wheel, slot, late);
            rc = run_bucket(self, late, pos, has_max, max_events,
                            sanitizer, &dispatched, &index);
            if (rc != 0) {
                if (rc == 1) {
                    /* guard trip restores the ordinary slot (pure code
                     * reassigns wheel[pos & mask] = bucket before raising) */
                    PyList_SetItem(wheel, slot, bucket); /* steals */
                    Py_DECREF(late);
                }
                else {
                    Py_DECREF(late);
                    Py_DECREF(bucket);
                }
                failed = 1;
                goto settle;
            }
            self->wheel_count -= index;
            if (PyList_SetSlice(late, 0, PyList_GET_SIZE(late), NULL) < 0) {
                Py_DECREF(late);
                Py_DECREF(bucket);
                failed = 1;
                goto settle;
            }
            PyList_SetItem(wheel, slot, bucket); /* steals; drops late */
            Py_DECREF(late);
        }
        pos += 1;
    }

settle:
    self->live -= dispatched;
    self->dispatched += dispatched;
    g_dispatched_total += dispatched;
    Py_DECREF(wheel);
    Py_DECREF(late_wheel);
    Py_DECREF(overflow);
    Py_XDECREF(sanitizer);
    if (failed)
        return NULL;
    return PyLong_FromLongLong(dispatched);
}

static PyMemberDef WheelCore_members[] = {
    {"_now", T_LONGLONG, offsetof(WheelCore, now), 0,
     "current simulation cycle"},
    {"_seq", T_LONGLONG, offsetof(WheelCore, seq), 0,
     "global insertion sequence counter"},
    {"_wheel_pos", T_LONGLONG, offsetof(WheelCore, wheel_pos), 0,
     "window start cycle"},
    {"_horizon", T_LONGLONG, offsetof(WheelCore, horizon), 0,
     "window end cycle (wheel_pos + 4096)"},
    {"_wheel_count", T_LONGLONG, offsetof(WheelCore, wheel_count), 0,
     "entries sitting in wheel buckets (both phases)"},
    {"_live", T_LONGLONG, offsetof(WheelCore, live), 0,
     "queued entries that will actually fire"},
    {"dispatched", T_LONGLONG, offsetof(WheelCore, dispatched), 0,
     "events dispatched by this engine"},
    {"_wheel", T_OBJECT, offsetof(WheelCore, wheel), 0,
     "per-cycle FIFO bucket lists"},
    {"_wheel_late", T_OBJECT, offsetof(WheelCore, wheel_late), 0,
     "late-phase bucket lists"},
    {"_overflow", T_OBJECT, offsetof(WheelCore, overflow), 0,
     "(when, seq, entry) heap beyond the window"},
    {"sanitizer", T_OBJECT, offsetof(WheelCore, sanitizer), 0,
     "opt-in runtime invariant checker"},
    {"tracer", T_OBJECT, offsetof(WheelCore, tracer), 0,
     "opt-in request lifecycle recorder"},
    {NULL, 0, 0, 0, NULL},
};

static PyMethodDef WheelCore_methods[] = {
    {"run_until", (PyCFunction)WheelCore_run_until, METH_O,
     "Dispatch events with timestamp <= deadline (compiled)."},
    {"run", (PyCFunction)WheelCore_run, METH_VARARGS | METH_KEYWORDS,
     "Dispatch events until the queue is empty (compiled)."},
    {NULL, NULL, 0, NULL},
};

static int
WheelCore_traverse(WheelCore *self, visitproc visit, void *arg)
{
    Py_VISIT(self->wheel);
    Py_VISIT(self->wheel_late);
    Py_VISIT(self->overflow);
    Py_VISIT(self->sanitizer);
    Py_VISIT(self->tracer);
    return 0;
}

static int
WheelCore_clear(WheelCore *self)
{
    Py_CLEAR(self->wheel);
    Py_CLEAR(self->wheel_late);
    Py_CLEAR(self->overflow);
    Py_CLEAR(self->sanitizer);
    Py_CLEAR(self->tracer);
    return 0;
}

static void
WheelCore_dealloc(WheelCore *self)
{
    PyObject_GC_UnTrack(self);
    WheelCore_clear(self);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static PyTypeObject WheelCoreType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "_wheelcore.WheelCore",
    .tp_basicsize = sizeof(WheelCore),
    .tp_dealloc = (destructor)WheelCore_dealloc,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_BASETYPE | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Compiled timing-wheel dispatch core (see repro.accel).",
    .tp_traverse = (traverseproc)WheelCore_traverse,
    .tp_clear = (inquiry)WheelCore_clear,
    .tp_methods = WheelCore_methods,
    .tp_members = WheelCore_members,
    .tp_new = PyType_GenericNew,
};

/* ------------------------------------------------------------------ */
/* controller kernels                                                 */
/* ------------------------------------------------------------------ */

/* Bank.prep_cycles(row), reading the Bank's flattened timing slots. */
static int
bank_prep_cycles(PyObject *bank, PyObject *row_obj, long long *out)
{
    PyObject *open_page = PyObject_GetAttr(bank, s_open_page);
    if (open_page == NULL)
        return -1;
    int is_open = PyObject_IsTrue(open_page);
    Py_DECREF(open_page);
    if (is_open < 0)
        return -1;
    PyObject *which = s_prep_miss;
    if (is_open) {
        PyObject *open_row = PyObject_GetAttr(bank, s_open_row);
        if (open_row == NULL)
            return -1;
        int hit = PyObject_RichCompareBool(open_row, row_obj, Py_EQ);
        Py_DECREF(open_row);
        if (hit < 0)
            return -1;
        if (hit)
            which = s_prep_hit;
    }
    PyObject *prep = PyObject_GetAttr(bank, which);
    if (prep == NULL)
        return -1;
    int rc = ll_from(prep, out);
    Py_DECREF(prep);
    return rc;
}

/* ready_scan(queue, busy, banks, uniform_prep, bus_backlog, now)
 *
 * Mirror of MemoryController._ready: requests whose bank is free and
 * whose prep covers the data-bus backlog, in queue order. */
static PyObject *
mod_ready_scan(PyObject *module, PyObject *args)
{
    PyObject *queue, *busy, *banks, *uniform_prep;
    long long bus_backlog, now;
    if (!PyArg_ParseTuple(args, "OOOOLL", &queue, &busy, &banks,
                          &uniform_prep, &bus_backlog, &now))
        return NULL;
    if (!PyList_Check(queue) || !PyList_Check(busy) || !PyList_Check(banks)) {
        PyErr_SetString(PyExc_TypeError,
                        "ready_scan expects list queue/busy/banks");
        return NULL;
    }
    PyObject *ready = PyList_New(0);
    if (ready == NULL)
        return NULL;
    int uniform = uniform_prep != Py_None;
    long long uniform_ll = 0;
    if (uniform) {
        if (ll_from(uniform_prep, &uniform_ll) < 0)
            goto fail;
        /* closed page: the bus gate blocks the whole queue or none */
        if (uniform_ll < bus_backlog)
            return ready;
    }
    for (Py_ssize_t i = 0; i < PyList_GET_SIZE(queue); i++) {
        PyObject *req = PyList_GET_ITEM(queue, i);
        PyObject *bank_obj = PyObject_GetAttr(req, s_bank_id);
        if (bank_obj == NULL)
            goto fail;
        long long bank_id;
        int rc = ll_from(bank_obj, &bank_id);
        Py_DECREF(bank_obj);
        if (rc < 0)
            goto fail;
        if (bank_id < 0 || bank_id >= PyList_GET_SIZE(busy)) {
            PyErr_Format(PyExc_IndexError,
                         "request bank_id %lld out of range", bank_id);
            goto fail;
        }
        long long busy_until;
        if (ll_from(PyList_GET_ITEM(busy, (Py_ssize_t)bank_id),
                    &busy_until) < 0)
            goto fail;
        if (busy_until > now)
            continue;
        if (!uniform) {
            PyObject *row_obj = PyObject_GetAttr(req, s_row_id);
            if (row_obj == NULL)
                goto fail;
            long long prep;
            rc = bank_prep_cycles(
                PyList_GET_ITEM(banks, (Py_ssize_t)bank_id), row_obj, &prep);
            Py_DECREF(row_obj);
            if (rc < 0)
                goto fail;
            if (prep < bus_backlog)
                continue;
        }
        if (PyList_Append(ready, req) < 0)
            goto fail;
    }
    return ready;
fail:
    Py_DECREF(ready);
    return NULL;
}

/* filter_ready(ready, picked, banks, uniform_prep, bus_backlog)
 *
 * Mirror of _issue_ready's incremental post-pick filters: drop the
 * issued request, everything on its (now busy) bank, and — open page —
 * everything whose prep no longer covers the tightened bus gate. */
static PyObject *
mod_filter_ready(PyObject *module, PyObject *args)
{
    PyObject *ready, *picked, *banks, *uniform_prep;
    long long bus_backlog;
    if (!PyArg_ParseTuple(args, "OOOOL", &ready, &picked, &banks,
                          &uniform_prep, &bus_backlog))
        return NULL;
    if (!PyList_Check(ready) || !PyList_Check(banks)) {
        PyErr_SetString(PyExc_TypeError,
                        "filter_ready expects list ready/banks");
        return NULL;
    }
    PyObject *picked_bank = PyObject_GetAttr(picked, s_bank_id);
    if (picked_bank == NULL)
        return NULL;
    long long bank_id;
    if (ll_from(picked_bank, &bank_id) < 0) {
        Py_DECREF(picked_bank);
        return NULL;
    }
    Py_DECREF(picked_bank);
    int uniform = uniform_prep != Py_None;
    PyObject *kept = PyList_New(0);
    if (kept == NULL)
        return NULL;
    if (uniform) {
        long long uniform_ll;
        if (ll_from(uniform_prep, &uniform_ll) < 0) {
            Py_DECREF(kept);
            return NULL;
        }
        /* closed page: the tightened bus gate blocks everything or nothing */
        if (uniform_ll < bus_backlog)
            return kept;
    }
    for (Py_ssize_t i = 0; i < PyList_GET_SIZE(ready); i++) {
        PyObject *req = PyList_GET_ITEM(ready, i);
        if (req == picked)
            continue;
        PyObject *bank_obj = PyObject_GetAttr(req, s_bank_id);
        if (bank_obj == NULL)
            goto fail;
        long long req_bank;
        int rc = ll_from(bank_obj, &req_bank);
        Py_DECREF(bank_obj);
        if (rc < 0)
            goto fail;
        if (req_bank == bank_id)
            continue;
        if (!uniform) {
            if (req_bank < 0 || req_bank >= PyList_GET_SIZE(banks)) {
                PyErr_Format(PyExc_IndexError,
                             "request bank_id %lld out of range", req_bank);
                goto fail;
            }
            PyObject *row_obj = PyObject_GetAttr(req, s_row_id);
            if (row_obj == NULL)
                goto fail;
            long long prep;
            rc = bank_prep_cycles(
                PyList_GET_ITEM(banks, (Py_ssize_t)req_bank), row_obj, &prep);
            Py_DECREF(row_obj);
            if (rc < 0)
                goto fail;
            if (prep < bus_backlog)
                continue;
        }
        if (PyList_Append(kept, req) < 0)
            goto fail;
    }
    return kept;
fail:
    Py_DECREF(kept);
    return NULL;
}

/* ------------------------------------------------------------------ */
/* module plumbing                                                    */
/* ------------------------------------------------------------------ */

static PyObject *
mod_dispatched_total(PyObject *module, PyObject *noargs)
{
    return PyLong_FromLongLong(g_dispatched_total);
}

static PyObject *
mod_install(PyObject *module, PyObject *error_class)
{
    Py_INCREF(error_class);
    Py_XSETREF(g_sim_error, error_class);
    Py_RETURN_NONE;
}

static PyMethodDef module_methods[] = {
    {"ready_scan", mod_ready_scan, METH_VARARGS,
     "Controller bank-ready/row-hit scan (mirror of _ready)."},
    {"filter_ready", mod_filter_ready, METH_VARARGS,
     "Incremental post-pick ready-list filter (mirror of _issue_ready)."},
    {"dispatched_total", mod_dispatched_total, METH_NOARGS,
     "Events dispatched by compiled loops in this process."},
    {"_install", mod_install, METH_O,
     "Inject SimulationError so compiled loops raise the engine's type."},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef wheelcore_module = {
    PyModuleDef_HEAD_INIT,
    .m_name = "_wheelcore",
    .m_doc = "Compiled timing-wheel and controller kernels for repro.",
    .m_size = -1,
    .m_methods = module_methods,
};

static int
intern_all(void)
{
#define INTERN(var, text)                                                 \
    do {                                                                  \
        var = PyUnicode_InternFromString(text);                           \
        if (var == NULL)                                                  \
            return -1;                                                    \
    } while (0)
    INTERN(s_cancelled, "cancelled");
    INTERN(s_fired, "fired");
    INTERN(s_callback, "callback");
    INTERN(s_args, "args");
    INTERN(s_as_cycles, "_as_cycles");
    INTERN(s_on_event, "on_event");
    INTERN(s_deadline_word, "deadline");
    INTERN(s_bank_id, "bank_id");
    INTERN(s_row_id, "row_id");
    INTERN(s_open_page, "open_page");
    INTERN(s_open_row, "open_row");
    INTERN(s_prep_hit, "prep_hit");
    INTERN(s_prep_miss, "prep_miss");
#undef INTERN
    return 0;
}

PyMODINIT_FUNC
PyInit__wheelcore(void)
{
    if (intern_all() < 0)
        return NULL;
    if (PyType_Ready(&WheelCoreType) < 0)
        return NULL;
    PyObject *module = PyModule_Create(&wheelcore_module);
    if (module == NULL)
        return NULL;
    Py_INCREF(&WheelCoreType);
    if (PyModule_AddObject(module, "WheelCore",
                           (PyObject *)&WheelCoreType) < 0) {
        Py_DECREF(&WheelCoreType);
        Py_DECREF(module);
        return NULL;
    }
    if (PyModule_AddIntConstant(module, "WHEEL_BITS", WHEEL_BITS) < 0) {
        Py_DECREF(module);
        return NULL;
    }
    return module;
}
